"""Service-layer throughput: sessions/sec, cache hit rate, degradation.

Unlike the other benchmarks in this directory, this one measures no
paper figure — it exercises the scale subsystem (`repro.service`): many
concurrent simulated users driving independent feedback sessions
through one `RetrievalService`, with the result cache absorbing
repeated page fetches and the degradation machinery accounted for.

Reported per run (printed, and asserted qualitatively):

* sessions/sec over the concurrent workload,
* cache hit rate — a warm repeated-page workload must show a non-zero
  rate,
* degradation count — zero on the healthy path, non-zero when a
  too-tight soft deadline forces the exact-scan fallback.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.kernels import use_kernels
from repro.retrieval import SimulatedUser
from repro.service import RetrievalService

N_USERS = 12
N_ITERATIONS = 3
PAGE_FETCHES_PER_ITERATION = 3  # repeated fetches → cache hits


@pytest.fixture(scope="module")
def service_database(color_database):
    return color_database


def drive_user(service, database, query_id: int, n_iterations: int) -> None:
    session = service.create_session(query_id)
    user = SimulatedUser(database, database.category_of(query_id))
    page = service.query(session)
    for _ in range(n_iterations):
        for _ in range(PAGE_FETCHES_PER_ITERATION):
            page = service.query(session)  # warm repeated-page workload
        judgment = user.judge(page.ids)
        page = service.feedback(session, judgment.relevant_indices, judgment.scores)
    service.close(session)


def run_workload(service, database, query_ids, n_iterations=N_ITERATIONS) -> float:
    threads = [
        threading.Thread(
            target=drive_user, args=(service, database, int(query_id), n_iterations)
        )
        for query_id in query_ids
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


class TestServiceThroughput:
    def test_concurrent_workload_reports_headline_numbers(self, service_database):
        rng = np.random.default_rng(11)
        query_ids = rng.integers(0, service_database.size, size=N_USERS)
        service = RetrievalService(service_database, k=50, capacity=64)
        elapsed = run_workload(service, service_database, query_ids)
        snapshot = service.metrics_snapshot()
        service.shutdown()

        sessions_per_sec = N_USERS / elapsed
        print(
            f"\nservice throughput: {sessions_per_sec:.2f} sessions/sec "
            f"({N_USERS} users x {N_ITERATIONS} iterations in {elapsed:.2f}s)"
        )
        print(f"cache hit rate:     {snapshot['cache_hit_rate']:.3f}")
        print(f"degradations:       {snapshot['degradations']}")
        print(
            f"refine fraction:    {snapshot['refine_fraction']:.4f} "
            f"({snapshot['candidates_pruned']} candidates pruned)"
        )
        print(
            "query p50/p95 ms:   "
            f"{snapshot['latency']['query']['p50'] * 1e3:.2f} / "
            f"{snapshot['latency']['query']['p95'] * 1e3:.2f}"
        )

        counters = snapshot["counters"]
        assert sessions_per_sec > 0
        assert counters["sessions_created"] == N_USERS
        assert counters["sessions_closed"] == N_USERS
        assert counters["feedbacks"] == N_USERS * N_ITERATIONS
        # The warm repeated-page workload must actually hit the cache.
        assert counters["cache_hits"] > 0
        assert snapshot["cache_hit_rate"] > 0.0
        # Healthy path: the index never degraded.
        assert snapshot["degradations"] == 0
        # Progressive accounting is always populated (refine_fraction is
        # 1.0 whenever the filter never engaged — never out of range).
        assert 0.0 < snapshot["refine_fraction"] <= 1.0
        assert snapshot["candidates_pruned"] >= 0

    def test_tight_deadline_degrades_but_serves_identically(self, service_database):
        """An impossible soft deadline downgrades to the exact scan."""
        rng = np.random.default_rng(13)
        query_ids = rng.integers(0, service_database.size, size=4)
        degraded = RetrievalService(
            service_database, k=50, soft_deadline_s=1e-12, cache_size=0
        )
        healthy = RetrievalService(service_database, k=50, cache_size=0)
        for query_id in query_ids:
            session_a = degraded.create_session(int(query_id))
            session_b = healthy.create_session(int(query_id))
            page_a = degraded.query(session_a)
            page_b = healthy.query(session_b)
            np.testing.assert_array_equal(page_a.ids, page_b.ids)
        snapshot = degraded.metrics_snapshot()
        degraded.shutdown()
        healthy.shutdown()
        print(f"\ndeadline degradations: {snapshot['degradations']}")
        assert snapshot["degradations"] > 0
        assert snapshot["counters"]["degraded_deadline"] > 0

    def test_compiled_kernels_speed_up_end_to_end_sessions(self):
        """The kernel layer must be a *measurable* end-to-end win, not
        just a microbenchmark one: full query→feedback sessions through
        the service (clustering, aggregation, ranking, bookkeeping)
        finish faster with compiled kernels than with the naive
        quadratic-form scan they replace."""
        rng = np.random.default_rng(47)
        n, p = 24_000, 48
        vectors = 4.0 * rng.standard_normal((n, p))

        def run_session(service):
            session = service.create_session(vectors[3])
            page = service.query(session)
            for _ in range(3):
                page = service.feedback(session, [int(i) for i in page.ids[:10]])
            service.close(session)

        def timed_session(naive: bool) -> float:
            service = RetrievalService(
                vectors, k=50, use_index=False, n_shards=1, cache_size=0
            )
            try:
                if naive:
                    with use_kernels(False):
                        start = time.perf_counter()
                        run_session(service)
                        return time.perf_counter() - start
                start = time.perf_counter()
                run_session(service)
                return time.perf_counter() - start
            finally:
                service.shutdown()

        timed_session(naive=False)  # warm-up both paths (allocators, BLAS)
        timed_session(naive=True)
        kernel_times, naive_times = [], []
        for _ in range(5):  # interleaved so noise bursts hit both paths
            kernel_times.append(timed_session(naive=False))
            naive_times.append(timed_session(naive=True))
        kernel_best = min(kernel_times)
        naive_best = min(naive_times)
        speedup = naive_best / kernel_best
        print(
            f"\nend-to-end session at N={n}, p={p}: kernels "
            f"{kernel_best * 1e3:.1f} ms vs naive {naive_best * 1e3:.1f} ms "
            f"({speedup:.2f}x)"
        )
        # Lenient floor: the session includes clustering and service
        # bookkeeping that the kernel layer does not touch.
        assert speedup >= 1.05

    def test_cache_speedup_on_repeated_pages(self, service_database):
        """Repeated fetches of the same page are at least as fast warm."""
        service = RetrievalService(service_database, k=100)
        session = service.create_session(0)
        start = time.perf_counter()
        service.query(session)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(10):
            service.query(session)
        warm_average = (time.perf_counter() - start) / 10
        service.shutdown()
        print(f"\ncold page fetch: {cold * 1e3:.2f} ms, warm: {warm_average * 1e3:.3f} ms")
        assert service.cache.hits >= 10
        # Cached fetches skip ranking entirely; allow generous slack for
        # timer noise at these microsecond scales.
        assert warm_average <= cold * 2
