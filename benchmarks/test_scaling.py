"""Scaling behaviour of the index search (beyond the paper's Figure 7).

The paper fixes the database at 30,000 images; this bench sweeps the
database size and verifies that the best-first tree search scales
sub-linearly in I/O for a selective multipoint query while the full
scan grows linearly — the property that makes the index worth having.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import ResultTable
from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.index import HybridTree, LinearScan

def print_table(title, headers, rows):
    """Render rows through the shared ResultTable reporter."""
    table = ResultTable(title, headers)
    for row in rows:
        table.add_row(*row)
    table.print()


SIZES = [1_000, 4_000, 16_000]
DIM = 3
K = 100


def clustered_vectors(n: int, rng: np.random.Generator) -> np.ndarray:
    """A mixture of 20 tight blobs — the shape of real image features."""
    centers = rng.uniform(-10.0, 10.0, (20, DIM))
    assignments = rng.integers(0, 20, n)
    return centers[assignments] + rng.normal(0.0, 0.4, (n, DIM))


def selective_query(vectors: np.ndarray) -> DisjunctiveQuery:
    inverse = np.eye(DIM) * 4.0  # tight ellipsoids, selective contours
    return DisjunctiveQuery(
        [
            QueryPoint(center=vectors[0], inverse=inverse, weight=1.0),
            QueryPoint(center=vectors[1], inverse=inverse, weight=1.0),
        ]
    )


@pytest.fixture(scope="module")
def sweep_results():
    rng = np.random.default_rng(17)
    rows = []
    measurements = []
    for size in SIZES:
        vectors = clustered_vectors(size, rng)
        tree = HybridTree(vectors, node_size_bytes=4096)
        scan = LinearScan(vectors)
        query = selective_query(vectors)
        tree_result = tree.knn(query, K)
        rows.append(
            [
                size,
                tree_result.cost.io_accesses,
                scan.n_pages,
                tree_result.cost.distance_evaluations,
            ]
        )
        measurements.append(
            (size, tree_result.cost.io_accesses, scan.n_pages,
             tree_result.cost.distance_evaluations)
        )
    print_table(
        "Index scaling: selective 2-point k-NN vs database size",
        ["database size", "tree I/O", "scan pages", "tree distance evals"],
        rows,
    )
    return measurements


def test_tree_io_scales_sublinearly(benchmark, sweep_results):
    def ratio():
        smallest = sweep_results[0]
        largest = sweep_results[-1]
        size_growth = largest[0] / smallest[0]
        io_growth = largest[1] / max(smallest[1], 1)
        return size_growth, io_growth

    size_growth, io_growth = benchmark.pedantic(ratio, rounds=1, iterations=1)
    # 16x more data must not mean 16x more I/O for a selective query.
    assert io_growth < 0.6 * size_growth


def test_tree_beats_scan_at_scale(sweep_results):
    largest = sweep_results[-1]
    assert largest[1] < largest[2]          # tree I/O < scan pages
    assert largest[3] < 0.5 * SIZES[-1]     # most vectors never touched
