"""Compiled-kernel scheme benchmark: the cost claim behind Figure 6.

Measures the per-ranking cost of the three distance implementations on
one database scan:

* **naive** — the reference ``(N, p) @ (p, p)`` quadratic form, the
  same code for both covariance schemes (which is exactly why the
  paper's cost gap was unmeasurable before the kernel layer);
* **diagonal kernel** — O(N·p) variance-vector scoring;
* **Cholesky kernel** — the fused whitening matmul for full inverses.

Writes ``BENCH_kernels.json`` (overridable via ``QCLUSTER_BENCH_OUT``)
with raw timings and derived speedups so CI can archive the numbers.

Scale: the default configuration matches the acceptance bar (p ≥ 32,
N ≥ 10k); set ``QCLUSTER_BENCH_SMALL=1`` (the CI smoke job does) for a
fast small-N run that still exercises every code path and writes the
JSON, but skips the absolute speedup assertions — tiny workloads are
dominated by call overhead, not kernel math.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.covariance import get_scheme
from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.core.kernels import compile_query, use_kernels

SMALL = os.environ.get("QCLUSTER_BENCH_SMALL", "") == "1"

N = 2_000 if SMALL else 40_000
P = 16 if SMALL else 128
G = 4
REPEATS = 3 if SMALL else 11

OUT_PATH = Path(os.environ.get("QCLUSTER_BENCH_OUT", "BENCH_kernels.json"))


def build_query(scheme_name: str, rng: np.random.Generator) -> DisjunctiveQuery:
    scheme = get_scheme(scheme_name)
    points = []
    for _ in range(G):
        cloud = 4.0 * rng.standard_normal(P) + rng.standard_normal((4 * P, P))
        info = scheme.invert(np.cov(cloud, rowvar=False))
        points.append(
            QueryPoint(
                center=cloud.mean(axis=0),
                inverse=info.inverse,
                weight=1.0,
                diagonal=info.diagonal,
            )
        )
    return DisjunctiveQuery(points)


def interleaved_best_of(timed: dict, repeats: int = REPEATS) -> dict:
    """Minimum wall time per callable over ``repeats`` interleaved rounds.

    Interleaving (round-robin over every implementation each round,
    rather than timing one implementation's repeats back to back) keeps
    machine-wide noise bursts from landing entirely on one side of a
    speedup ratio; the per-callable minimum then discards them.
    """
    timings = {name: [] for name in timed}
    for _ in range(repeats):
        for name, callable_ in timed.items():
            start = time.perf_counter()
            callable_()
            timings[name].append(time.perf_counter() - start)
    return {name: min(values) for name, values in timings.items()}


@pytest.fixture(scope="module")
def payload():
    """Time every (scheme, implementation) pair once for the module."""
    rng = np.random.default_rng(23)
    database = np.ascontiguousarray(4.0 * rng.standard_normal((N, P)))
    compiled_queries = {}
    timed = {}
    for scheme in ("diagonal", "inverse"):
        query = build_query(scheme, rng)
        compiled = compile_query(query)
        compiled_queries[scheme] = compiled

        def kernel_run(compiled=compiled):
            compiled.per_cluster_distances(database)

        def naive_run(query=query):
            with use_kernels(False):
                query.per_cluster_distances(database)

        kernel_run()  # warm-up / allocation
        naive_run()
        timed[f"{scheme}:kernel"] = kernel_run
        timed[f"{scheme}:naive"] = naive_run
    best = interleaved_best_of(timed)
    results = {}
    for scheme in ("diagonal", "inverse"):
        kernel_seconds = best[f"{scheme}:kernel"]
        naive_seconds = best[f"{scheme}:naive"]
        results[scheme] = {
            "kernel_seconds": kernel_seconds,
            "naive_seconds": naive_seconds,
            "kernel_kind": compiled_queries[scheme].kernels[0].kind,
            "speedup_vs_naive": naive_seconds / kernel_seconds,
        }
    data = {
        "n": N,
        "p": P,
        "g": G,
        "repeats": REPEATS,
        "small_mode": SMALL,
        "schemes": results,
        "diagonal_vs_full_kernel_speedup": (
            results["inverse"]["kernel_seconds"]
            / results["diagonal"]["kernel_seconds"]
        ),
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    return data


class TestKernelSchemes:
    def test_writes_benchmark_json(self, payload):
        assert OUT_PATH.exists()
        on_disk = json.loads(OUT_PATH.read_text())
        assert on_disk["n"] == N and on_disk["p"] == P
        assert set(on_disk["schemes"]) == {"diagonal", "inverse"}

    def test_kernels_selected_per_scheme(self, payload):
        assert payload["schemes"]["diagonal"]["kernel_kind"] == "diagonal"
        assert payload["schemes"]["inverse"]["kernel_kind"] == "cholesky"

    def test_diagonal_kernel_beats_full_inverse_kernel(self, payload):
        """The paper's Figure 6 claim, now measurable: the diagonal
        scheme's ranking cost is a small fraction of the full-inverse
        scheme's (≥5x at p ≥ 32, N ≥ 10k)."""
        gap = payload["diagonal_vs_full_kernel_speedup"]
        print(
            f"\ndiagonal vs full-inverse kernel at N={N}, p={P}, g={G}: "
            f"{gap:.1f}x cheaper"
        )
        if SMALL:
            pytest.skip("small smoke run: timings dominated by call overhead")
        assert gap >= 5.0

    def test_diagonal_kernel_beats_naive_quadratic_form(self, payload):
        """The compiled fast path must clearly beat the dense product it
        replaces — otherwise the layer is pure complexity."""
        speedup = payload["schemes"]["diagonal"]["speedup_vs_naive"]
        print(f"\ndiagonal kernel vs naive at N={N}, p={P}, g={G}: {speedup:.1f}x")
        if SMALL:
            pytest.skip("small smoke run: timings dominated by call overhead")
        assert speedup >= 2.0

    def test_cholesky_kernel_not_slower_than_naive(self, payload):
        """Fused whitening must at worst match the naive full product."""
        speedup = payload["schemes"]["inverse"]["speedup_vs_naive"]
        print(f"\ncholesky kernel vs naive at N={N}, p={P}, g={G}: {speedup:.2f}x")
        if SMALL:
            pytest.skip("small smoke run: timings dominated by call overhead")
        assert speedup >= 0.8

    def test_rankings_identical_across_paths(self, payload):
        """Acceptance: naive, kernel, sharded and tree orderings agree."""
        from repro.index.hybridtree import HybridTree
        from repro.index.linear import LinearScan
        from repro.service import RetrievalService

        rng = np.random.default_rng(29)
        n, p = (800, 8) if SMALL else (4_000, 16)
        database = 4.0 * rng.standard_normal((n, p))
        for scheme in ("diagonal", "inverse"):
            query = build_query_at(scheme, rng, p)
            k = 50
            kernel_ids = LinearScan(database).knn(query, k).indices
            with use_kernels(False):
                naive_ids = LinearScan(database).knn(query, k).indices
            tree_ids = HybridTree(database).knn(query, k).indices
            service = RetrievalService(
                database, use_index=False, n_shards=4, cache_size=0, k=k
            )
            # Rank through the sharded scan with the same query object.
            sharded_ids, _ = service._sharded_scan(query, k)
            service.shutdown()
            np.testing.assert_array_equal(kernel_ids, naive_ids)
            np.testing.assert_array_equal(kernel_ids, tree_ids)
            np.testing.assert_array_equal(kernel_ids, sharded_ids)


def build_query_at(scheme_name: str, rng: np.random.Generator, p: int) -> DisjunctiveQuery:
    """Like :func:`build_query` but at an explicit dimensionality."""
    scheme = get_scheme(scheme_name)
    points = []
    for _ in range(G):
        cloud = 4.0 * rng.standard_normal(p) + rng.standard_normal((4 * p, p))
        info = scheme.invert(np.cov(cloud, rowvar=False))
        points.append(
            QueryPoint(
                center=cloud.mean(axis=0),
                inverse=info.inverse,
                weight=1.0,
                diagonal=info.diagonal,
            )
        )
    return DisjunctiveQuery(points)
