"""Figures 14-17: classification error vs inter-cluster distance.

Paper findings asserted here: error decreases as the inter-cluster
distance increases; error grows as the retained dimensionality shrinks
(where there is signal to lose); and spherical ≈ elliptical — the
linear-transformation invariance of Theorem 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import classification

SEPARATIONS = classification.SEPARATIONS
DIMENSIONS = classification.DIMENSIONS


@pytest.mark.parametrize(
    "shape,scheme_name",
    [
        ("spherical", "inverse"),
        ("elliptical", "inverse"),
        ("spherical", "diagonal"),
        ("elliptical", "diagonal"),
    ],
)
def test_fig14_17_error_rates(benchmark, shape, scheme_name):
    result = benchmark.pedantic(
        classification.sweep, args=(shape, scheme_name), rounds=1, iterations=1
    )
    result.as_table().print()
    errors = result.errors

    # Error decreases with separation (compare the extremes, per dim).
    for k in DIMENSIONS:
        assert errors[SEPARATIONS[-1]][k] < errors[SEPARATIONS[0]][k]
    # Error grows as dimensionality shrinks where there is signal to
    # lose (at the smallest separation everything sits at the ~2/3
    # random-guessing ceiling, so compare at the largest).
    assert errors[SEPARATIONS[-1]][3] >= errors[SEPARATIONS[-1]][12] - 0.02
    # At the largest separation the error approaches the Bayes floor
    # (~10.6% pairwise for unit Gaussians at distance 2.5; three
    # clusters roughly double the confusable mass).
    assert errors[SEPARATIONS[-1]][12] < 0.30
    # And the drop from the closest to the farthest setting is large.
    assert errors[SEPARATIONS[-1]][12] < 0.5 * errors[SEPARATIONS[0]][12]


def test_shape_invariance_of_inverse_scheme():
    """Figures 14 vs 15: spherical ~ elliptical for the inverse scheme."""
    for separation in (1.5, 2.5):
        spherical = np.mean(
            [
                classification.error_rate("spherical", "inverse", separation, 12, seed)
                for seed in range(3)
            ]
        )
        elliptical = np.mean(
            [
                classification.error_rate("elliptical", "inverse", separation, 12, seed)
                for seed in range(3)
            ]
        )
        print(
            f"separation {separation}: spherical {spherical:.3f}, "
            f"elliptical {elliptical:.3f}"
        )
        assert abs(spherical - elliptical) < 0.1
