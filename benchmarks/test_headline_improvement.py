"""The paper's headline claim (abstract): Qcluster improves recall ~22 %
and precision ~20 % over query expansion, and ~34 % / ~33 % over query
point movement.

The direction must reproduce for every feature/baseline/metric cell;
the magnitude depends on how multi-modal the collection's categories
are (EXPERIMENTS.md note 3).
"""

from __future__ import annotations

from repro.experiments import quality


def test_headline_improvements(benchmark, protocol_data):
    result = benchmark.pedantic(
        quality.headline, args=(protocol_data,), rounds=1, iterations=1
    )
    result.as_table().print()

    # Direction matches the paper for every cell.
    for value in result.improvements.values():
        assert value > 0.0
    # QPM gap exceeds the QEX gap (the ordering of the two claims).
    assert result.pooled("qpm", "recall") >= result.pooled("qex", "recall")
