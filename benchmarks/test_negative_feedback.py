"""Extension bench: does non-relevant feedback help?

Not a paper figure — the paper's protocol is positive-only — but its
related-work section motivates negative information (Rocchio [14],
Ashwin et al. [1]).  This bench runs Qcluster with and without the
negative-penalty re-ranker over the same queries and reports the
per-iteration precision delta.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.reporting import ResultTable
from repro.extensions.session import NegativeFeedbackSession
from repro.retrieval import FeedbackSession, QclusterMethod

def print_table(title, headers, rows):
    """Render rows through the shared ResultTable reporter."""
    table = ResultTable(title, headers)
    for row in rows:
        table.add_row(*row)
    table.print()


N_ITERATIONS = 4
K = 100
N_QUERIES = 10


@pytest.fixture(scope="module")
def paired_runs(color_database):
    rng = np.random.default_rng(31)
    queries = rng.choice(color_database.size, N_QUERIES, replace=False)
    positive = []
    with_negatives = []
    for query_index in queries:
        positive.append(
            FeedbackSession(color_database, QclusterMethod(), k=K)
            .run(int(query_index), n_iterations=N_ITERATIONS)
            .precisions
        )
        with_negatives.append(
            NegativeFeedbackSession(color_database, QclusterMethod(), k=K, gamma=1.5)
            .run(int(query_index), n_iterations=N_ITERATIONS)
            .precisions
        )
    return np.vstack(positive), np.vstack(with_negatives)


def test_negative_feedback_does_not_hurt(benchmark, paired_runs):
    positive, with_negatives = benchmark.pedantic(
        lambda: paired_runs, rounds=1, iterations=1
    )
    rows = []
    for iteration in range(N_ITERATIONS + 1):
        rows.append(
            [
                iteration,
                f"{positive[:, iteration].mean():.3f}",
                f"{with_negatives[:, iteration].mean():.3f}",
                f"{with_negatives[:, iteration].mean() - positive[:, iteration].mean():+.3f}",
            ]
        )
    print_table(
        "Extension: positive-only vs +negative-penalty precision",
        ["iteration", "positive-only", "with negatives", "delta"],
        rows,
    )
    # Negatives must not make the final iteration meaningfully worse.
    assert (
        with_negatives[:, -1].mean() >= positive[:, -1].mean() - 0.03
    )
