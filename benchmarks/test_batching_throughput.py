"""Cross-session batching: qps under a 64-session closed-loop load.

The acceptance benchmark of the ``repro.service.batching`` subsystem:
the same 64-session closed-loop feedback workload (create → page →
rounds × judge/feedback) is driven against one
:class:`RetrievalService` twice — once through the unbatched
thread-pool path and once through the batching executor — and every
page either run serves must be **byte-identical** to a sequential
serial replay (that part is asserted unconditionally — it is what
makes batching safe to turn on).

Writes ``BENCH_batching.json`` (overridable via ``QCLUSTER_BENCH_OUT``)
with the throughput/latency numbers so CI can archive them.

Scale: the default configuration matches the acceptance bar (≥1.5x
queries/sec at equal-or-better p50); ``QCLUSTER_BENCH_SMALL=1`` (the CI
smoke job sets it) shrinks the workload so the whole run takes seconds.
The speedup bar is skipped (never silently passed) in small mode,
where per-query work is too cheap for coalescing to pay for its
collection window.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.retrieval import FeatureDatabase, SimulatedUser
from repro.service import BatchingConfig, RetrievalService
from repro.service.metrics import percentile

SMALL = os.environ.get("QCLUSTER_BENCH_SMALL", "") == "1"

N = 2_048 if SMALL else 98_304
P = 16 if SMALL else 64
N_CATEGORIES = 16
SESSIONS = 16 if SMALL else 64
ROUNDS = 2 if SMALL else 3
K = 10
SEED = 23

OUT_PATH = Path(os.environ.get("QCLUSTER_BENCH_OUT", "BENCH_batching.json"))

#: One service configuration for every run — only ``batching`` differs.
_SERVICE_KWARGS = dict(k=K, use_index=False, n_shards=1, cache_size=32)


def make_database() -> FeatureDatabase:
    # A decaying coordinate spectrum, like PCA-rotated image features:
    # most variance in the leading coordinates, so the progressive
    # prefix filter prunes the way it does on real collections.
    rng = np.random.default_rng(SEED)
    scales = (1.0 / (1.0 + np.arange(P))) ** 0.8
    vectors = 2.0 * rng.standard_normal((N, P)) * scales
    labels = np.arange(N) % N_CATEGORIES
    return FeatureDatabase(vectors, labels)


def session_loop(service, database, index, query_id, pages, latencies):
    """One session's closed loop; fills ``pages[(index, round)]``."""
    user = SimulatedUser(database, database.category_of(query_id))
    session_id = service.create_session(query_id, session_id=f"bench-{index}")
    start = time.perf_counter()
    page = service.query(session_id)
    latencies.append(time.perf_counter() - start)
    pages[(index, 0)] = (page.ids.tobytes(), page.distances.tobytes())
    for round_index in range(1, ROUNDS + 1):
        judgment = user.judge(page.ids)
        start = time.perf_counter()
        page = service.feedback(
            session_id, judgment.relevant_indices, judgment.scores
        )
        latencies.append(time.perf_counter() - start)
        pages[(index, round_index)] = (
            page.ids.tobytes(),
            page.distances.tobytes(),
        )
    service.close(session_id)


def drive_concurrent(database, query_ids, *, batching):
    """The closed-loop load: one driver thread per session."""
    service = RetrievalService(database, batching=batching, **_SERVICE_KWARGS)
    pages: dict = {}
    per_thread = [[] for _ in query_ids]
    errors = []
    gate = threading.Barrier(len(query_ids) + 1)

    def run(index: int, query_id: int) -> None:
        try:
            gate.wait()
            session_loop(
                service, database, index, query_id, pages, per_thread[index]
            )
        except BaseException as error:  # surfaced after join
            errors.append(error)

    threads = [
        threading.Thread(target=run, args=(index, int(query_id)))
        for index, query_id in enumerate(query_ids)
    ]
    for thread in threads:
        thread.start()
    gate.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    stats = service.batching.stats() if service.batching is not None else None
    service.shutdown()
    assert not errors, errors[0]
    latencies = [value for bucket in per_thread for value in bucket]
    queries = len(latencies)
    return {
        "pages": pages,
        "wall_s": wall,
        "qps": queries / wall,
        "queries": queries,
        "p50_s": percentile(latencies, 50.0),
        "p95_s": percentile(latencies, 95.0),
        "batching": stats,
    }


@pytest.fixture(scope="module")
def payload():
    """Time both runs once for the module; returns the JSON dict."""
    database = make_database()
    rng = np.random.default_rng(SEED)
    query_ids = rng.choice(N, size=SESSIONS, replace=False)

    # Serial reference: the same sessions replayed sequentially on an
    # unbatched service — the byte-identity ground truth.  SimulatedUser
    # judgments are a pure function of the page, so each session's
    # feedback trajectory is independent of scheduling.
    serial_service = RetrievalService(database, **_SERVICE_KWARGS)
    serial_pages: dict = {}
    for index, query_id in enumerate(query_ids):
        session_loop(
            serial_service, database, index, int(query_id), serial_pages, []
        )
    serial_service.shutdown()

    baseline = drive_concurrent(database, query_ids, batching=False)
    batched = drive_concurrent(
        database,
        query_ids,
        batching=BatchingConfig(max_batch=32, max_wait_s=0.005),
    )

    data = {
        "n": N,
        "p": P,
        "sessions": SESSIONS,
        "rounds": ROUNDS,
        "k": K,
        "small_mode": SMALL,
        "cpu_count": os.cpu_count(),
        "baseline": {
            key: baseline[key]
            for key in ("qps", "wall_s", "queries", "p50_s", "p95_s")
        },
        "batched": {
            key: batched[key]
            for key in ("qps", "wall_s", "queries", "p50_s", "p95_s")
        },
        "batch_stats": {
            key: batched["batching"][key]
            for key in (
                "batches",
                "batched_queries",
                "mean_batch_size",
                "p50_batch_size",
                "max_batch_size",
                "peak_queue_depth",
                "shed",
                "fallbacks",
            )
        },
        "speedup_qps": batched["qps"] / baseline["qps"],
        "p50_ratio": batched["p50_s"] / baseline["p50_s"],
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    return {
        "data": data,
        "serial_pages": serial_pages,
        "baseline_pages": baseline["pages"],
        "batched_pages": batched["pages"],
    }


class TestBatchingThroughput:
    def test_writes_benchmark_json(self, payload):
        assert OUT_PATH.exists()
        on_disk = json.loads(OUT_PATH.read_text())
        assert on_disk["sessions"] == SESSIONS
        assert on_disk["baseline"]["qps"] > 0
        assert on_disk["batched"]["qps"] > 0
        assert on_disk["batch_stats"]["batches"] > 0

    def test_batching_actually_coalesced(self, payload):
        """The batched run must have formed real multi-query batches —
        a ladder of singleton batches would benchmark nothing."""
        stats = payload["data"]["batch_stats"]
        assert stats["batched_queries"] == SESSIONS * (ROUNDS + 1)
        assert stats["max_batch_size"] >= 2

    def test_batched_pages_byte_identical_to_serial(self, payload):
        """The load-bearing property, asserted in every mode — batching
        may change wall-clock, never a ranking byte."""
        assert payload["batched_pages"] == payload["serial_pages"]

    def test_unbatched_concurrency_is_byte_identical_too(self, payload):
        """Sanity: the baseline itself is deterministic under threading,
        so the comparison above isolates the batching path."""
        assert payload["baseline_pages"] == payload["serial_pages"]

    def test_throughput_bar(self, payload):
        """≥1.5x qps at equal-or-better p50 vs the unbatched path."""
        data = payload["data"]
        print(
            f"\nbatching speedup at N={N}, p={P}, {SESSIONS} sessions: "
            f"{data['speedup_qps']:.2f}x qps, p50 ratio "
            f"{data['p50_ratio']:.2f}"
        )
        if SMALL:
            pytest.skip("small smoke run: collection window dominates")
        assert data["speedup_qps"] >= 1.5
        assert data["batched"]["p50_s"] <= data["baseline"]["p50_s"]
