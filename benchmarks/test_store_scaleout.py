"""Store scan scale-out: qps vs worker-process count over one store file.

The acceptance benchmark of the ``repro.store`` / ``repro.parallel``
subsystem: the same full-inverse ranking workload is scanned from one
memory-mapped feature store by worker pools of 1, 2, 4 and 8 processes,
and every configuration must return **byte-identical** pages (that part
is asserted unconditionally — it is what makes the backend selectable).

Writes ``BENCH_store.json`` (overridable via ``QCLUSTER_BENCH_OUT``)
with the qps ladder and derived speedups so CI can archive the numbers.

Scale: the default configuration matches the acceptance bar (N ≥ 40k
rows, p = 128, full-inverse scheme); ``QCLUSTER_BENCH_SMALL=1`` (the CI
smoke job sets it) shrinks the workload so the whole ladder runs in
seconds.  The ≥2.5x-at-4-workers assertion additionally requires 4
physical cores — a 1- or 2-CPU runner cannot demonstrate process
scale-out, only fail to — so it is skipped (never silently passed)
when ``os.cpu_count()`` is too small or the run is small-mode.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.covariance import get_scheme
from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.parallel import ShardWorkerPool
from repro.parallel.workers import encode_query, scan_shard_topk
from repro.core.progressive import exact_top_k
from repro.store import FeatureStore, build_store

SMALL = os.environ.get("QCLUSTER_BENCH_SMALL", "") == "1"

N = 2_048 if SMALL else 40_960
P = 16 if SMALL else 128
G = 3
K = 20
N_SHARDS = 8
WORKER_COUNTS = (1, 2, 4, 8)
REPEATS = 2 if SMALL else 5
SEED = 11

OUT_PATH = Path(os.environ.get("QCLUSTER_BENCH_OUT", "BENCH_store.json"))


def build_query(rng: np.random.Generator) -> DisjunctiveQuery:
    """A g-point full-inverse query (the expensive covariance scheme)."""
    scheme = get_scheme("inverse")
    points = []
    for _ in range(G):
        cloud = 2.0 * rng.standard_normal(P) + rng.standard_normal((4 * P, P))
        info = scheme.invert(np.cov(cloud, rowvar=False))
        points.append(
            QueryPoint(
                center=cloud.mean(axis=0),
                inverse=info.inverse,
                weight=1.0,
                diagonal=info.diagonal,
            )
        )
    return DisjunctiveQuery(points)


def merge_parts(parts):
    """The coordinator's deterministic (distance, id) merge."""
    ids = np.concatenate([part[0] for part in parts])
    distances = np.concatenate([part[1] for part in parts])
    top = exact_top_k(distances, K, tie_break=ids)
    return ids[top], distances[top]


@pytest.fixture(scope="module")
def payload(tmp_path_factory):
    """Time the scan ladder once for the module; returns the JSON dict."""
    rng = np.random.default_rng(SEED)
    vectors = 2.0 * rng.standard_normal((N, P))
    store_path = build_store(
        vectors, tmp_path_factory.mktemp("bench") / "scaleout.qcs", n_shards=N_SHARDS
    )
    store = FeatureStore.open(store_path)
    query = build_query(rng)
    encoded = encode_query(query)

    # Serial reference: the shared scan kernel over the store's own
    # shards, merged exactly like the coordinator does.
    serial_parts = [
        scan_shard_topk(query, store.shard(i), store.row_offsets[i], K)
        for i in range(N_SHARDS)
    ]
    reference = merge_parts(serial_parts)

    ladder = {}
    pages = {}
    for n_workers in WORKER_COUNTS:
        with ShardWorkerPool(store_path, n_workers=n_workers) as pool:
            # Warm-up: spawn + per-process store open + kernel compile.
            futures = [pool.submit(i, encoded, K) for i in range(N_SHARDS)]
            pages[n_workers] = merge_parts([f.result() for f in futures])
            best = float("inf")
            for _ in range(REPEATS):
                start = time.perf_counter()
                futures = [pool.submit(i, encoded, K) for i in range(N_SHARDS)]
                for future in futures:
                    future.result()
                best = min(best, time.perf_counter() - start)
        ladder[n_workers] = {
            "best_scan_seconds": best,
            "qps": 1.0 / best,
        }

    data = {
        "n": N,
        "p": P,
        "g": G,
        "k": K,
        "n_shards": N_SHARDS,
        "scheme": "inverse",
        "repeats": REPEATS,
        "small_mode": SMALL,
        "cpu_count": os.cpu_count(),
        "workers": {str(w): ladder[w] for w in WORKER_COUNTS},
        "speedup_4_vs_1": ladder[1]["best_scan_seconds"]
        / ladder[4]["best_scan_seconds"],
        "speedup_8_vs_1": ladder[1]["best_scan_seconds"]
        / ladder[8]["best_scan_seconds"],
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    return {"data": data, "pages": pages, "reference": reference}


class TestStoreScaleout:
    def test_writes_benchmark_json(self, payload):
        assert OUT_PATH.exists()
        on_disk = json.loads(OUT_PATH.read_text())
        assert on_disk["n"] == N and on_disk["p"] == P
        assert set(on_disk["workers"]) == {str(w) for w in WORKER_COUNTS}
        for entry in on_disk["workers"].values():
            assert entry["qps"] > 0

    def test_every_worker_count_is_byte_identical_to_serial(self, payload):
        """The load-bearing property, asserted at every ladder rung —
        worker count may change wall-clock, never a ranking byte."""
        ref_ids, ref_distances = payload["reference"]
        for n_workers, (ids, distances) in payload["pages"].items():
            assert ids.tobytes() == ref_ids.tobytes(), f"workers={n_workers}"
            assert (
                distances.tobytes() == ref_distances.tobytes()
            ), f"workers={n_workers}"

    def test_four_workers_scale(self, payload):
        """≥2.5x qps at 4 workers vs 1 (N=40k, p=128, full inverse)."""
        speedup = payload["data"]["speedup_4_vs_1"]
        print(f"\n4-worker speedup at N={N}, p={P}: {speedup:.2f}x")
        if SMALL:
            pytest.skip("small smoke run: spawn overhead dominates")
        if (os.cpu_count() or 1) < 4:
            pytest.skip(f"needs >=4 cores to scale (have {os.cpu_count()})")
        assert speedup >= 2.5
