"""Graded relevance scores (the paper's v_ik) on a related-category collection.

The paper's protocol counts images from related categories (flowers and
plants) as relevant; its scoring machinery weights every statistic by
the user's relevance score ``v_ik``.  This bench builds a collection
with visually adjacent category pairs and compares:

* **binary scores** — related images marked at full weight, and
* **graded scores** — related images marked at half weight,

measuring recall against the graded ground truth (own + related
categories).  Grading lets the cluster statistics lean toward the
user's true category while still exploiting related images, so it
should match or beat binary marking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_collection
from repro.experiments.reporting import ResultTable
from repro.features import color_pipeline
from repro.retrieval import (
    FeatureDatabase,
    FeedbackSession,
    QclusterMethod,
    SimulatedUser,
)

N_ITERATIONS = 4
K = 60


@pytest.fixture(scope="module")
def related_database():
    collection = generate_collection(
        n_categories=12,
        images_per_category=60,
        image_size=18,
        complex_fraction=0.25,
        related_pairs=3,
        seed=29,
    )
    features = color_pipeline().fit(collection.images)
    database = FeatureDatabase(features, collection.labels, related=collection.related)
    return database, collection


def run_variant(database, collection, related_score: float) -> np.ndarray:
    """Mean recall per iteration over the related-category queries."""
    recalls = []
    for target in sorted(collection.related):
        query_index = int(collection.indices_of(target)[0])
        user = SimulatedUser(
            database,
            target,
            same_category_score=1.0,
            related_category_score=related_score,
        )
        session = FeedbackSession(database, QclusterMethod(), k=K)
        outcome = session.run(query_index, n_iterations=N_ITERATIONS, user=user)
        recalls.append(outcome.recalls)
    return np.vstack(recalls).mean(axis=0)


def test_graded_scores_help_or_match(benchmark, related_database):
    database, collection = related_database

    def run():
        return {
            "binary (related = 1.0)": run_variant(database, collection, 1.0),
            "graded (related = 0.5)": run_variant(database, collection, 0.5),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(
        "Graded relevance: binary vs weighted related-category scores",
        ["iteration", *results],
    )
    for iteration in range(N_ITERATIONS + 1):
        table.add_row(
            iteration, *(f"{series[iteration]:.3f}" for series in results.values())
        )
    table.print()

    binary = results["binary (related = 1.0)"]
    graded = results["graded (related = 0.5)"]
    # Both exploit feedback...
    assert binary[-1] > binary[0]
    assert graded[-1] > graded[0]
    # ...and grading does not hurt.
    assert graded[-1] >= binary[-1] - 0.03
