"""Figure 6: CPU cost of the inverse vs the diagonal covariance scheme.

Paper finding: the diagonal scheme "significantly outperforms" the
inverse scheme in per-iteration CPU time, which is why Qcluster
defaults to diagonal.  At 16 dimensions in numpy the gap is modest
(LAPACK inverts tiny matrices cheaply); the direction must hold.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig06


@pytest.fixture(scope="module")
def relevant_set():
    return fig06.make_relevant_set()


@pytest.mark.parametrize("scheme", ["diagonal", "inverse"])
def test_fig06_scheme_cpu_time(benchmark, scheme, relevant_set):
    benchmark(fig06.one_feedback_round, scheme, relevant_set)


def test_fig06_diagonal_not_slower():
    result = fig06.run()
    result.as_table().print()
    # Allow 10% timing noise, but the diagonal scheme must not lose
    # decisively — and usually wins.
    assert result.diagonal_seconds <= result.inverse_seconds * 1.1


def test_fig06_gap_grows_with_dimensionality():
    """Figure 6 extended: the scheme gap widens as p grows (O(p^3) vs O(p))."""
    from repro.experiments.reporting import ResultTable

    results = fig06.dimension_sweep(dims=(8, 32, 64), repeats=5)
    table = ResultTable(
        "Figure 6 extended: scheme gap vs dimensionality",
        ["dim", "diagonal s/round", "inverse s/round", "inverse/diagonal"],
    )
    for result in results:
        table.add_row(
            result.dim,
            f"{result.diagonal_seconds:.5f}",
            f"{result.inverse_seconds:.5f}",
            f"{result.speedup:.2f}x",
        )
    table.print()
    # At the largest dimensionality the inverse scheme must be clearly
    # slower, and more so than at the smallest.
    assert results[-1].speedup > 1.0
    assert results[-1].speedup > results[0].speedup * 0.9
