"""Progressive filter-and-refine scan benchmark: the Eq. 5 cost claim.

Times the naive full scan (every row pays the complete aggregate
distance) against :func:`repro.core.progressive.progressive_topk`,
which scores a whitened dimension prefix, prunes rows whose monotone
Eq. 5 lower bound already exceeds the running k-th best, and refines
only the survivors.  The orderings must be byte-identical — the filter
may only ever change *cost* — and that identity is asserted in every
mode, so the CI smoke run doubles as an ordering-divergence gate.

Workload: an anisotropic rotated database (power-law axis scales, the
regime PCA-ordered prefixes exploit) with feedback-style queries whose
clusters come from real database neighbourhoods, exactly how Qcluster
builds them from marked results.  Far-away synthetic centers would
make every distance concentrate and nothing prune.

Writes ``BENCH_progressive.json`` (override via ``QCLUSTER_BENCH_OUT``)
with timings, speedups, refine fractions and per-prefix-level pruning
rates.  ``QCLUSTER_BENCH_SMALL=1`` shrinks the workload for CI and
skips the absolute speedup assertion (call overhead dominates tiny
runs) but never the exactness checks.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.covariance import get_scheme
from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.core.progressive import (
    ProgressiveScan,
    exact_top_k,
    progressive_topk,
    use_progressive,
)

SMALL = os.environ.get("QCLUSTER_BENCH_SMALL", "") == "1"

N = 3_000 if SMALL else 40_000
P = 32 if SMALL else 128
G = 4
K = 20
NEIGHBOURHOOD = 64
REPEATS = 3 if SMALL else 11

OUT_PATH = Path(os.environ.get("QCLUSTER_BENCH_OUT", "BENCH_progressive.json"))

SCHEME_MIXES = {
    "inverse": ["inverse"] * G,
    "mixed": ["inverse", "diagonal"] * (G // 2),
    "diagonal": ["diagonal"] * G,
}


def anisotropic_database(rng: np.random.Generator) -> np.ndarray:
    """Rotated power-law spectrum: realistic feature-space anisotropy."""
    scales = 1.0 / np.sqrt(np.arange(1, P + 1))
    rotation, _ = np.linalg.qr(rng.standard_normal((P, P)))
    return np.ascontiguousarray(
        (rng.standard_normal((N, P)) * scales) @ rotation.T
    )


def feedback_query(
    database: np.ndarray, rng: np.random.Generator, scheme_names
) -> DisjunctiveQuery:
    """Clusters fit to database neighbourhoods around in-data anchors."""
    points = []
    for scheme_name in scheme_names:
        scheme = get_scheme(scheme_name)
        anchor = database[rng.integers(0, database.shape[0])]
        gaps = database - anchor
        nearest = np.argpartition(
            np.einsum("ij,ij->i", gaps, gaps), NEIGHBOURHOOD
        )[:NEIGHBOURHOOD]
        cloud = database[nearest]
        info = scheme.invert(np.cov(cloud, rowvar=False))
        points.append(
            QueryPoint(
                center=cloud.mean(axis=0),
                inverse=info.inverse,
                weight=1.0,
                diagonal=info.diagonal,
            )
        )
    return DisjunctiveQuery(points)


def interleaved_best_of(timed: dict, repeats: int = REPEATS) -> dict:
    """Minimum wall time per callable over ``repeats`` interleaved rounds."""
    timings = {name: [] for name in timed}
    for _ in range(repeats):
        for name, callable_ in timed.items():
            start = time.perf_counter()
            callable_()
            timings[name].append(time.perf_counter() - start)
    return {name: min(values) for name, values in timings.items()}


@pytest.fixture(scope="module")
def payload():
    rng = np.random.default_rng(37)
    database = anisotropic_database(rng)
    queries = {
        mix: feedback_query(database, rng, schemes)
        for mix, schemes in SCHEME_MIXES.items()
    }

    timed = {}
    stats = {}
    for mix, query in queries.items():
        def full_run(query=query):
            with use_progressive(False):
                query.distances(database)

        def progressive_run(query=query):
            ProgressiveScan(database).knn(query, K)

        full_run()  # warm-up: kernel compile + allocations
        progressive_run()  # warm-up: plan + scan-context build
        result = ProgressiveScan(database).knn(query, K)
        stats[mix] = result.stats
        timed[f"{mix}:full"] = full_run
        timed[f"{mix}:progressive"] = progressive_run
    best = interleaved_best_of(timed)

    scans = {}
    for mix in SCHEME_MIXES:
        mix_stats = stats[mix]
        eligible = bool(mix_stats.schedule)
        survivors = list(mix_stats.survivors_per_level)
        entry = {
            "eligible": eligible,
            "full_seconds": best[f"{mix}:full"],
            "progressive_seconds": best[f"{mix}:progressive"],
            "speedup": best[f"{mix}:full"] / best[f"{mix}:progressive"],
            "candidates_refined": mix_stats.refined,
            "candidates_pruned": mix_stats.pruned,
            "refine_fraction": mix_stats.refine_fraction,
            "schedule": list(mix_stats.schedule),
            "survivors_per_level": survivors,
            "pruning_rate_per_level": [
                1.0 - alive / mix_stats.filtered for alive in survivors
            ],
        }
        if not eligible:
            entry["note"] = (
                "pure-diagonal scans are memory-bound O(N*p); a column "
                "prefix re-reads the same cache lines, so the plan is "
                "documented ineligible and the full scan runs instead"
            )
        scans[mix] = entry

    data = {
        "n": N,
        "p": P,
        "g": G,
        "k": K,
        "repeats": REPEATS,
        "small_mode": SMALL,
        "scans": scans,
    }
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    return data


class TestProgressiveScanBenchmark:
    def test_writes_benchmark_json(self, payload):
        assert OUT_PATH.exists()
        on_disk = json.loads(OUT_PATH.read_text())
        assert on_disk["n"] == N and on_disk["p"] == P and on_disk["k"] == K
        assert set(on_disk["scans"]) == set(SCHEME_MIXES)

    def test_orderings_byte_identical_in_every_mode(self, payload):
        """The divergence gate: filtered and naive top-k must agree
        exactly — indices AND distances — in SMALL mode too."""
        rng = np.random.default_rng(41)
        database = anisotropic_database(rng)
        for mix, schemes in SCHEME_MIXES.items():
            query = feedback_query(database, rng, schemes)
            result = ProgressiveScan(database).knn(query, K)
            with use_progressive(False):
                reference = query.distances(database)
            top = exact_top_k(reference, K)
            np.testing.assert_array_equal(result.indices, top)
            np.testing.assert_array_equal(result.distances, reference[top])

    def test_whitened_scans_prune(self, payload):
        for mix in ("inverse", "mixed"):
            entry = payload["scans"][mix]
            assert entry["eligible"]
            assert entry["candidates_pruned"] > 0
            assert entry["refine_fraction"] < 1.0
            assert (
                entry["candidates_pruned"] + entry["candidates_refined"] == N
            )
            # Later prefix levels only ever shrink the survivor set.
            survivors = entry["survivors_per_level"]
            assert survivors == sorted(survivors, reverse=True)

    def test_diagonal_scan_documented_fallback(self, payload):
        entry = payload["scans"]["diagonal"]
        assert not entry["eligible"]
        assert entry["refine_fraction"] == 1.0
        assert entry["candidates_pruned"] == 0

    def test_inverse_scan_speedup_meets_acceptance_bar(self, payload):
        """Acceptance: >=3x on the full-inverse scheme at N=40k, p=128,
        k=20 with byte-identical orderings."""
        entry = payload["scans"]["inverse"]
        print(
            f"\nprogressive vs full scan at N={N}, p={P}, g={G}, k={K}: "
            f"{entry['speedup']:.2f}x "
            f"(refine fraction {entry['refine_fraction']:.4f}, "
            f"pruned {entry['candidates_pruned']}/{N})"
        )
        mixed = payload["scans"]["mixed"]
        print(
            f"mixed scheme: {mixed['speedup']:.2f}x "
            f"(refine fraction {mixed['refine_fraction']:.4f})"
        )
        if SMALL:
            pytest.skip("small smoke run: timings dominated by call overhead")
        assert entry["speedup"] >= 3.0
        assert payload["scans"]["mixed"]["speedup"] >= 1.0
