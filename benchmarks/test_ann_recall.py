"""ANN tier benchmark: the recall-versus-speedup contract.

Sweeps the spill fraction for both split rules (kd max-variance and
random-projection) over the full Qcluster feedback workload — adaptive
multi-cluster ``scheme="inverse"`` queries, the production shape — and
scores each configuration's defeatist search against the exact
compiled shard scan: recall@k (mean and worst query), wall-clock
speedup, candidate fraction.  The shipped operating point
(``SpillTreeConfig()``: kd, spill 0.3) must clear the committed
contract here at full scale:

* recall@k >= 0.9 on the feedback workload, and
* >= 2x faster than the exact progressive scan.

Writes ``BENCH_ann.json`` (override via ``QCLUSTER_BENCH_ANN_OUT``).
``QCLUSTER_BENCH_SMALL=1`` shrinks the workload for CI and skips the
wall-clock speedup assertion (call overhead dominates tiny runs) but
never the recall assertions — the same small workload, reduced to its
deterministic metrics, is what ``compare_bench.py --suite ann`` gates
against ``baselines/ann.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.ann import DEFAULT_RULE, DEFAULT_SPILL, AnnSweepConfig, run_sweep

SMALL = os.environ.get("QCLUSTER_BENCH_SMALL", "") == "1"
OUT_PATH = Path(os.environ.get("QCLUSTER_BENCH_ANN_OUT", "BENCH_ann.json"))

#: The committed contract, also floored by ``baselines/ann.json``.
RECALL_FLOOR = 0.9
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def payload():
    config = AnnSweepConfig.small() if SMALL else AnnSweepConfig()
    data = run_sweep(config)
    data["small_mode"] = SMALL
    data["contract"] = {"recall": RECALL_FLOOR, "speedup": SPEEDUP_FLOOR}
    OUT_PATH.write_text(json.dumps(data, indent=2) + "\n")
    return data


def default_entry(payload):
    """The swept entry matching the shipped ``SpillTreeConfig()``."""
    by_name = {entry["name"]: entry for entry in payload["configs"]}
    assert payload["default"] in by_name, "sweep must include the operating point"
    return by_name[payload["default"]]


class TestAnnRecallBenchmark:
    def test_writes_benchmark_json(self, payload):
        assert OUT_PATH.exists()
        on_disk = json.loads(OUT_PATH.read_text())
        assert on_disk["n"] == payload["n"]
        assert on_disk["default"] == f"{DEFAULT_RULE}:spill={DEFAULT_SPILL:g}"
        names = {entry["name"] for entry in on_disk["configs"]}
        assert on_disk["default"] in names

    def test_defeatist_search_prunes_every_config(self, payload):
        """Approximation must buy something: no config scans everything."""
        for entry in payload["configs"]:
            assert 0.0 < entry["candidate_fraction"] < 1.0, entry["name"]
            assert entry["node_accesses_per_query"] > 0

    def test_spill_buys_recall(self, payload):
        """Overlap is the point: spilled descent beats the spill-free
        partition tree on recall for both split rules."""
        for rule in ("kd", "rp"):
            by_spill = {
                entry["spill"]: entry["recall_mean"]
                for entry in payload["configs"]
                if entry["rule"] == rule
            }
            assert by_spill[DEFAULT_SPILL] > by_spill[0.0], rule

    def test_calibration_tracks_measured_recall(self, payload):
        """The build-time estimate stamped on served pages must be in
        the neighbourhood of workload recall, not a fabrication."""
        entry = default_entry(payload)
        assert entry["calibrated_recall"] is not None
        assert abs(entry["calibrated_recall"] - entry["recall_mean"]) < 0.25

    def test_recall_contract_at_operating_point(self, payload):
        """The committed floor: recall@k >= 0.9 at the shipped config.

        Asserted unconditionally — small mode relaxes only timings.
        """
        entry = default_entry(payload)
        print(
            f"\nANN operating point ({entry['name']}) at N={payload['n']}: "
            f"recall={entry['recall_mean']:.3f} (min {entry['recall_min']:.2f}), "
            f"candidate fraction {entry['candidate_fraction']:.3f}, "
            f"speedup {entry['speedup']:.2f}x, "
            f"calibrated {entry['calibrated_recall']:.3f}"
        )
        assert entry["recall_mean"] >= RECALL_FLOOR

    def test_speedup_contract_at_operating_point(self, payload):
        """Acceptance: defeatist search >= 2x over the exact scan at
        recall >= 0.9, full scale."""
        entry = default_entry(payload)
        if SMALL:
            pytest.skip("small smoke run: timings dominated by call overhead")
        assert entry["speedup"] >= SPEEDUP_FLOOR
        assert entry["recall_mean"] >= RECALL_FLOOR
