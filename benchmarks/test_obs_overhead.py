"""Observability overhead: the disabled tracer must be ~free.

The tracing layer stays compiled into every hot path (classify, merge,
compile, scan, refine), so its *disabled* cost is what production pays
unconditionally.  Three measurements:

* the null path per instrumentation point — one context-variable read
  plus a no-op method call — benchmarked directly and budgeted against
  a feedback round (the <2% acceptance criterion, measured without
  wall-clock races);
* end-to-end sessions/sec with the default ``NULL_TRACER`` vs a
  recording :class:`~repro.obs.Tracer` (interleaved min-of-N, printed
  for the record; recording is allowed to cost something);
* sampled tracing (``sample_every`` large) must land near the disabled
  path, since unsampled roots short-circuit the whole trace.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.obs import NULL_TRACER, Tracer, add_event, current_tracer
from repro.retrieval import SimulatedUser
from repro.service import RetrievalService

#: Instrumentation points touched per feedback round, counted generously
#: (spans: feedback/classify/merge/compile/scan/refine; events:
#: result_cache/kernel_cache/index_knn/progressive_scan plus per-cluster
#: merge and seeding decisions).
CALLS_PER_ROUND = 64

#: The acceptance budget: disabled-tracer overhead per feedback round.
OVERHEAD_BUDGET = 0.02


def drive_session(service, database, query_id: int, rounds: int = 3) -> None:
    session = service.create_session(query_id)
    user = SimulatedUser(database, database.category_of(query_id))
    page = service.query(session)
    for _ in range(rounds):
        judgment = user.judge(page.ids)
        page = service.feedback(session, judgment.relevant_indices, judgment.scores)
    service.close(session)


def timed_workload(database, tracer, query_ids) -> float:
    service = RetrievalService(database, k=50, cache_size=0, tracer=tracer)
    try:
        start = time.perf_counter()
        for query_id in query_ids:
            drive_session(service, database, int(query_id))
        return time.perf_counter() - start
    finally:
        service.shutdown()


class TestDisabledOverhead:
    def test_null_path_cost_fits_round_budget(self, color_database):
        """Per-point null cost x points-per-round stays under 2% of a
        measured feedback round."""
        # Measure the null instrumentation point: ambient lookups plus
        # the no-op span round trip, exactly what hot paths execute.
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            with current_tracer().span("stage"):
                add_event("event", value=1)
        per_call = (time.perf_counter() - start) / n

        # Measure one real feedback round through the service.
        service = RetrievalService(color_database, k=50, cache_size=0)
        try:
            session = service.create_session(0)
            user = SimulatedUser(color_database, color_database.category_of(0))
            page = service.query(session)
            judgment = user.judge(page.ids)
            start = time.perf_counter()
            service.feedback(session, judgment.relevant_indices, judgment.scores)
            round_seconds = time.perf_counter() - start
        finally:
            service.shutdown()

        share = per_call * CALLS_PER_ROUND / round_seconds
        print(
            f"\nnull instrumentation point: {per_call * 1e9:.0f} ns; "
            f"{CALLS_PER_ROUND} points/round over a {round_seconds * 1e3:.1f} ms "
            f"round = {share:.4%} overhead"
        )
        assert share < OVERHEAD_BUDGET

    def test_disabled_fault_point_fits_round_budget(self, color_database):
        """The fault layer rides the same budget: with no plan armed a
        ``fault_point`` is one context-variable read, and a round's worth
        of them must stay under the 2% overhead criterion."""
        from repro.faults import fault_point, faults_active, register_site

        site = register_site("bench.overhead", "disabled-cost measurement site")
        assert not faults_active()
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            fault_point(site, key="k")
        per_call = (time.perf_counter() - start) / n

        service = RetrievalService(color_database, k=50, cache_size=0)
        try:
            session = service.create_session(0)
            user = SimulatedUser(color_database, color_database.category_of(0))
            page = service.query(session)
            judgment = user.judge(page.ids)
            start = time.perf_counter()
            service.feedback(session, judgment.relevant_indices, judgment.scores)
            round_seconds = time.perf_counter() - start
        finally:
            service.shutdown()

        share = per_call * CALLS_PER_ROUND / round_seconds
        print(
            f"\ndisabled fault point: {per_call * 1e9:.0f} ns; "
            f"{CALLS_PER_ROUND} points/round over a {round_seconds * 1e3:.1f} ms "
            f"round = {share:.4%} overhead"
        )
        assert share < OVERHEAD_BUDGET

    def test_propagation_and_slo_fit_round_budget(self, color_database):
        """The distributed-tracing PR's additions ride the same budget:
        header parse + context adoption + an always-on SLO observation
        per request, measured against a real feedback round."""
        from repro.obs import (
            SLOTracker,
            TraceContext,
            add_event,
            current_tracer,
            with_trace_context,
        )

        headers = {
            "traceparent": f"00-{'ab' * 16}-{'cd' * 8}-01",
            "x-request-id": "bench-req",
        }
        slo = SLOTracker()
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            context = TraceContext.from_headers(headers)
            with with_trace_context(context):
                with current_tracer().span("http_request"):
                    add_event("event", value=1)
            slo.observe("query", 0.001, tenant="bench", exact=True)
        per_request = (time.perf_counter() - start) / n

        service = RetrievalService(color_database, k=50, cache_size=0)
        try:
            session = service.create_session(0)
            user = SimulatedUser(color_database, color_database.category_of(0))
            page = service.query(session)
            judgment = user.judge(page.ids)
            start = time.perf_counter()
            service.feedback(session, judgment.relevant_indices, judgment.scores)
            round_seconds = time.perf_counter() - start
        finally:
            service.shutdown()

        # One request = one header parse, one adoption, one SLO sample —
        # not one per instrumentation point, so the per-round multiplier
        # is a handful of requests, budgeted generously at 4.
        share = per_request * 4 / round_seconds
        print(
            f"\npropagation+SLO per request: {per_request * 1e9:.0f} ns; "
            f"4 requests/round over a {round_seconds * 1e3:.1f} ms round "
            f"= {share:.4%} overhead"
        )
        assert share < OVERHEAD_BUDGET

    def test_null_tracer_is_the_default(self, color_database):
        service = RetrievalService(color_database)
        try:
            assert service.tracer is NULL_TRACER
            assert not service.tracer.enabled
        finally:
            service.shutdown()


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def query_ids(self, color_database):
        rng = np.random.default_rng(23)
        return rng.integers(0, color_database.size, size=6)

    def test_recording_and_sampled_tracing_cost(self, color_database, query_ids):
        timed_workload(color_database, None, query_ids)  # warm-up
        disabled, recording, sampled = [], [], []
        for _ in range(3):  # interleaved so noise bursts hit every path
            disabled.append(timed_workload(color_database, None, query_ids))
            recording.append(
                timed_workload(color_database, Tracer(max_traces=256), query_ids)
            )
            sampled.append(
                timed_workload(
                    color_database, Tracer(sample_every=1_000_000), query_ids
                )
            )
        base, traced, dark = min(disabled), min(recording), min(sampled)
        print(
            f"\nworkload: disabled {base * 1e3:.1f} ms, "
            f"recording {traced * 1e3:.1f} ms ({traced / base:.3f}x), "
            f"sampled-out {dark * 1e3:.1f} ms ({dark / base:.3f}x)"
        )
        # Recording every span may cost something, but never multiples.
        assert traced < base * 1.5
        # Sampling out must behave like disabled tracing (generous slack
        # for timer noise on a sub-second workload).
        assert dark < base * 1.25
