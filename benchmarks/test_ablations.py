"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these probe the knobs the paper fixes:

* the significance level alpha (effective radius / merge aggressiveness),
* the cluster budget ``max_clusters`` (g = 1 degenerates to MindReader),
* the aggregate exponent (the paper's harmonic fuzzy-OR vs the
  conjunctive average QEX uses), and
* the PCA retained-variance cutoff for the color pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import K
from repro.experiments.reporting import ResultTable
from repro.core.config import QclusterConfig
from repro.retrieval import QclusterMethod, run_batch

def print_table(title, headers, rows):
    """Render rows through the shared ResultTable reporter."""
    table = ResultTable(title, headers)
    for row in rows:
        table.add_row(*row)
    table.print()


N_ITERATIONS = 3
N_QUERIES = 12


@pytest.fixture(scope="module")
def ablation_queries(color_database):
    rng = np.random.default_rng(99)
    return rng.choice(color_database.size, size=N_QUERIES, replace=False)


def final_recall(database, config, queries) -> float:
    batch = run_batch(
        database,
        lambda: QclusterMethod(config),
        queries,
        k=K,
        n_iterations=N_ITERATIONS,
    )
    return float(batch.mean_recall[-1])


def test_ablation_max_clusters(benchmark, color_database, ablation_queries):
    """g = 1 (MindReader-like) must lose to a real multi-cluster budget."""

    def run():
        return {
            budget: final_recall(
                color_database, QclusterConfig(max_clusters=budget), ablation_queries
            )
            for budget in (1, 2, 3, 5, 8)
        }

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: cluster budget (max_clusters)",
        ["max_clusters", "final recall"],
        [[budget, f"{value:.3f}"] for budget, value in recalls.items()],
    )
    assert max(recalls[b] for b in (3, 5, 8)) > recalls[1]


def test_ablation_significance_level(benchmark, color_database, ablation_queries):
    """The radius alpha trades off cluster creation vs absorption."""

    def run():
        return {
            alpha: final_recall(
                color_database,
                QclusterConfig(significance_level=alpha),
                ablation_queries,
            )
            for alpha in (0.2, 0.05, 0.01, 0.001)
        }

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: effective-radius significance level",
        ["alpha", "final recall"],
        [[alpha, f"{value:.3f}"] for alpha, value in recalls.items()],
    )
    # All settings must function; the default should be competitive.
    assert recalls[0.05] >= max(recalls.values()) - 0.08


def test_ablation_merge_alpha(benchmark, color_database, ablation_queries):
    """Merge-test alpha: too large fragments modes, too small over-merges."""

    def run():
        return {
            alpha: final_recall(
                color_database,
                QclusterConfig(merge_significance_level=alpha, min_merge_alpha=min(1e-6, alpha / 10)),
                ablation_queries,
            )
            for alpha in (0.05, 0.001, 1e-5)
        }

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: merge-test significance level",
        ["merge alpha", "final recall"],
        [[alpha, f"{value:.3f}"] for alpha, value in recalls.items()],
    )
    assert recalls[0.001] >= max(recalls.values()) - 0.08


def test_ablation_batch_vs_sequential_classification(
    benchmark, color_database, ablation_queries
):
    """Algorithm 2's two readings: fixed-snapshot vs evolving statistics."""

    def run():
        return {
            mode: final_recall(
                color_database,
                QclusterConfig(batch_classification=(mode == "batch")),
                ablation_queries,
            )
            for mode in ("sequential", "batch")
        }

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: classification round style",
        ["mode", "final recall"],
        [[mode, f"{value:.3f}"] for mode, value in recalls.items()],
    )
    assert abs(recalls["sequential"] - recalls["batch"]) < 0.1


def test_ablation_discriminant(benchmark, color_database, ablation_queries):
    """Pooled (Eq. 10) vs per-cluster quadratic discriminant (Eq. 8)."""

    def run():
        return {
            mode: final_recall(
                color_database,
                QclusterConfig(discriminant=mode),
                ablation_queries,
            )
            for mode in ("pooled", "quadratic")
        }

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: classifier discriminant",
        ["discriminant", "final recall"],
        [[mode, f"{value:.3f}"] for mode, value in recalls.items()],
    )
    assert abs(recalls["pooled"] - recalls["quadratic"]) < 0.1


def test_ablation_initial_clustering_method(
    benchmark, color_database, ablation_queries
):
    """First-round clustering: the paper's hierarchical vs k-means."""

    def run():
        return {
            method: final_recall(
                color_database,
                QclusterConfig(initial_method=method),
                ablation_queries,
            )
            for method in ("hierarchical", "kmeans")
        }

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: initial clustering method",
        ["method", "final recall"],
        [[method, f"{value:.3f}"] for method, value in recalls.items()],
    )
    assert abs(recalls["hierarchical"] - recalls["kmeans"]) < 0.1


def test_ablation_regularization(benchmark, color_database, ablation_queries):
    """Covariance regularization epsilon: flat response expected in 3-d."""

    def run():
        return {
            epsilon: final_recall(
                color_database,
                QclusterConfig(regularization=epsilon),
                ablation_queries,
            )
            for epsilon in (1e-8, 1e-6, 1e-3)
        }

    recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: covariance regularization",
        ["epsilon", "final recall"],
        [[epsilon, f"{value:.3f}"] for epsilon, value in recalls.items()],
    )
    values = list(recalls.values())
    assert max(values) - min(values) < 0.15
