"""Figures 8-9: precision-recall graphs per feedback iteration.

Paper observations asserted here: the retrieval quality improves at
each iteration, and the increase is largest at the first iteration
(fast convergence to the user's information need).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import quality


@pytest.mark.parametrize("feature", ["color", "texture"])
def test_fig08_09_pr_per_iteration(benchmark, feature, protocol_data):
    result = benchmark.pedantic(
        quality.pr_curves, args=(protocol_data, feature), rounds=1, iterations=1
    )
    result.as_table().print()

    per_iteration = result.mean_precision_per_iteration
    assert per_iteration[-1] > per_iteration[0]
    jumps = np.diff(per_iteration)
    assert jumps[0] == max(jumps)  # biggest gain at the first iteration
