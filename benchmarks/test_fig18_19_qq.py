"""Figures 18-19: Q-Q plot of T^2 values vs random critical values.

Paper finding asserted here: same-mean pairs produce T^2 values on/near
the T^2 = c^2 line (both axes draw from approximately the same F
distribution), different-mean pairs sit far above it, and the statistic
cleanly separates the two populations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import t2_accuracy


@pytest.mark.parametrize("scheme_name", ["inverse", "diagonal"])
def test_fig18_19_qq_plot(benchmark, scheme_name):
    result = benchmark.pedantic(
        t2_accuracy.qq_data, args=(scheme_name,), rounds=1, iterations=1
    )
    result.as_table().print()

    sorted_statistics, sorted_labels, sorted_criticals = result.sorted_pairs()
    ratios = sorted_statistics / sorted_criticals
    lower_quarter = ratios[: len(ratios) // 4]
    upper_quarter = ratios[3 * len(ratios) // 4 :]

    assert np.median(lower_quarter) < 1.8
    assert np.median(upper_quarter) > 2.0
    assert np.median(upper_quarter) > 1.5 * np.median(lower_quarter)
    # The lower half of the ranking is same-mean pairs, the upper half
    # different-mean pairs.
    assert sorted_labels[: len(ratios) // 4].all()
    assert not sorted_labels[3 * len(ratios) // 4 :].any()
    assert result.statistics[~result.same_mean].min() > np.median(
        result.statistics[result.same_mean]
    )
