"""Figure 5 / Example 3: the disjunctive query on uniform synthetic data.

Paper setup: 10,000 points uniform in (-2,-2,-2)~(2,2,2); the aggregate
distance function (Equation 5, diagonal S, m_i = 1) around (-1,-1,-1)
and (1,1,1) retrieves the points of two separated balls.

The paper quotes 820 retrieved points for radius 1.0; that count is
inconsistent with the stated geometry (two radius-1 balls are 13.1 % of
the cube, ~1309 points — EXPERIMENTS.md note 1).  What the figure
demonstrates, and what this bench asserts, is the *shape*: the
retrieved set splits into two disjoint balls with nothing in between.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.uniform import uniform_cube
from repro.experiments import fig05


def test_fig05_aggregate_distance_speed(benchmark):
    """Time the Equation-5 evaluation over the full point set."""
    rng = np.random.default_rng(42)
    points = uniform_cube(10_000, rng=rng)
    query = fig05.build_query()
    benchmark(query.distances, points)


def test_fig05_disjunctive_retrieval(benchmark):
    result = benchmark.pedantic(fig05.run, rounds=1, iterations=1)
    result.as_table().print()

    # Shape assertions: two populated balls, empty gap, high agreement.
    assert result.near_first > 0.3 * result.n_in_balls
    assert result.near_second > 0.3 * result.n_in_balls
    assert result.in_gap == 0
    assert result.agreement > 0.9
