"""Figures 10-13: recall and precision per iteration, three approaches.

Paper findings asserted here: all three approaches coincide at the
initial query; quality rises per iteration for every method; and
Qcluster > QEX > QPM at the final iteration for both features and both
metrics.
"""

from __future__ import annotations

import pytest

from repro.experiments import quality


@pytest.mark.parametrize("feature", ["color", "texture"])
def test_fig10_13_three_approach_comparison(benchmark, feature, protocol_data):
    result = benchmark.pedantic(
        quality.comparison, args=(protocol_data, feature), rounds=1, iterations=1
    )
    for table in result.as_tables():
        table.print()

    recalls = result.series("mean_recall")
    precisions = result.series("mean_precision")

    # Identical initial iteration (paired protocol).
    assert recalls["qcluster"][0] == pytest.approx(recalls["qex"][0])
    assert recalls["qcluster"][0] == pytest.approx(recalls["qpm"][0])

    # Everyone improves over the session.
    for series in recalls.values():
        assert series[-1] > series[0]

    # The paper's ordering at the final iteration.
    assert recalls["qcluster"][-1] > recalls["qex"][-1]
    assert recalls["qcluster"][-1] > recalls["qpm"][-1]
    assert precisions["qcluster"][-1] > precisions["qex"][-1]
    assert precisions["qcluster"][-1] > precisions["qpm"][-1]
    assert recalls["qex"][-1] >= recalls["qpm"][-1]
