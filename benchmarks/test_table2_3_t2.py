"""Tables 2-3: accuracy of the T^2 cluster-merging decision.

Paper shape asserted here: same-mean pairs — avg statistic below
quantile-F, error-ratio near the test's nominal level; different-mean
pairs — avg statistic far above, error-ratio near zero and worst at the
lowest dimension; inverse and diagonal schemes nearly identical.
"""

from __future__ import annotations

import pytest

from repro.experiments import t2_accuracy

DIMENSIONS = t2_accuracy.DIMENSIONS


@pytest.mark.parametrize("scheme_name", ["inverse", "diagonal"])
def test_table2_same_means(benchmark, scheme_name):
    result = benchmark.pedantic(
        t2_accuracy.run_table, args=(True, scheme_name), rounds=1, iterations=1
    )
    result.as_table().print()
    for dim in DIMENSIONS:
        _, mean_stat, quantile, errors = result.per_dim[dim]
        assert mean_stat < quantile  # average well below the critical value
        assert errors <= 0.12        # near the nominal 5% level


@pytest.mark.parametrize("scheme_name", ["inverse", "diagonal"])
def test_table3_different_means(benchmark, scheme_name):
    result = benchmark.pedantic(
        t2_accuracy.run_table, args=(False, scheme_name), rounds=1, iterations=1
    )
    result.as_table().print()
    for dim in DIMENSIONS:
        _, mean_stat, quantile, errors = result.per_dim[dim]
        assert mean_stat > quantile  # average far above the critical value
        assert errors <= 0.15
    # The highest dim separates almost perfectly (paper: 0%; a couple of
    # percent at our displacement of 2 component-sd is within noise).
    assert result.per_dim[12][3] <= 0.05


def test_schemes_agree():
    """The paper's point of Tables 2-3: diagonal ~ inverse quality.

    The paper's own tables differ by up to 2 percentage points; we allow
    a slightly wider band (binomial noise over 100 pairs is ~±4 pp).
    """
    inverse = t2_accuracy.run_table(True, "inverse")
    diagonal = t2_accuracy.run_table(True, "diagonal")
    for dim in DIMENSIONS:
        assert abs(inverse.per_dim[dim][3] - diagonal.per_dim[dim][3]) <= 0.08
