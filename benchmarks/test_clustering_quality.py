"""Section 4.5: the clustering-quality measure over real sessions.

The paper defines its quality measure — leave-one-out reclassification
error over the final clusters — but reports it only for the synthetic
studies.  This bench applies it to the clusters Qcluster actually ends
up with after five feedback iterations on the image collection, per
query, and reports the distribution: well-formed clusters should
reclassify their own members with a low error rate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality import leave_one_out_error
from repro.experiments.reporting import ResultTable
from repro.retrieval import FeedbackSession, QclusterMethod

N_QUERIES = 12
K = 100
N_ITERATIONS = 5


@pytest.fixture(scope="module")
def final_cluster_reports(color_database):
    rng = np.random.default_rng(12)
    queries = rng.choice(color_database.size, N_QUERIES, replace=False)
    reports = []
    for query_index in queries:
        method = QclusterMethod()
        FeedbackSession(color_database, method, k=K).run(
            int(query_index), n_iterations=N_ITERATIONS
        )
        if method.engine.clusters:
            reports.append(
                (
                    int(query_index),
                    method.engine.n_clusters,
                    leave_one_out_error(method.engine.clusters, method.engine.classifier),
                )
            )
    return reports


def test_section45_quality_measure(benchmark, final_cluster_reports):
    reports = benchmark.pedantic(lambda: final_cluster_reports, rounds=1, iterations=1)
    table = ResultTable(
        "Section 4.5: leave-one-out error of the final clusters, per query",
        ["query", "clusters", "members evaluated", "error rate"],
    )
    error_rates = []
    for query_index, n_clusters, report in reports:
        table.add_row(query_index, n_clusters, report.total, f"{report.error_rate:.3f}")
        if report.total > 0:
            error_rates.append(report.error_rate)
    table.notes.append(
        f"mean error over {len(error_rates)} evaluable sessions: "
        f"{np.mean(error_rates):.3f}"
    )
    table.print()

    assert error_rates, "no session produced evaluable clusters"
    # The adaptive clustering should produce self-consistent clusters:
    # most members return home under leave-one-out.
    assert np.mean(error_rates) < 0.25
    assert np.median(error_rates) <= 0.15
