"""Shared fixtures for the paper-reproduction benchmarks.

Every module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index) by calling into the
:mod:`repro.experiments` library and asserting the *shape* the paper
reports; absolute numbers differ (Python on modern hardware vs C++ on
a Sun Ultra II; a procedural image collection vs Corel/Mantan).

Scale: the default protocol uses a 2,000-image collection and 30
queries so the directory runs in minutes; set ``QCLUSTER_BENCH_FULL=1``
for a scale closer to the paper's.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ProtocolConfig, ProtocolData

FULL_SCALE = os.environ.get("QCLUSTER_BENCH_FULL", "") == "1"

PROTOCOL = ProtocolConfig(
    n_categories=40 if FULL_SCALE else 20,
    n_queries=100 if FULL_SCALE else 30,
)

#: Re-exported protocol constants used in assertions.
K = PROTOCOL.k
N_ITERATIONS = PROTOCOL.n_iterations


@pytest.fixture(scope="session")
def protocol_data() -> ProtocolData:
    """Collection + both feature databases + the paired query sample."""
    return ProtocolData.build(PROTOCOL)


@pytest.fixture(scope="session")
def color_database(protocol_data):
    return protocol_data.color_database


@pytest.fixture(scope="session")
def texture_database(protocol_data):
    return protocol_data.texture_database


@pytest.fixture(scope="session")
def query_indices(protocol_data):
    return protocol_data.query_indices
