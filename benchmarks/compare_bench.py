#!/usr/bin/env python
"""Benchmark regression gate against committed baselines.

Runs two deterministic smoke workloads through the retrieval service —
the HybridTree index path and the sharded exact-scan path — and reduces
each to *scale-free, machine-independent* metrics: retrieval precision,
index node/IO accesses per query, progressive-scan pruning fraction,
cache hit rate, result-quality mix.  For a fixed seed these are
bit-deterministic, so they can be compared across CI runners where
absolute wall-clock timings cannot; a committed baseline under
``benchmarks/baselines/`` is the contract and any metric that moves in
the *bad* direction by more than the tolerance (default 25%) fails the
gate.

Usage::

    python benchmarks/compare_bench.py --check            # CI gate
    python benchmarks/compare_bench.py --check --report bench-report.json
    python benchmarks/compare_bench.py --record           # refresh baseline
    python benchmarks/compare_bench.py --check --suite store

``--record`` rewrites the baseline file; commit the result when a PR
intentionally changes the algorithmic profile.  ``--suite store`` runs
the feature-store workload instead (a memory-mapped store served
through both scan backends) against ``baselines/store.json``;
``--suite batching`` gates the cross-session batched scan (explicit
micro-batches byte-compared against their solo scans) against
``baselines/batching.json``; ``--suite ann`` runs the spill-tree
recall sweep at CI scale against ``baselines/ann.json``.

Baselines may also declare ``"floors"`` — absolute limits that hold
regardless of the relative tolerance (a floor for higher-is-better
metrics, a ceiling for lower-is-better ones).  The recall contract is
one: ``baselines/ann.json`` floors ``ann.recall_at_default`` at 0.9,
so a PR that drags defeatist recall below the contract fails the gate
even if the committed baseline itself had headroom.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.config import QclusterConfig  # noqa: E402
from repro.retrieval import FeatureDatabase, QclusterMethod, SimulatedUser  # noqa: E402
from repro.service import RetrievalService  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "smoke.json"
DEFAULT_TOLERANCE = 0.25

#: Whether a larger value is an improvement, per metric.  Metrics absent
#: here are recorded for the report but never gated.
DIRECTIONS = {
    "index.precision_at_k": "higher",
    "index.node_accesses_per_query": "lower",
    "index.io_accesses_per_query": "lower",
    "index.cache_hit_rate": "higher",
    "scan.precision_at_k": "higher",
    "scan.pruned_fraction": "higher",
    "scan.exact_page_fraction": "higher",
    "store.precision_at_k": "higher",
    "store.exact_page_fraction": "higher",
    "store.block_reads_per_query": "lower",
    "batching.page_match_fraction": "higher",
    "batching.coarse_page_match_fraction": "higher",
    "batching.pruned_fraction": "higher",
    "ann.recall_at_default": "higher",
    "ann.recall_min_at_default": "higher",
    "ann.calibrated_recall_at_default": "higher",
    "ann.candidate_fraction_at_default": "lower",
    "ann.spill_recall_gain": "higher",
}

# Sized so each workload is informative: >2048 rows per scan shard and
# >=16 dimensions so the progressive filter engages (its plan needs a
# coordinate prefix worth filtering on), and enough category overlap
# that precision sits below 1.0 with headroom to regress.
N_CATEGORIES = 12
POINTS_PER_CATEGORY = 220
DIMENSIONS = 16
N_QUERIES = 8
N_ROUNDS = 3
K = 20
SEED = 7


def build_database() -> FeatureDatabase:
    """Synthetic Gaussian categories, deterministic for ``SEED``."""
    rng = np.random.default_rng(SEED)
    centers = 2.0 * rng.standard_normal((N_CATEGORIES, DIMENSIONS))
    vectors = np.concatenate(
        [
            center + 1.5 * rng.standard_normal((POINTS_PER_CATEGORY, DIMENSIONS))
            for center in centers
        ]
    )
    labels = np.repeat(np.arange(N_CATEGORIES), POINTS_PER_CATEGORY)
    return FeatureDatabase(vectors, labels)


def drive_queries(service: RetrievalService, database: FeatureDatabase) -> float:
    """Run the feedback protocol; returns mean final-round precision@k."""
    rng = np.random.default_rng(SEED + 1)
    query_ids = rng.integers(0, database.size, size=N_QUERIES)
    precisions = []
    for query_id in query_ids:
        query_id = int(query_id)
        target = database.category_of(query_id)
        session = service.create_session(query_id)
        user = SimulatedUser(database, target)
        page = service.query(session)
        page = service.query(session)  # identical re-ask: exercises the cache
        for _ in range(N_ROUNDS):
            judgment = user.judge(page.ids)
            page = service.feedback(
                session, judgment.relevant_indices, judgment.scores
            )
        hits = sum(1 for i in page.ids if database.category_of(int(i)) == target)
        precisions.append(hits / len(page.ids))
        service.close(session)
    return float(np.mean(precisions))


def collect_metrics() -> dict:
    """The full metric set from both smoke workloads."""
    database = build_database()
    metrics = {}

    with RetrievalService(database, k=K, use_index=True, cache_size=64) as service:
        precision = drive_queries(service, database)
        snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        queries = counters["queries"] + counters["feedbacks"]
        metrics["index.precision_at_k"] = precision
        metrics["index.node_accesses_per_query"] = (
            counters.get("index_node_accesses", 0) / queries
        )
        metrics["index.io_accesses_per_query"] = (
            counters.get("index_io_accesses", 0) / queries
        )
        metrics["index.cache_hit_rate"] = snapshot["cache"]["hit_rate"]

    # Single shard keeps the whole database above the progressive
    # filter's minimum scan size, and the full-inverse covariance
    # scheme produces the whitened kernels its plan filters on, so
    # pruned_fraction is exercised.
    with RetrievalService(
        database,
        k=K,
        use_index=False,
        n_shards=1,
        cache_size=0,
        method_factory=lambda: QclusterMethod(QclusterConfig(scheme="inverse")),
    ) as service:
        precision = drive_queries(service, database)
        snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        pruned = counters.get("candidates_pruned", 0)
        refined = counters.get("candidates_refined", 0)
        pages = counters.get("results_exact", 0) + counters.get("results_degraded", 0)
        metrics["scan.precision_at_k"] = precision
        metrics["scan.pruned_fraction"] = (
            pruned / (pruned + refined) if pruned + refined else 0.0
        )
        metrics["scan.exact_page_fraction"] = (
            counters.get("results_exact", 0) / pages if pages else 0.0
        )

    return {name: round(float(value), 6) for name, value in metrics.items()}


def collect_store_metrics() -> dict:
    """The feature-store workload: the smoke queries served from a store.

    The same deterministic query/feedback protocol runs over a
    memory-mapped store built from the same database, through the
    thread-sharded store scan — measuring the store's profile in the
    same scale-free terms: precision (must match the in-memory path,
    the backend can't change rankings), the exact-page fraction
    (corruption-free serving), and block reads per query (the
    mmap-traffic analogue of the index's node accesses).  The 660-row
    shards sit below the progressive filter's minimum scan size, so
    pruning is intentionally not part of this suite (the smoke suite
    gates it on a single full-size shard).
    """
    import tempfile

    from repro.store import FeatureStore, build_store

    database = build_database()
    metrics = {}
    with tempfile.TemporaryDirectory() as tmp_dir:
        store_path = build_store(database, Path(tmp_dir) / "bench.qcs", n_shards=4)
        store = FeatureStore.open(store_path)
        with RetrievalService(
            store,
            k=K,
            use_index=False,
            cache_size=0,
            method_factory=lambda: QclusterMethod(QclusterConfig(scheme="inverse")),
        ) as service:
            precision = drive_queries(service, database)
            snapshot = service.metrics_snapshot()
            counters = snapshot["counters"]
            queries = counters["queries"] + counters["feedbacks"]
            pages = counters.get("results_exact", 0) + counters.get(
                "results_degraded", 0
            )
            metrics["store.precision_at_k"] = precision
            metrics["store.exact_page_fraction"] = (
                counters.get("results_exact", 0) / pages if pages else 0.0
            )
            metrics["store.block_reads_per_query"] = (
                snapshot["feature_store"]["block_reads"] / queries
            )
    return {name: round(float(value), 6) for name, value in metrics.items()}


def collect_batching_metrics() -> dict:
    """The cross-session batching workload, reduced to exact metrics.

    Timing-free by construction — queue timing can't be reproduced
    across runners, but the batched scan's *output* can: explicit
    micro-batches go through :meth:`RetrievalService.scan_batch` (the
    same stacked scan the executor dispatches) and every page is
    compared byte-for-byte against that query's solo scan kernel.  The
    gate is the match fraction (must stay 1.0) over a deterministic
    query mix — each session's round-0 single-point query plus its
    adaptive multi-cluster feedback queries — once against the
    in-memory float64 matrix and once against a feature store carrying
    PCA ``coarse`` companion blocks (the level-0 source unique to the
    batched store scan), plus the batched scan's pruning fraction.
    """
    import tempfile

    from repro.parallel import scan_shard_topk, shard_coarse_level0
    from repro.store import FeatureStore, build_store

    database = build_database()

    # Harvest the deterministic query mix by replaying the feedback
    # protocol with the method driven directly (no service involved).
    rng = np.random.default_rng(SEED + 2)
    queries = []
    for query_id in rng.integers(0, database.size, size=N_QUERIES):
        method = QclusterMethod(QclusterConfig(scheme="inverse"))
        user = SimulatedUser(database, database.category_of(int(query_id)))
        query = method.start(database.vectors[int(query_id)])
        for _ in range(N_ROUNDS):
            queries.append(query)
            ranked = scan_shard_topk(query, database.vectors, 0, K)[0]
            judgment = user.judge(ranked)
            if judgment.count == 0:
                break
            query = method.feedback(
                database.vectors[judgment.relevant_indices], judgment.scores
            )

    def match_fraction(service, solo_pages) -> float:
        matches = 0
        for start in range(0, len(queries), 8):
            chunk = queries[start : start + 8]
            batched = service.scan_batch(chunk, [K] * len(chunk))
            for position, (ids, distances, _reasons) in enumerate(batched):
                solo_ids, solo_distances = solo_pages[start + position]
                matches += (
                    ids.tobytes() == solo_ids.tobytes()
                    and distances.tobytes() == solo_distances.tobytes()
                )
        return matches / len(queries)

    metrics = {}
    solo_pages = [
        scan_shard_topk(query, database.vectors, 0, K)[:2] for query in queries
    ]
    with RetrievalService(
        database, k=K, use_index=False, n_shards=1, cache_size=0
    ) as service:
        metrics["batching.page_match_fraction"] = match_fraction(
            service, solo_pages
        )
        counters = service.metrics_snapshot()["counters"]
        pruned = counters.get("candidates_pruned", 0)
        refined = counters.get("candidates_refined", 0)
        metrics["batching.pruned_fraction"] = (
            pruned / (pruned + refined) if pruned + refined else 0.0
        )

    with tempfile.TemporaryDirectory() as tmp_dir:
        store_path = build_store(
            database, Path(tmp_dir) / "bench.qcs", n_shards=1, coarse_dims=8
        )
        store = FeatureStore.open(store_path)
        coarse = shard_coarse_level0(store, 0)
        solo_pages = [
            scan_shard_topk(query, store.shard(0), 0, K, coarse=coarse)[:2]
            for query in queries
        ]
        with RetrievalService(store, k=K, use_index=False, cache_size=0) as service:
            metrics["batching.coarse_page_match_fraction"] = match_fraction(
                service, solo_pages
            )

    return {name: round(float(value), 6) for name, value in metrics.items()}


def collect_ann_metrics() -> dict:
    """The ANN recall sweep at CI scale, reduced to exact metrics.

    Wall-clock speedup cannot be gated across runners, but recall can:
    the spill-tree build, the harvested feedback queries and the
    defeatist descents are all seeded, so recall at the shipped
    operating point — plus its worst query, its build-time calibration
    and its candidate fraction (the scale-free cost proxy) — are
    bit-deterministic.  ``spill_recall_gain`` (operating point minus
    the spill-free partition tree) guards the overlap machinery
    itself: if spilling stops buying recall, the tier is broken even
    if absolute recall still clears the floor.

    The committed baseline additionally *floors* ``recall_at_default``
    at the contract value (0.9): see ``baselines/ann.json``.
    """
    from repro.experiments.ann import DEFAULT_SPILL, small_sweep

    payload = small_sweep()
    by_name = {entry["name"]: entry for entry in payload["configs"]}
    default = by_name[payload["default"]]
    spill_free = by_name[f"{default['rule']}:spill=0"]
    metrics = {
        "ann.recall_at_default": default["recall_mean"],
        "ann.recall_min_at_default": default["recall_min"],
        "ann.calibrated_recall_at_default": default["calibrated_recall"],
        "ann.candidate_fraction_at_default": default["candidate_fraction"],
        "ann.spill_recall_gain": default["recall_mean"] - spill_free["recall_mean"],
    }
    assert default["spill"] == DEFAULT_SPILL
    return {name: round(float(value), 6) for name, value in metrics.items()}


#: Suite name → (metric collector, default committed baseline).
SUITES = {
    "smoke": (collect_metrics, DEFAULT_BASELINE),
    "store": (
        collect_store_metrics,
        REPO_ROOT / "benchmarks" / "baselines" / "store.json",
    ),
    "batching": (
        collect_batching_metrics,
        REPO_ROOT / "benchmarks" / "baselines" / "batching.json",
    ),
    "ann": (
        collect_ann_metrics,
        REPO_ROOT / "benchmarks" / "baselines" / "ann.json",
    ),
}


def compare(
    current: dict, baseline: dict, tolerance: float, floors: dict = None
) -> list:
    """Regressions (worse than baseline beyond ``tolerance``), as dicts.

    ``floors`` are absolute limits from the baseline file, checked in
    addition to the relative tolerance: a floor for higher-is-better
    metrics, a ceiling for lower-is-better ones.  They encode the
    contract itself (e.g. recall >= 0.9), so they bind even when the
    recorded baseline value has headroom above them.
    """
    regressions = []
    floors = floors or {}
    for name, direction in DIRECTIONS.items():
        if name not in baseline and name not in floors:
            continue
        base = baseline.get(name)
        if name not in current:
            regressions.append(
                {"metric": name, "baseline": base, "current": None,
                 "detail": "metric missing from the current run"}
            )
            continue
        value = current[name]
        if base is not None:
            if direction == "higher":
                floor = base * (1.0 - tolerance)
                regressed = value < floor and not np.isclose(value, floor)
            else:
                ceiling = base * (1.0 + tolerance)
                regressed = value > ceiling and not np.isclose(value, ceiling)
            if regressed:
                change = (value - base) / base if base else float("inf")
                regressions.append(
                    {"metric": name, "baseline": base, "current": value,
                     "detail": f"{change:+.1%} ({direction} is better)"}
                )
                continue
        if name in floors:
            limit = floors[name]
            if direction == "higher":
                breached = value < limit and not np.isclose(value, limit)
                bound = "floor"
            else:
                breached = value > limit and not np.isclose(value, limit)
                bound = "ceiling"
            if breached:
                regressions.append(
                    {"metric": name, "baseline": base, "current": value,
                     "detail": f"breaks the contract {bound} of {limit}"}
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    action = parser.add_mutually_exclusive_group()
    action.add_argument(
        "--check", action="store_true", help="gate against the baseline (default)"
    )
    action.add_argument(
        "--record", action="store_true", help="rewrite the baseline file"
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default="smoke",
        help="workload to run (default: smoke)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON path (default: the suite's committed baseline)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed relative regression before the gate fails",
    )
    parser.add_argument(
        "--report", type=Path, default=None,
        help="write a JSON comparison report here (the CI artifact)",
    )
    args = parser.parse_args(argv)

    collect, suite_baseline = SUITES[args.suite]
    if args.baseline is None:
        args.baseline = suite_baseline

    current = collect()
    for name in sorted(current):
        print(f"  {name:38s} {current[name]:.6f}")

    if args.record:
        recorded = {"tolerance": args.tolerance, "metrics": current}
        if args.baseline.exists():
            # Contract floors are declarations, not measurements —
            # re-recording the baseline must never loosen them.
            try:
                floors = json.loads(args.baseline.read_text()).get("floors")
            except (json.JSONDecodeError, AttributeError):
                floors = None
            if floors:
                recorded["floors"] = floors
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(recorded, indent=2) + "\n")
        print(f"baseline written to {args.baseline}")
        return 0

    # A broken gate must fail loudly in one line, not pass vacuously or
    # dump a traceback: CI treats any non-zero exit as a failed check.
    if not args.baseline.exists():
        print(
            f"compare_bench: no baseline at {args.baseline}; run with --record",
            file=sys.stderr,
        )
        return 2
    try:
        recorded = json.loads(args.baseline.read_text())
        baseline = recorded["metrics"]
        if not isinstance(baseline, dict):
            raise TypeError("'metrics' must be an object")
        floors = recorded.get("floors", {})
        if not isinstance(floors, dict):
            raise TypeError("'floors' must be an object")
    except (json.JSONDecodeError, KeyError, TypeError, AttributeError) as error:
        print(
            f"compare_bench: malformed baseline {args.baseline}: {error}",
            file=sys.stderr,
        )
        return 2
    tolerance = args.tolerance if args.tolerance != DEFAULT_TOLERANCE else recorded.get(
        "tolerance", DEFAULT_TOLERANCE
    )
    regressions = compare(current, baseline, tolerance, floors)

    if args.report is not None:
        args.report.write_text(
            json.dumps(
                {
                    "tolerance": tolerance,
                    "baseline": baseline,
                    "floors": floors,
                    "current": current,
                    "regressions": regressions,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"report written to {args.report}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {tolerance:.0%}:")
        for regression in regressions:
            print(
                f"  {regression['metric']}: {regression['baseline']} -> "
                f"{regression['current']} ({regression['detail']})"
            )
        return 1
    print(f"\nall {len(baseline)} gated metrics within {tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
