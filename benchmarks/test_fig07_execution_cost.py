"""Figure 7: execution cost of the three query-evaluation strategies.

Paper finding: the multipoint approach "saves the execution cost of an
iteration by caching the information of index nodes generated during
the previous iterations" — its per-iteration I/O collapses after
iteration 1, while the centroid-based approach pays full price every
time.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig07
from repro.index import CentroidSearcher, HybridTree, MultipointSearcher


@pytest.fixture(scope="module")
def queries(color_database):
    return fig07.session_queries(color_database)


@pytest.fixture(scope="module")
def tree(color_database):
    return HybridTree(color_database.vectors, node_size_bytes=4096)


def test_fig07_multipoint_vs_centroid_io(color_database):
    result = fig07.run(color_database)
    result.as_table().print()

    # After the cold first iteration the cached multipoint strategy is
    # strictly cheaper, and the session total is lower.
    assert sum(result.multipoint_io[1:]) < sum(result.centroid_io[1:])
    assert result.multipoint_total < result.centroid_total
    assert result.multipoint_io[-1] < result.multipoint_io[0]


@pytest.mark.parametrize("strategy", ["multipoint", "centroid"])
def test_fig07_wall_clock(benchmark, strategy, tree, queries):
    searcher_type = MultipointSearcher if strategy == "multipoint" else CentroidSearcher

    def run_session():
        searcher = searcher_type(tree)
        for query in queries:
            searcher.search(query, 100)
        return searcher.log

    benchmark(run_session)
