"""Using the system facade: the whole Figure-2 loop in a dozen lines.

Builds an :class:`~repro.system.ImageRetrievalSystem` over a generated
collection, queries with a *freshly rendered* image (not one in the
database — the real query-by-example situation), and walks through
several feedback rounds, printing what the user would see: page purity
and the shape of the refined query.

Run:  python examples/retrieval_system.py
"""

from __future__ import annotations

import numpy as np

from repro import ImageRetrievalSystem
from repro.datasets import generate_collection, render_mode_image


def main() -> None:
    print("Building the system (extract + index 1,200 images)...")
    collection = generate_collection(
        n_categories=12, images_per_category=100, image_size=20,
        complex_fraction=0.4, seed=42,
    )
    system = ImageRetrievalSystem(collection.images, feature="color", k=100)

    # The user photographs something that looks like category 3's first
    # visual mode — a brand-new image, not a database row.  (Category 3
    # is a complex category whose second mode is discoverable from the
    # first mode's result pages, like the paper's bird example.)
    target_category = 3
    spec = collection.categories[target_category]
    example = render_mode_image(spec.modes[0], 20, np.random.default_rng(99))
    print(
        f"Query: a fresh image in the style of category {target_category} "
        f"({'complex, ' + str(len(spec.modes)) + ' modes' if spec.is_complex else 'simple'})."
    )

    page = system.query_by_image(example)
    for round_number in range(5):
        labels = collection.labels[page.ids]
        purity = float(np.mean(labels == target_category))
        modes_seen = {int(m) for m in collection.modes[page.ids[labels == target_category]]}
        print(
            f"round {round_number}: page purity {purity:.0%}, "
            f"category modes on the page: {sorted(modes_seen) or '-'}"
        )
        relevant = [int(i) for i in page.ids if collection.labels[i] == target_category]
        if not relevant:
            print("  nothing relevant on the page; stopping")
            break
        page = system.give_feedback(relevant)

    labels = collection.labels[page.ids]
    print(f"final page purity: {float(np.mean(labels == target_category)):.0%}")
    system.end_session()


if __name__ == "__main__":
    main()
