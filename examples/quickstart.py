"""Quickstart: one Qcluster relevance-feedback session, end to end.

Builds a small procedural image collection, extracts the paper's color
feature (HSV moments, PCA-reduced to 3 dims), runs five feedback
iterations with a simulated user, and prints the per-iteration recall
and precision.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import generate_collection
from repro.features import color_pipeline
from repro.retrieval import (
    FeatureDatabase,
    FeedbackSession,
    QclusterMethod,
)


def main() -> None:
    print("Generating a 1,200-image collection (12 categories x 100 images)...")
    collection = generate_collection(
        n_categories=12, images_per_category=100, image_size=20, seed=42
    )
    print("Extracting HSV color moments and reducing to 3 dims with PCA...")
    features = color_pipeline().fit(collection.images)
    database = FeatureDatabase(features, collection.labels)

    query_index = int(collection.indices_of(0)[0])
    print(f"\nQuery image: index {query_index} (category 0, "
          f"{'complex' if collection.categories[0].is_complex else 'simple'} category)")

    method = QclusterMethod()
    session = FeedbackSession(database, method, k=100)
    result = session.run(query_index, n_iterations=5)

    print("\niteration  precision  recall  clusters")
    print("-" * 42)
    for record in result.records:
        print(
            f"{record.iteration:^9}  {record.precision:^9.3f}  "
            f"{record.recall:^6.3f}  {method.n_clusters:^8}"
        )

    improvement = result.recalls[-1] - result.recalls[0]
    print(f"\nRecall improved by {improvement:+.3f} over five feedback rounds.")
    if method.n_clusters > 1:
        print(
            f"The refined query is disjunctive: {method.n_clusters} clusters, "
            "one hyper-ellipsoid contour each."
        )


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
