"""Tour of the extension layer: negatives, PCA reduction, persistence.

Three short scenarios beyond the paper's core evaluation:

1. **Negative feedback** — the same query run positive-only and with
   the non-relevant-penalty re-ranker (Rocchio's negative idea applied
   to any method).
2. **Retrieval-time PCA reduction** — Qcluster run in a truncated
   principal-component space (Section 4.4 as a deployment feature).
3. **Session persistence** — pause a feedback session to JSON, reload,
   and keep iterating with identical behaviour.

Run:  python examples/extensions_tour.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.qcluster import QclusterEngine
from repro.datasets import generate_collection
from repro.extensions import (
    NegativeFeedbackSession,
    PCAReducedMethod,
    load_engine,
    save_engine,
)
from repro.features import color_pipeline
from repro.retrieval import FeatureDatabase, FeedbackSession, QclusterMethod


def negative_feedback_demo(database: FeatureDatabase, query_index: int) -> None:
    print("=== 1. negative feedback ===")
    positive = FeedbackSession(database, QclusterMethod(), k=100).run(
        query_index, n_iterations=4
    )
    with_negatives = NegativeFeedbackSession(
        database, QclusterMethod(), k=100, gamma=1.5
    ).run(query_index, n_iterations=4)
    print("iter  positive-only  with-negatives")
    for iteration in range(5):
        print(
            f"{iteration:^4}  {positive.precisions[iteration]:^13.3f}  "
            f"{with_negatives.precisions[iteration]:^14.3f}"
        )


def reduced_space_demo(database: FeatureDatabase, query_index: int) -> None:
    print("\n=== 2. retrieval-time PCA reduction ===")
    plain = FeedbackSession(database, QclusterMethod(), k=100).run(
        query_index, n_iterations=3
    )
    reduced = FeedbackSession(
        database,
        PCAReducedMethod(
            QclusterMethod, training_data=database.vectors, n_components=2
        ),
        k=100,
    ).run(query_index, n_iterations=3)
    print(f"final recall, full {database.dimension}-d space: {plain.recalls[-1]:.3f}")
    print(f"final recall, reduced 2-d space:   {reduced.recalls[-1]:.3f}")
    print("(Theorem 1: with no truncation the two are identical; truncation")
    print(" trades the discarded variance for cheaper distance evaluations.)")


def persistence_demo(database: FeatureDatabase, query_index: int) -> None:
    print("\n=== 3. pause/resume a session ===")
    engine = QclusterEngine()
    engine.start(database.vectors[query_index])
    rng = np.random.default_rng(1)
    first_batch = database.vectors[rng.choice(database.size, 20, replace=False)]
    engine.feedback(first_batch)
    print(f"after round 1: {engine.n_clusters} clusters, "
          f"mass {engine.total_relevance_mass:.0f}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.json"
        save_engine(engine, path)
        print(f"saved {path.stat().st_size} bytes of session state")
        resumed = load_engine(path)

    second_batch = database.vectors[rng.choice(database.size, 20, replace=False)]
    query_live = engine.feedback(second_batch)
    query_resumed = resumed.feedback(second_batch)
    probes = database.vectors[:50]
    drift = float(np.abs(query_live.distances(probes) - query_resumed.distances(probes)).max())
    print(f"after resuming and one more round, max ranking drift: {drift:.2e}")


def main() -> None:
    print("Building the collection...")
    collection = generate_collection(
        n_categories=12, images_per_category=100, image_size=20,
        complex_fraction=0.4, seed=42,
    )
    database = FeatureDatabase(color_pipeline().fit(collection.images), collection.labels)
    query_index = 0
    negative_feedback_demo(database, query_index)
    reduced_space_demo(database, query_index)
    persistence_demo(database, query_index)


if __name__ == "__main__":
    main()
