"""The paper's Example 3 / Figure 5: a disjunctive query in R^3.

10,000 points are drawn uniformly in the cube (-2,-2,-2) ~ (2,2,2).
A multipoint query with representatives at (-1,-1,-1) and (1,1,1) is
evaluated with the aggregate distance function (Equation 5).  The
retrieved set forms two disjoint balls — the contour of the aggregate
distance is two separate surfaces, which no single-point query and no
convex (QEX-style) combination can produce.

Run:  python examples/disjunctive_query_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PowerMeanQuery
from repro.core.distance import DisjunctiveQuery, QueryPoint
from repro.datasets.uniform import ball_membership, uniform_cube

CENTERS = [np.array([-1.0, -1.0, -1.0]), np.array([1.0, 1.0, 1.0])]


def ascii_slice(points: np.ndarray, mask: np.ndarray, width: int = 56, height: int = 24) -> str:
    """Project retrieved points onto the x = y plane diagonal for display."""
    # Coordinates along the main diagonal and one transverse axis.
    diagonal = points @ np.ones(3) / np.sqrt(3.0)
    transverse = points @ np.array([1.0, -1.0, 0.0]) / np.sqrt(2.0)
    grid = [[" "] * width for _ in range(height)]
    for d, t, retrieved in zip(diagonal, transverse, mask):
        if not retrieved:
            continue
        column = int((d + 3.5) / 7.0 * (width - 1))
        row = int((t + 3.0) / 6.0 * (height - 1))
        if 0 <= row < height and 0 <= column < width:
            grid[row][column] = "*"
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    rng = np.random.default_rng(42)
    points = uniform_cube(10_000, rng=rng)

    query = DisjunctiveQuery(
        [QueryPoint(center=c, inverse=np.eye(3), weight=1.0) for c in CENTERS]
    )
    distances = query.distances(points)

    truth = ball_membership(points, CENTERS, radius=1.0)
    n_target = int(truth.sum())
    retrieved = np.argsort(distances)[:n_target]
    mask = np.zeros(points.shape[0], dtype=bool)
    mask[retrieved] = True

    print(f"Points within 1.0 of either center: {n_target}")
    print(f"Retrieved the same number by aggregate distance (Equation 5).")
    overlap = int((mask & truth).sum())
    print(f"Agreement with the two-ball ground truth: {overlap / n_target:.1%}\n")

    print("Retrieved points projected onto the cube's main diagonal")
    print("(two disjoint blobs — the disjunctive contour of Figure 5):\n")
    print(ascii_slice(points, mask))

    # Contrast: the conjunctive (QEX-style) aggregate of the same two
    # representatives retrieves a single blob *between* the centers.
    convex = PowerMeanQuery(
        centers=np.stack(CENTERS),
        inverses=(np.eye(3), np.eye(3)),
        weights=np.ones(2),
        alpha=1.0,
    )
    convex_retrieved = np.argsort(convex.distances(points))[:n_target]
    convex_mask = np.zeros(points.shape[0], dtype=bool)
    convex_mask[convex_retrieved] = True
    in_balls = int((convex_mask & truth).sum())
    print(
        f"\nFor comparison, a convex (average-distance) combination of the same"
        f"\ntwo representatives retrieves only {in_balls / n_target:.1%} of the two-ball"
        "\ntarget — its single contour covers the middle of the cube instead:\n"
    )
    print(ascii_slice(points, convex_mask))


if __name__ == "__main__":
    main()
