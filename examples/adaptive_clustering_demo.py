"""The adaptive classification + cluster-merging machinery, up close.

Drives the two core algorithms directly on synthetic data:

1. Algorithm 2 (Bayesian classification): new points are placed in the
   nearest cluster by the discriminant of Equation 10, or open a new
   cluster when they fall outside the effective radius (Equation 6).
2. Algorithm 3 (cluster merging): Hotelling's T^2 (Equations 14-16)
   decides which clusters describe the same population.
3. Theorem 1 (linear invariance): the same decisions are taken after an
   arbitrary invertible linear transformation of the space.

Run:  python examples/adaptive_clustering_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier import BayesianClassifier
from repro.core.cluster import Cluster
from repro.core.covariance import InverseScheme
from repro.core.merging import ClusterMerger, pairwise_merge_test
from repro.stats.chi2 import effective_radius


def classification_demo(rng: np.random.Generator) -> None:
    print("=== Algorithm 2: adaptive Bayesian classification ===\n")
    clusters = [
        Cluster(rng.normal(0.0, 0.7, (25, 2))),
        Cluster(rng.normal(6.0, 0.7, (25, 2))),
    ]
    classifier = BayesianClassifier(significance_level=0.05)
    radius = effective_radius(2, 0.05)
    print(f"two clusters at (0,0) and (6,6); effective radius chi2_2(0.05) = {radius:.2f}\n")

    probes = {
        "near cluster 0": np.array([0.3, -0.2]),
        "near cluster 1": np.array([6.1, 5.8]),
        "between them": np.array([3.0, 3.0]),
        "far away": np.array([20.0, -15.0]),
    }
    state = classifier.prepare(clusters)
    print(f"{'probe':<16} {'winner':<7} {'d^2 to winner':<14} outcome")
    for name, point in probes.items():
        decision = classifier.classify(state, point)
        outcome = "NEW CLUSTER" if decision.is_outlier else f"joins cluster {decision.cluster_index}"
        print(
            f"{name:<16} {decision.cluster_index:<7} "
            f"{decision.radius_distance:<14.2f} {outcome}"
        )


def merging_demo(rng: np.random.Generator) -> None:
    print("\n=== Algorithm 3: cluster merging via Hotelling's T^2 ===\n")
    shared = rng.normal(0.0, 1.0, (60, 2))
    fragments = [
        Cluster(shared[:20]),
        Cluster(shared[20:40]),
        Cluster(shared[40:]),
        Cluster(rng.normal(10.0, 1.0, (20, 2))),
    ]
    print("four clusters: three fragments of one population + one distant blob\n")
    for i in range(len(fragments)):
        for j in range(i + 1, len(fragments)):
            result = pairwise_merge_test(fragments[i], fragments[j], significance_level=0.001)
            verdict = "merge" if result.should_merge else "keep separate"
            print(
                f"pair ({i},{j}): T^2 = {result.statistic:8.2f}, "
                f"c^2 = {result.critical:8.2f}  ->  {verdict}"
            )

    merged, records = ClusterMerger(significance_level=0.001, max_clusters=5).merge(fragments)
    print(f"\nafter the merge loop: {len(merged)} clusters "
          f"(sizes {[c.size for c in merged]}), {len(records)} merges executed")


def invariance_demo(rng: np.random.Generator) -> None:
    print("\n=== Theorem 1: linear-transformation invariance ===\n")
    points_a = rng.normal(0.0, 1.0, (30, 3))
    points_b = rng.normal(1.2, 1.0, (30, 3))
    transform = rng.standard_normal((3, 3)) + 2.5 * np.eye(3)
    scheme = InverseScheme(regularization=1e-12)

    original = pairwise_merge_test(Cluster(points_a), Cluster(points_b), scheme)
    mapped = pairwise_merge_test(
        Cluster(points_a @ transform.T), Cluster(points_b @ transform.T), scheme
    )
    print(f"T^2 in the original space:     {original.statistic:.6f}")
    print(f"T^2 after an invertible map A: {mapped.statistic:.6f}")
    print("identical (up to round-off) — the merge decision cannot depend on")
    print("whether the feature space is stretched, rotated or sheared.")


if __name__ == "__main__":
    generator = np.random.default_rng(0)
    classification_demo(generator)
    merging_demo(generator)
    invariance_demo(generator)
