"""A detailed relevance-feedback session on a complex image category.

Follows one query for a *complex* (bimodal) category through five
feedback iterations, showing what the paper's machinery does at each
step: how many clusters the adaptive classification + merging maintains,
their relevance masses, the merge decisions taken, and the resulting
retrieval quality — for both of the paper's feature sets.

Run:  python examples/image_retrieval_session.py
"""

from __future__ import annotations

import numpy as np

from repro.core.quality import leave_one_out_error
from repro.datasets import generate_collection
from repro.features import color_pipeline, texture_pipeline
from repro.retrieval import (
    FeatureDatabase,
    FeedbackSession,
    QclusterMethod,
    SimulatedUser,
)


def run_session(name: str, database: FeatureDatabase, query_index: int) -> None:
    print(f"\n=== {name} features ===")
    method = QclusterMethod()
    engine = method.engine
    user = SimulatedUser(database, database.category_of(query_index))
    session = FeedbackSession(database, method, k=60)

    query = method.start(database.vectors[query_index])
    print("iter  precision  recall  clusters  masses")
    for iteration in range(6):
        ranked = session.rank(query)
        mask, total = user.relevance_mask(ranked)
        judgment = user.judge(ranked)
        masses = ", ".join(f"{c.weight:.0f}" for c in engine.clusters) or "-"
        print(
            f"{iteration:^4}  {mask.mean():^9.3f}  {mask.sum() / total:^6.3f}  "
            f"{engine.n_clusters:^8}  [{masses}]"
        )
        if iteration == 5 or judgment.count == 0:
            break
        query = method.feedback(
            database.vectors[judgment.relevant_indices], judgment.scores
        )

    if engine.merge_history:
        print(f"\nmerge decisions taken: {len(engine.merge_history)}")
        for record in engine.merge_history[:5]:
            flag = "forced" if record.forced else f"T2={record.statistic:.1f} <= c2={record.critical:.1f}"
            print(f"  merged clusters {record.first} and {record.second} ({flag})")
        if len(engine.merge_history) > 5:
            print(f"  ... and {len(engine.merge_history) - 5} more")

    if engine.clusters:
        report = leave_one_out_error(engine.clusters, engine.classifier)
        print(
            f"leave-one-out clustering quality (Section 4.5): "
            f"error rate {report.error_rate:.1%} over {report.total} members"
        )


def main() -> None:
    print("Generating an 800-image collection (16 categories, 50% complex)...")
    collection = generate_collection(
        n_categories=16,
        images_per_category=50,
        image_size=20,
        complex_fraction=0.5,
        seed=7,
    )
    complex_categories = [s.category_id for s in collection.categories if s.is_complex]
    query_index = int(collection.indices_of(complex_categories[0])[0])
    print(
        f"Query: first image of category {complex_categories[0]} "
        f"(complex: two visual modes)."
    )

    print("Extracting color moments...")
    color_features = color_pipeline().fit(collection.images)
    run_session("color-moment", FeatureDatabase(color_features, collection.labels), query_index)

    print("\nExtracting GLCM texture (this is the slow part)...")
    texture_features = texture_pipeline().fit(collection.images)
    run_session("texture", FeatureDatabase(texture_features, collection.labels), query_index)


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
