"""The retrieval service: many concurrent users, one collection.

Demonstrates the `repro.service` subsystem end to end:

1. build a procedural collection and serve it through one
   `RetrievalService`,
2. drive eight concurrent simulated users, each running the paper's
   feedback loop in its own session (repeated page fetches exercise the
   result cache),
3. evict a session to its disk checkpoint and resume it losslessly,
4. degrade gracefully when the index misses an (artificially
   impossible) soft deadline,
5. print the operational metrics snapshot,
6. trace one full feedback session and render its span tree, write the
   JSONL event log (path via ``REPRO_TRACE_JSONL``, default
   ``examples/out/service_demo_trace.jsonl``), and print the Prometheus
   exposition.

Run:  PYTHONPATH=src python examples/service_demo.py
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np

from repro.datasets import generate_collection
from repro.features import color_pipeline
from repro.obs import JsonlTraceLog, Tracer, render_span_tree
from repro.retrieval import FeatureDatabase, SimulatedUser
from repro.service import RetrievalService


def build_database() -> FeatureDatabase:
    collection = generate_collection(
        n_categories=8, images_per_category=40, image_size=16, seed=42
    )
    features = color_pipeline().fit(collection.images)
    return FeatureDatabase(features, collection.labels)


def drive_user(service, database, query_id: int, rounds: int = 3) -> None:
    session = service.create_session(query_id)
    user = SimulatedUser(database, database.category_of(query_id))
    page = service.query(session)
    for _ in range(rounds):
        page = service.query(session)  # a page refresh — served from cache
        judgment = user.judge(page.ids)
        page = service.feedback(session, judgment.relevant_indices, judgment.scores)
    service.close(session)


def concurrent_users(database: FeatureDatabase) -> None:
    print("== eight concurrent users ==")
    service = RetrievalService(database, k=40, capacity=64)
    query_ids = np.random.default_rng(0).integers(0, database.size, size=8)
    threads = [
        threading.Thread(target=drive_user, args=(service, database, int(query_id)))
        for query_id in query_ids
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    snapshot = service.metrics_snapshot()
    service.shutdown()
    print(f"  {len(threads) / elapsed:.1f} sessions/sec")
    print(f"  cache hit rate: {snapshot['cache_hit_rate']:.2f}")
    print(f"  query p95: {snapshot['latency']['query']['p95'] * 1e3:.2f} ms")


def evict_and_resume(database: FeatureDatabase) -> None:
    print("== eviction checkpoint and lossless resume ==")
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        service = RetrievalService(
            database, k=40, capacity=1, checkpoint_dir=checkpoint_dir
        )
        user = SimulatedUser(database, database.category_of(0))
        session = service.create_session(0, session_id="alice")
        page = service.query(session)
        judgment = user.judge(page.ids)
        before = service.feedback(session, judgment.relevant_indices, judgment.scores)

        service.create_session(1, session_id="bob")  # alice is evicted to disk
        service.query("bob")
        print(f"  archived sessions: {service.store.archived_ids}")

        resumed = service.query("alice")  # transparently restored
        identical = np.array_equal(before.ids, resumed.ids)
        print(f"  resumed ranking identical: {identical}")
        print(
            f"  restored: {service.metrics.counter('sessions_restored')}, "
            f"evicted: {service.metrics.counter('sessions_evicted')}"
        )
        service.shutdown()


def graceful_degradation(database: FeatureDatabase) -> None:
    print("== graceful degradation on a missed deadline ==")
    service = RetrievalService(database, k=40, soft_deadline_s=1e-12, cache_size=0)
    reference = RetrievalService(database, k=40, use_index=False, cache_size=0)
    session = service.create_session(5)
    ref_session = reference.create_session(5)
    page = service.query(session)  # index path: misses the deadline
    fallback = service.query(session)  # now served by the exact scan
    expected = reference.query(ref_session)
    print(f"  degradations recorded: {service.metrics_snapshot()['degradations']}")
    print(
        "  fallback ranking exact: "
        f"{np.array_equal(fallback.ids, expected.ids) and np.array_equal(page.ids, expected.ids)}"
    )
    service.shutdown()
    reference.shutdown()


def traced_session(database: FeatureDatabase) -> None:
    print("== structured tracing of one feedback session ==")
    tracer = Tracer(max_traces=16)
    service = RetrievalService(database, k=40, tracer=tracer)
    drive_user(service, database, query_id=3, rounds=2)
    snapshot = service.metrics_snapshot()
    prometheus = service.prometheus_metrics()
    service.shutdown()

    feedback_traces = [t for t in tracer.traces() if t["name"] == "feedback"]
    print(render_span_tree(feedback_traces[0]))

    jsonl_path = os.environ.get(
        "REPRO_TRACE_JSONL", os.path.join("examples", "out", "service_demo_trace.jsonl")
    )
    parent = os.path.dirname(jsonl_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    log = JsonlTraceLog(jsonl_path)
    written = log.export_all(tracer)
    print(f"  wrote {written} spans to {jsonl_path}")

    aggregates = tracer.aggregates()
    print(f"  span aggregates: {sorted(aggregates['spans'])}")
    print(f"  event counts: {aggregates['events']}")
    print(f"  uptime: {snapshot['uptime_seconds']:.2f}s")
    print("  prometheus exposition (first lines):")
    for line in prometheus.splitlines()[:6]:
        print(f"    {line}")


def main() -> None:
    database = build_database()
    print(f"serving {database.size} images, {database.dimension}-d features\n")
    concurrent_users(database)
    print()
    evict_and_resume(database)
    print()
    graceful_degradation(database)
    print()
    traced_session(database)


if __name__ == "__main__":
    main()
