"""Compare Qcluster against QPM, QEX, FALCON and MindReader.

Reproduces the shape of the paper's Figures 10-13 in miniature: all
methods see the same random initial queries and the same simulated
user; recall and precision per iteration are averaged over queries.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import Falcon, MindReader, QueryExpansion, QueryPointMovement
from repro.datasets import generate_collection
from repro.features import color_pipeline
from repro.retrieval import (
    FeatureDatabase,
    QclusterMethod,
    compare_methods,
    sample_query_indices,
)

METHODS = {
    "qcluster": QclusterMethod,
    "qex": QueryExpansion,
    "qpm": QueryPointMovement,
    "falcon": Falcon,
    "mindreader": MindReader,
}


def main() -> None:
    print("Building the collection and color features...")
    collection = generate_collection(
        n_categories=15, images_per_category=100, image_size=20,
        complex_fraction=0.4, seed=42,
    )
    database = FeatureDatabase(color_pipeline().fit(collection.images), collection.labels)

    # Sample queries with a bias toward complex (bimodal) categories —
    # the population the multipoint machinery exists for.  The paper's
    # Corel subset is implicitly rich in such categories (Example 1).
    rng = np.random.default_rng(4)
    complex_ids = {s.category_id for s in collection.categories if s.is_complex}
    complex_pool = np.nonzero(np.isin(collection.labels, list(complex_ids)))[0]
    queries = np.concatenate(
        [
            rng.choice(complex_pool, size=10, replace=False),
            sample_query_indices(database, 5, rng),
        ]
    )

    print(f"Running {len(METHODS)} methods x {len(queries)} queries x 5 iterations...")
    results = compare_methods(database, METHODS, queries, k=100, n_iterations=5)

    for metric in ("mean_recall", "mean_precision"):
        label = metric.replace("mean_", "")
        print(f"\n{label} per iteration")
        print("iter  " + "  ".join(f"{name:>10}" for name in METHODS))
        for iteration in range(6):
            cells = "  ".join(
                f"{getattr(results[name], metric)[iteration]:>10.3f}" for name in METHODS
            )
            print(f"{iteration:^4}  {cells}")

    qcluster = results["qcluster"]
    print("\nRelative improvement of Qcluster at the final iteration:")
    for name in ("qex", "qpm", "falcon", "mindreader"):
        other = results[name]
        print(
            f"  vs {name:<10}: recall {qcluster.mean_recall[-1] / other.mean_recall[-1] - 1:+7.1%}, "
            f"precision {qcluster.mean_precision[-1] / other.mean_precision[-1] - 1:+7.1%}"
        )
    print(
        "\n(The paper reports ~+22% recall / +20% precision vs QEX and ~+34% / +33%"
        "\nvs QPM on the 30,000-image Corel/Mantan collection.)"
    )


if __name__ == "__main__":
    main()
