"""Indexing substrate: linear scan, bucketed kd tree, cached multipoint search."""

from .hybridtree import HybridTree, TreeNode
from .linear import KnnResult, LinearScan, SearchCost, page_capacity_for
from .multipoint import CentroidSearcher, MultipointSearcher, SessionCostLog

__all__ = [
    "HybridTree",
    "TreeNode",
    "KnnResult",
    "LinearScan",
    "SearchCost",
    "page_capacity_for",
    "CentroidSearcher",
    "MultipointSearcher",
    "SessionCostLog",
]
