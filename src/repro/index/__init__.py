"""Indexing substrate: linear scan, bucketed kd tree, cached multipoint
search, and the spill/RP-tree approximate tier."""

from .hybridtree import HybridTree, TreeNode
from .linear import KnnResult, LinearScan, SearchCost, page_capacity_for
from .multipoint import CentroidSearcher, MultipointSearcher, SessionCostLog
from .spill import DefeatistResult, SpillNode, SpillTree, SpillTreeConfig

__all__ = [
    "HybridTree",
    "TreeNode",
    "KnnResult",
    "LinearScan",
    "SearchCost",
    "page_capacity_for",
    "CentroidSearcher",
    "MultipointSearcher",
    "SessionCostLog",
    "SpillTree",
    "SpillTreeConfig",
    "SpillNode",
    "DefeatistResult",
]
