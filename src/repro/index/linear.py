"""Linear-scan k-NN — the reference the index is validated against.

Also the workhorse for small collections: a vectorized full scan over a
few thousand feature vectors is faster in numpy than tree traversal in
Python.  Cost accounting mirrors the tree's: the scan "reads" every data
page, where a page holds ``page_capacity`` vectors (the paper fixes
4 KB nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.distance import DisjunctiveQuery
from ..core.progressive import exact_top_k, progressive_topk
from ..obs import add_event

__all__ = ["SearchCost", "KnnResult", "LinearScan", "page_capacity_for"]


def page_capacity_for(dimension: int, node_size_bytes: int = 4096) -> int:
    """Vectors per disk page for 8-byte components (paper: 4 KB nodes)."""
    if dimension < 1:
        raise ValueError(f"dimension must be at least 1, got {dimension}")
    if node_size_bytes < 8 * dimension:
        raise ValueError(
            f"node of {node_size_bytes} bytes cannot hold one {dimension}-d vector"
        )
    return max(1, node_size_bytes // (8 * dimension))


@dataclass(frozen=True)
class SearchCost:
    """Cost accounting of one k-NN evaluation.

    Attributes:
        node_accesses: total index/data nodes touched.
        io_accesses: nodes that had to be fetched (not in cache).
        cached_accesses: nodes served from the iteration cache.
        distance_evaluations: candidate vectors whose aggregate distance
            was computed.
        candidates_pruned: candidate vectors discarded by the
            progressive filter on a lower bound alone (no exact
            distance ever computed).
    """

    node_accesses: int
    io_accesses: int
    cached_accesses: int
    distance_evaluations: int
    candidates_pruned: int = 0

    @property
    def refine_fraction(self) -> float:
        """Exactly-evaluated share of the candidates the query touched.

        ``1.0`` means every candidate was refined (no progressive
        pruning); small values mean the filter did most of the work.
        """
        touched = self.distance_evaluations + self.candidates_pruned
        return self.distance_evaluations / touched if touched else 1.0


@dataclass(frozen=True)
class KnnResult:
    """Result of a k-NN query: indices, distances and its cost."""

    indices: np.ndarray
    distances: np.ndarray
    cost: SearchCost


class LinearScan:
    """Exact k-NN by scanning the whole vector matrix.

    Args:
        vectors: ``(n, p)`` database matrix.
        node_size_bytes: modelled page size for cost accounting.
    """

    def __init__(self, vectors: np.ndarray, node_size_bytes: int = 4096) -> None:
        # One C-contiguous float64 copy up front: every knn/range call
        # then hands the kernels an array they can scan without any
        # further conversion or copying.
        vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=float)
        if vectors.shape[0] == 0:
            raise ValueError("cannot index an empty database")
        self.vectors = vectors
        self.page_capacity = page_capacity_for(vectors.shape[1], node_size_bytes)

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return self.vectors.shape[0]

    @property
    def n_pages(self) -> int:
        """Data pages the scan reads."""
        return -(-self.size // self.page_capacity)

    def knn(self, query: DisjunctiveQuery, k: int) -> KnnResult:
        """Exact ``k`` nearest neighbours under the query's aggregate distance."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        k = min(k, self.size)
        # Filter-and-refine fast path: lower-bound every row on a
        # coordinate prefix, compute exact distances only for survivors.
        # Byte-identical to the full scan below; pages are still read in
        # full (the filter touches every row), only distance arithmetic
        # is saved.
        progressive = progressive_topk(self.vectors, query, k)
        if progressive is not None:
            cost = SearchCost(
                node_accesses=self.n_pages,
                io_accesses=self.n_pages,
                cached_accesses=0,
                distance_evaluations=progressive.stats.refined,
                candidates_pruned=progressive.stats.pruned,
            )
            return KnnResult(
                indices=progressive.indices,
                distances=progressive.distances,
                cost=cost,
            )
        distances = query.distances(self.vectors)
        order = exact_top_k(distances, k)
        cost = SearchCost(
            node_accesses=self.n_pages,
            io_accesses=self.n_pages,
            cached_accesses=0,
            distance_evaluations=self.size,
        )
        add_event("linear_scan", pages=self.n_pages, refined=self.size, pruned=0)
        return KnnResult(indices=order, distances=distances[order], cost=cost)

    def range_query(self, query: DisjunctiveQuery, radius: float) -> KnnResult:
        """All points with aggregate distance at most ``radius``, sorted.

        The paper's retrieval model admits both k-NN and range queries
        (Section 1); a range query against a disjunctive aggregate
        retrieves the union of the per-cluster contours.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        distances = query.distances(self.vectors)
        hits = np.nonzero(distances <= radius)[0]
        hits = hits[np.argsort(distances[hits], kind="stable")]
        cost = SearchCost(
            node_accesses=self.n_pages,
            io_accesses=self.n_pages,
            cached_accesses=0,
            distance_evaluations=self.size,
        )
        return KnnResult(indices=hits, distances=distances[hits], cost=cost)
