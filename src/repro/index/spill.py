"""Spill / RP trees with defeatist (no-backtrack) search — the ANN tier.

The exact paths (:class:`~repro.index.hybridtree.HybridTree` best-first
search, the progressive sharded scan) guarantee byte-identical rankings
at a cost that grows with the database.  This module adds the cheap
tier the serving stack falls back to under traffic spikes: a
:class:`SpillTree` built with overlapping ("spilled") splits, searched
*defeatist* — a bounded root-to-leaf descent per query representative
with no distance-bound backtracking — so a k-NN costs a handful of
leaf scans per representative instead of a frontier walk over the
whole structure.

Two split rules, following Liu et al.'s spill trees and Dasgupta &
Freund's random-projection trees:

* ``"kd"`` — split on the maximum-variance coordinate;
* ``"rp"`` — split on the best of ``samples_rp`` random unit
  directions (highest projected variance), which adapts to intrinsic
  dimension when no single coordinate carries the spread.

Each internal node routes by a scalar projection against the median,
but children *overlap*: the left child keeps everything up to the
``0.5 + spill/2`` quantile (``high``) and the right everything from
the ``0.5 - spill/2`` quantile (``low``).  The descent is buffered:
a projection at or below ``low`` goes left only, at or above ``high``
right only, and inside the spill buffer *both* children are taken
(nearer side first), capped at ``max_leaves`` leaves per
representative.  There is never a backtrack — no node is revisited
after its leaves are scored — so cost stays bounded while boundary
queries (the failure mode of pure defeatist descent, especially under
Qcluster's Mahalanobis-stretched contours) still reach the leaves
holding their neighbours.  ``spill=0`` degenerates to a plain
partition tree (up to rows tied exactly at a median) with single-leaf
descent.

Leaf scoring reuses the exact machinery end to end: candidates from
the reached leaves are ranked by
:meth:`~repro.core.distance.DisjunctiveQuery.distances` (the compiled
kernels) under the same deterministic ``(distance, id)`` tie-break as
every exact path — the *only* approximation is which rows are scored.

Honesty is structural: the tree measures its own recall at build time
(:attr:`SpillTree.calibrated_recall`, a seeded probe against exact
ground truth) and every page served from this tier is stamped
``ResultQuality(approximate, estimated_recall=...)`` by the service.
The empirical contract — recall versus speedup over the exact
progressive scan — is swept by ``benchmarks/test_ann_recall.py`` and
enforced in CI by ``compare_bench.py --suite ann``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.distance import DisjunctiveQuery
from ..core.kernels import ensure_compiled
from ..core.progressive import exact_top_k
from ..faults import fault_point, register_site
from ..obs import add_event
from .linear import SearchCost, page_capacity_for

__all__ = ["SpillTree", "SpillTreeConfig", "SpillNode", "DefeatistResult"]

#: Chaos-injection site: fires on every node visited by a defeatist
#: descent, keyed by node id — an error aborts the ANN search like a
#: bad page read would, which the service absorbs by re-serving the
#: request through the exact scan (page stamped ``ann_fallback``).
_SITE_DESCEND = register_site(
    "index.descend", "spill-tree node read during a defeatist descent"
)

#: Calibration probes stop refining the estimate beyond this many
#: sampled queries — enough for a stable mean, cheap enough to run at
#: every build.
_MAX_CALIBRATION_QUERIES = 64


@dataclass(frozen=True)
class SpillTreeConfig:
    """Build-time knobs of the ANN tier.

    Attributes:
        rule: ``"kd"`` (max-variance coordinate) or ``"rp"`` (sampled
            random directions).
        spill: fraction of each node's points shared by both children,
            in ``[0, 0.9]``; larger widens the descent buffer (higher
            recall, costlier leaves).  The default matches the
            committed recall contract (``benchmarks/baselines/ann.json``).
        leaf_capacity: descent stops at nodes of at most this many
            points; default derives from 4 KB pages like the exact tree
            but with a floor that keeps defeatist recall useful.
        max_leaves: cap on leaves reached per representative when
            buffered descents fork at in-buffer projections; 1 forces
            classic single-leaf defeatist search.
        samples_rp: random directions scored per ``"rp"`` split.
        seed: seeds both the RP directions and the recall calibration.
        calibration_queries: sampled database rows probed to estimate
            recall at build time (0 disables; the tree then reports a
            conservative ``None``).
        calibration_k: neighbours per calibration probe.
    """

    rule: str = "kd"
    spill: float = 0.3
    leaf_capacity: Optional[int] = None
    max_leaves: int = 12
    samples_rp: int = 8
    seed: int = 0
    calibration_queries: int = 32
    calibration_k: int = 10

    def __post_init__(self) -> None:
        if self.rule not in ("kd", "rp"):
            raise ValueError(f"rule must be 'kd' or 'rp', got {self.rule!r}")
        if not 0.0 <= self.spill <= 0.9:
            raise ValueError(f"spill must be in [0, 0.9], got {self.spill}")
        if self.leaf_capacity is not None and self.leaf_capacity < 1:
            raise ValueError(
                f"leaf_capacity must be at least 1, got {self.leaf_capacity}"
            )
        if self.max_leaves < 1:
            raise ValueError(f"max_leaves must be at least 1, got {self.max_leaves}")
        if self.samples_rp < 1:
            raise ValueError(f"samples_rp must be at least 1, got {self.samples_rp}")
        if self.calibration_queries < 0:
            raise ValueError(
                f"calibration_queries must be non-negative, got {self.calibration_queries}"
            )
        if self.calibration_k < 1:
            raise ValueError(
                f"calibration_k must be at least 1, got {self.calibration_k}"
            )


@dataclass
class SpillNode:
    """One spill-tree node.

    Internal nodes route by a scalar projection: ``axis`` is set for
    ``"kd"`` splits (O(1) projection), ``direction`` for ``"rp"``
    splits.  ``low`` / ``high`` are the spill-buffer quantile bounds —
    projections strictly between them fall in the region both children
    share.  Leaves hold database row indices.
    """

    node_id: int
    indices: Optional[np.ndarray] = None
    axis: Optional[int] = None
    direction: Optional[np.ndarray] = None
    route: float = 0.0
    low: float = 0.0
    high: float = 0.0
    left: Optional["SpillNode"] = None
    right: Optional["SpillNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None

    def project(self, point: np.ndarray) -> float:
        """The routing scalar of one point at this node."""
        if self.axis is not None:
            return float(point[self.axis])
        assert self.direction is not None
        return float(point @ self.direction)


@dataclass(frozen=True)
class DefeatistResult:
    """Result of one defeatist multipoint search.

    Attributes:
        indices: database ids, best first (at most ``k``, fewer when
            the reached leaves held fewer candidates).
        distances: aggregate distances aligned with ``indices``.
        cost: node/candidate accounting, comparable to the exact paths.
        n_candidates: distinct rows the reached leaves contributed.
    """

    indices: np.ndarray
    distances: np.ndarray
    cost: SearchCost
    n_candidates: int


class SpillTree:
    """Overlapping-split tree with defeatist multipoint search.

    Args:
        vectors: ``(n, p)`` database matrix (shared, not copied).
        config: build knobs; default is the contract configuration.

    The tree never mutates ``vectors``; like the exact index it holds a
    C-contiguous float64 view so leaf scoring hands the compiled
    kernels scan-ready rows.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        config: Optional[SpillTreeConfig] = None,
    ) -> None:
        vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=float)
        if vectors.shape[0] == 0:
            raise ValueError("cannot index an empty database")
        self.vectors = vectors
        self.config = config if config is not None else SpillTreeConfig()
        if self.config.leaf_capacity is not None:
            self.leaf_capacity = self.config.leaf_capacity
        else:
            # Defeatist search sees a bounded handful of leaves per
            # representative, so leaves are sized generously — dozens
            # of 4 KB pages rather than one, floored and capped so
            # recall is neither a coin flip (tiny leaves) nor a full
            # scan in disguise (giant ones).
            per_page = page_capacity_for(vectors.shape[1])
            self.leaf_capacity = max(256, min(4096, 32 * per_page))
        self._rng = np.random.default_rng(self.config.seed)
        self._id_counter = itertools.count()
        self.root = self._build(np.arange(vectors.shape[0]))
        self.n_nodes = next(self._id_counter)
        self.calibrated_recall: Optional[float] = self._calibrate()

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return self.vectors.shape[0]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _split_direction(
        self, subset: np.ndarray
    ) -> Tuple[Optional[int], Optional[np.ndarray], np.ndarray]:
        """``(axis, direction, projections)`` for one split attempt."""
        if self.config.rule == "kd":
            axis = int(np.argmax(subset.var(axis=0)))
            return axis, None, subset[:, axis]
        best: Optional[np.ndarray] = None
        best_spread = -1.0
        best_projections: Optional[np.ndarray] = None
        for _ in range(self.config.samples_rp):
            direction = self._rng.standard_normal(subset.shape[1])
            norm = float(np.linalg.norm(direction))
            if norm == 0.0:
                continue
            direction /= norm
            projections = subset @ direction
            spread = float(projections.var())
            if spread > best_spread:
                best, best_spread = direction, spread
                best_projections = projections
        if best is None:  # pragma: no cover — p>=1 makes this unreachable
            axis = 0
            return axis, None, subset[:, axis]
        return None, best, best_projections

    def _build(self, indices: np.ndarray) -> SpillNode:
        node_id = next(self._id_counter)
        if indices.shape[0] <= self.leaf_capacity:
            return SpillNode(node_id=node_id, indices=indices)
        subset = self.vectors[indices]
        axis, direction, projections = self._split_direction(subset)
        if float(projections.max() - projections.min()) == 0.0:
            # Zero spread along the best direction (duplicate rows or a
            # constant subset): no split can separate anything — keep an
            # oversized leaf rather than recurse forever.
            return SpillNode(node_id=node_id, indices=indices)
        half_spill = self.config.spill / 2.0
        low, route, high = np.quantile(
            projections, [0.5 - half_spill, 0.5, 0.5 + half_spill]
        )
        left_mask = projections <= high
        right_mask = projections >= low
        if bool(left_mask.all()) or bool(right_mask.all()):
            # Heavy ties at the median: one child would swallow the
            # whole node and the recursion would never shrink.  Fall
            # back to a spill-free even split along the projection
            # order; ties at the cut stay deterministic (stable sort).
            order = np.argsort(projections, kind="stable")
            half = indices.shape[0] // 2
            cut = float(projections[order[half]])
            node = SpillNode(
                node_id=node_id,
                axis=axis,
                direction=direction,
                route=cut,
                low=cut,
                high=cut,
            )
            node.left = self._build(indices[order[:half]])
            node.right = self._build(indices[order[half:]])
            return node
        node = SpillNode(
            node_id=node_id,
            axis=axis,
            direction=direction,
            route=float(route),
            low=float(low),
            high=float(high),
        )
        node.left = self._build(indices[left_mask])
        node.right = self._build(indices[right_mask])
        return node

    # ------------------------------------------------------------------
    # Defeatist search
    # ------------------------------------------------------------------

    def _descend_steps(
        self, point: np.ndarray, inject: bool
    ) -> Tuple[List[SpillNode], int]:
        """Buffered defeatist descent: ``(reached leaves, nodes visited)``.

        Depth-first, never revisiting a node (no backtracking): at each
        internal node a projection at or below ``low`` routes left only,
        at or above ``high`` right only, and strictly inside the spill
        buffer takes *both* children — the nearer side explored first —
        until ``max_leaves`` leaves are reached.
        """
        leaves: List[SpillNode] = []
        stack = [self.root]
        visited = 0
        max_leaves = self.config.max_leaves
        while stack and len(leaves) < max_leaves:
            node = stack.pop()
            if inject:
                fault_point(_SITE_DESCEND, key=str(node.node_id))
            visited += 1
            if node.is_leaf:
                leaves.append(node)
                continue
            projection = node.project(point)
            if projection <= node.low:
                stack.append(node.left)
            elif projection >= node.high:
                stack.append(node.right)
            elif projection <= node.route:
                stack.append(node.right)
                stack.append(node.left)
            else:
                stack.append(node.left)
                stack.append(node.right)
        return leaves, visited

    def _descend(self, point: np.ndarray) -> Tuple[List[SpillNode], int]:
        """The leaves one point routes to; ``(leaves, nodes visited)``."""
        return self._descend_steps(point, inject=True)

    def candidates_for(self, query: DisjunctiveQuery) -> Tuple[np.ndarray, int]:
        """Union of leaf candidates over the query's representatives.

        Returns ``(sorted database row ids, nodes visited)`` — sorted so
        downstream scoring is independent of representative order.
        """
        if query.dimension != self.vectors.shape[1]:
            raise ValueError(
                f"query dimension {query.dimension} != index dimension "
                f"{self.vectors.shape[1]}"
            )
        visited = 0
        member = np.zeros(self.vectors.shape[0], dtype=bool)
        for query_point in query.points:
            leaves, steps = self._descend(np.asarray(query_point.center, dtype=float))
            visited += steps
            for leaf in leaves:
                member[leaf.indices] = True
        return np.nonzero(member)[0], visited

    def defeatist_search(self, query: DisjunctiveQuery, k: int) -> DefeatistResult:
        """Top-``k`` over the reached leaves only — no backtracking.

        A bounded descent per query representative gathers the
        candidate union; exact aggregate distances over those rows come
        from the query's compiled kernels and are ranked under the
        shared ``(distance, id)`` tie-break.  May return fewer than
        ``k`` rows when the reached leaves held fewer candidates.
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        ensure_compiled(query)
        candidates, visited = self.candidates_for(query)
        distances = query.distances(self.vectors[candidates])
        order = exact_top_k(
            distances, min(k, candidates.shape[0]), tie_break=candidates
        )
        cost = SearchCost(
            node_accesses=visited,
            io_accesses=visited,
            cached_accesses=0,
            distance_evaluations=int(candidates.shape[0]),
            candidates_pruned=int(self.size - candidates.shape[0]),
        )
        add_event(
            "ann_search",
            node_accesses=visited,
            candidates=int(candidates.shape[0]),
            database=self.size,
        )
        return DefeatistResult(
            indices=candidates[order],
            distances=distances[order],
            cost=cost,
            n_candidates=int(candidates.shape[0]),
        )

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def _calibrate(self) -> Optional[float]:
        """Measured recall@k of defeatist descent on sampled rows.

        Seeded and deterministic: sample database rows, run the
        single-point defeatist descent for each, and check how many of
        the row's *exact* Euclidean ``calibration_k`` neighbours landed
        in the reached leaves.  Single-point Euclidean probes are a
        proxy for the production disjunctive queries (each
        representative of a multipoint query descends independently, so
        per-point recall is the quantity that composes); the empirical
        contract over real disjunctive workloads lives in the benchmark
        suite.
        """
        n_queries = min(
            self.config.calibration_queries, _MAX_CALIBRATION_QUERIES, self.size
        )
        if n_queries == 0:
            return None
        rng = np.random.default_rng(self.config.seed + 1)
        sample = rng.choice(self.size, size=n_queries, replace=False)
        k = min(self.config.calibration_k, self.size)
        recalls: List[float] = []
        for row in sample:
            point = self.vectors[int(row)]
            leaves, _ = self._descend_steps(point, inject=False)
            reached = set(int(i) for leaf in leaves for i in leaf.indices)
            exact = np.sum((self.vectors - point) ** 2, axis=1)
            true_top = exact_top_k(exact, k)
            hits = sum(1 for i in true_top if int(i) in reached)
            recalls.append(hits / k)
        return float(np.mean(recalls))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def leaf_sizes(self) -> List[int]:
        """Sizes of every leaf (diagnostics and tests)."""
        sizes: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                sizes.append(int(node.indices.shape[0]))
            else:
                stack.append(node.left)
                stack.append(node.right)
        return sizes

    def stats(self) -> dict:
        """Shape summary: nodes, leaves, depth-free size profile."""
        sizes = self.leaf_sizes()
        return {
            "rule": self.config.rule,
            "spill": self.config.spill,
            "max_leaves": self.config.max_leaves,
            "n_nodes": self.n_nodes,
            "n_leaves": len(sizes),
            "leaf_capacity": self.leaf_capacity,
            "mean_leaf_size": float(np.mean(sizes)) if sizes else 0.0,
            "max_leaf_size": int(max(sizes)) if sizes else 0,
            "calibrated_recall": self.calibrated_recall,
        }
