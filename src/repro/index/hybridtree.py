"""Bucketed kd-split tree — our stand-in for the hybrid tree [6].

The paper indexes feature vectors with the hybrid tree of Chakrabarti &
Mehrotra, a disk-based high-dimensional index with 4 KB nodes and
best-first k-NN.  For the reproduction, what matters is:

* data lives in page-sized leaf buckets,
* internal nodes carry bounding rectangles that yield *lower bounds* on
  any (quadratic/aggregate) distance, enabling best-first pruning, and
* node accesses are countable, so the execution-cost comparison of
  Figure 7 is meaningful.

A median-split kd tree with leaf buckets satisfies all three; the exact
hybrid-tree split machinery (overlap-free 1-d splits with live space
encoding) affects constants, not the shape of any reported result.

Lower bounds: for an axis-aligned box and a quadratic form with matrix
``A``, the squared form at the box's nearest point ``x*`` satisfies
``(x*-c)'A(x*-c) >= lambda_min(A) ||x*-c||^2``; when ``A`` is diagonal
the per-axis bound ``sum_j A_jj delta_j^2`` is exact.  The aggregate
disjunctive distance is monotone in each per-cluster distance, so
plugging per-cluster lower bounds yields a valid aggregate bound.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

import numpy as np

from ..core.distance import DisjunctiveQuery
from ..core.kernels import ensure_compiled, kernels_enabled
from ..core.progressive import (
    ProgressivePlan,
    plan_for,
    progressive_enabled,
    prune_threshold,
)
from ..faults import fault_point, register_site
from ..obs import add_event
from .linear import KnnResult, SearchCost, page_capacity_for

__all__ = ["TreeNode", "HybridTree"]

#: Chaos-injection site: fires on every node access of a tree search,
#: keyed by node id — an error here aborts the search like a bad page
#: read would, which the service absorbs by falling back to the exact
#: sharded scan (identical results, recorded degradation).
_SITE_TREE_NODE = register_site("tree.node", "index node read during a tree search")


@dataclass
class TreeNode:
    """One node of the tree (leaf or internal).

    Attributes:
        node_id: unique id within its tree (used by the node cache).
        low, high: the node's minimum bounding rectangle.
        indices: database row indices (leaves only).
        left, right: children (internal nodes only).
    """

    node_id: int
    low: np.ndarray
    high: np.ndarray
    indices: Optional[np.ndarray] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class HybridTree:
    """Median-split bucket tree with best-first multipoint k-NN.

    Args:
        vectors: ``(n, p)`` database matrix.
        node_size_bytes: leaf capacity is derived from this (paper: 4 KB).
        leaf_capacity: explicit override of the derived capacity.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        node_size_bytes: int = 4096,
        leaf_capacity: Optional[int] = None,
    ) -> None:
        vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=float)
        if vectors.shape[0] == 0:
            raise ValueError("cannot index an empty database")
        self.vectors = vectors
        if leaf_capacity is None:
            leaf_capacity = page_capacity_for(vectors.shape[1], node_size_bytes)
        if leaf_capacity < 1:
            raise ValueError(f"leaf_capacity must be at least 1, got {leaf_capacity}")
        self.leaf_capacity = leaf_capacity
        self._id_counter = itertools.count()
        self._alive = np.ones(vectors.shape[0], dtype=bool)
        self.root = self._build(np.arange(vectors.shape[0]))
        self.n_nodes = next(self._id_counter)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, indices: np.ndarray) -> TreeNode:
        subset = self.vectors[indices]
        low = subset.min(axis=0)
        high = subset.max(axis=0)
        node_id = next(self._id_counter)
        if indices.shape[0] <= self.leaf_capacity:
            return TreeNode(node_id=node_id, low=low, high=high, indices=indices)
        spreads = high - low
        split_dim = int(np.argmax(spreads))
        if spreads[split_dim] == 0.0:
            # All duplicates: no useful split; make an oversized leaf.
            return TreeNode(node_id=node_id, low=low, high=high, indices=indices)
        order = np.argsort(subset[:, split_dim], kind="stable")
        half = indices.shape[0] // 2
        left = self._build(indices[order[:half]])
        right = self._build(indices[order[half:]])
        return TreeNode(node_id=node_id, low=low, high=high, left=left, right=right)

    # ------------------------------------------------------------------
    # Lower bounds
    # ------------------------------------------------------------------

    @staticmethod
    def _prepare_bounds(query: DisjunctiveQuery) -> List[Tuple[np.ndarray, Optional[np.ndarray], float]]:
        """Per query point: (center, diagonal or None, lambda_min).

        Diagonal inverses get the exact per-axis bound; full matrices fall
        back to the smallest-eigenvalue bound.  Served by the compiled
        kernel layer: the eigen-decomposition for a full matrix happens
        once per cluster state, not once per k-NN call, and is reused
        across the feedback rounds and sessions sharing the query.
        """
        return ensure_compiled(query).bound_infos()

    @staticmethod
    def _progressive_plan(query: DisjunctiveQuery) -> Optional[ProgressivePlan]:
        """The query's prefix plan when progressive pruning applies.

        ``None`` routes the search through the classic bounds/full-leaf
        path — the plan only ever *tightens* node bounds and *filters*
        leaf candidates on valid lower bounds, so both paths return
        identical results.
        """
        if not (progressive_enabled() and kernels_enabled()):
            return None
        if getattr(query, "combine_per_cluster", None) is None:
            return None
        return plan_for(ensure_compiled(query))

    @staticmethod
    def _box_lower_bounds(
        prepared: List[Tuple[np.ndarray, Optional[np.ndarray], float]],
        low: np.ndarray,
        high: np.ndarray,
    ) -> np.ndarray:
        """Per-query-point lower bounds of the quadratic distance to a box."""
        bounds = np.empty(len(prepared))
        for position, (center, diagonal, lambda_min) in enumerate(prepared):
            delta = np.maximum(np.maximum(low - center, center - high), 0.0)
            if diagonal is not None:
                bounds[position] = float(np.sum(diagonal * delta**2))
            else:
                bounds[position] = lambda_min * float(np.sum(delta**2))
        return bounds

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def knn(
        self,
        query: DisjunctiveQuery,
        k: int,
        node_cache: Optional[Set[int]] = None,
    ) -> KnnResult:
        """Best-first exact k-NN under the query's aggregate distance.

        Args:
            query: the (multipoint) query to rank by.
            k: neighbours to return.
            node_cache: optional set of node ids already resident in
                memory from earlier iterations; accesses to them count as
                cached rather than I/O, and every node visited is added.
                This is the node-caching technique of the multipoint
                approach [7] that Figure 7 credits for Qcluster's low
                execution cost.
        """
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if query.dimension != self.vectors.shape[1]:
            raise ValueError(
                f"query dimension {query.dimension} != index dimension "
                f"{self.vectors.shape[1]}"
            )
        k = min(k, self.size)
        if k == 0:
            return KnnResult(
                indices=np.empty(0, dtype=int),
                distances=np.empty(0),
                cost=SearchCost(0, 0, 0, 0),
            )
        prepared = self._prepare_bounds(query)
        plan = self._progressive_plan(query)

        def aggregate_bound(node: TreeNode) -> float:
            if plan is not None:
                # Interval-arithmetic prefix bounds: never looser than
                # the classic per-point bounds (each takes the max with
                # its classic counterpart), so pruning only improves.
                per_point = plan.box_lower_bounds(node.low, node.high)
            else:
                per_point = self._box_lower_bounds(prepared, node.low, node.high)
            return float(query.lower_bound_from_center_distance(per_point)[0])

        counter = itertools.count()
        frontier: List[Tuple[float, int, TreeNode]] = [
            (aggregate_bound(self.root), next(counter), self.root)
        ]
        # Max-heap of current best k, keyed by negative distance.
        best: List[Tuple[float, int]] = []
        node_accesses = 0
        io_accesses = 0
        cached_accesses = 0
        distance_evaluations = 0
        candidates_pruned = 0

        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if len(best) == k and bound >= -best[0][0]:
                break
            fault_point(_SITE_TREE_NODE, key=str(node.node_id))
            node_accesses += 1
            if node_cache is not None and node.node_id in node_cache:
                cached_accesses += 1
            else:
                io_accesses += 1
                if node_cache is not None:
                    node_cache.add(node.node_id)
            if node.is_leaf:
                candidates = node.indices[self._alive[node.indices]]
                if candidates.shape[0] == 0:
                    continue
                if plan is not None and len(best) == k and candidates.shape[0] >= 8:
                    # Leaf filter: lower-bound the bucket on the first
                    # prefix level; only survivors pay an exact
                    # distance.  A pruned candidate's distance exceeds
                    # the current k-th best, so it could never enter
                    # the heap (strict < below) — results unchanged.
                    cut = prune_threshold(-best[0][0])
                    leaf_bounds = query.combine_per_cluster(
                        plan.prefix_distances(
                            self.vectors[candidates], 0, plan.schedule[0]
                        )
                    )
                    keep = leaf_bounds <= cut
                    candidates_pruned += int(
                        candidates.shape[0] - np.count_nonzero(keep)
                    )
                    candidates = candidates[keep]
                    if candidates.shape[0] == 0:
                        continue
                distances = query.distances(self.vectors[candidates])
                distance_evaluations += candidates.shape[0]
                for distance, index in zip(distances, candidates):
                    if len(best) < k:
                        heapq.heappush(best, (-float(distance), int(index)))
                    elif distance < -best[0][0]:
                        heapq.heapreplace(best, (-float(distance), int(index)))
            else:
                for child in (node.left, node.right):
                    child_bound = aggregate_bound(child)
                    if len(best) < k or child_bound < -best[0][0]:
                        heapq.heappush(frontier, (child_bound, next(counter), child))

        ordered = sorted(best, key=lambda item: -item[0])
        indices = np.array([index for _, index in ordered], dtype=int)
        distances = np.array([-negative for negative, _ in ordered])
        cost = SearchCost(
            node_accesses=node_accesses,
            io_accesses=io_accesses,
            cached_accesses=cached_accesses,
            distance_evaluations=distance_evaluations,
            candidates_pruned=candidates_pruned,
        )
        add_event(
            "index_knn",
            node_accesses=node_accesses,
            io_accesses=io_accesses,
            cached_accesses=cached_accesses,
            refined=distance_evaluations,
            pruned=candidates_pruned,
        )
        return KnnResult(indices=indices, distances=distances, cost=cost)

    def range_query(
        self,
        query: DisjunctiveQuery,
        radius: float,
        node_cache: Optional[Set[int]] = None,
    ) -> KnnResult:
        """All points with aggregate distance at most ``radius``.

        Depth-first traversal pruning any subtree whose aggregate lower
        bound already exceeds ``radius``; results are sorted by distance.
        Cost accounting matches :meth:`knn`.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        if query.dimension != self.vectors.shape[1]:
            raise ValueError(
                f"query dimension {query.dimension} != index dimension "
                f"{self.vectors.shape[1]}"
            )
        prepared = self._prepare_bounds(query)
        plan = self._progressive_plan(query)
        hits: List[Tuple[float, int]] = []
        node_accesses = 0
        io_accesses = 0
        cached_accesses = 0
        distance_evaluations = 0
        candidates_pruned = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if plan is not None:
                per_point = plan.box_lower_bounds(node.low, node.high)
            else:
                per_point = self._box_lower_bounds(prepared, node.low, node.high)
            bound = float(query.lower_bound_from_center_distance(per_point)[0])
            if bound > radius:
                continue
            fault_point(_SITE_TREE_NODE, key=str(node.node_id))
            node_accesses += 1
            if node_cache is not None and node.node_id in node_cache:
                cached_accesses += 1
            else:
                io_accesses += 1
                if node_cache is not None:
                    node_cache.add(node.node_id)
            if node.is_leaf:
                candidates = node.indices[self._alive[node.indices]]
                if candidates.shape[0] == 0:
                    continue
                if plan is not None and candidates.shape[0] >= 8:
                    # A candidate whose prefix lower bound already
                    # exceeds the radius cannot be a hit (its distance
                    # is at least the bound); filter it before paying
                    # the exact evaluation.
                    cut = prune_threshold(radius)
                    leaf_bounds = query.combine_per_cluster(
                        plan.prefix_distances(
                            self.vectors[candidates], 0, plan.schedule[0]
                        )
                    )
                    keep = leaf_bounds <= cut
                    candidates_pruned += int(
                        candidates.shape[0] - np.count_nonzero(keep)
                    )
                    candidates = candidates[keep]
                    if candidates.shape[0] == 0:
                        continue
                distances = query.distances(self.vectors[candidates])
                distance_evaluations += candidates.shape[0]
                for distance, index in zip(distances, candidates):
                    if distance <= radius:
                        hits.append((float(distance), int(index)))
            else:
                stack.append(node.left)
                stack.append(node.right)
        hits.sort()
        cost = SearchCost(
            node_accesses=node_accesses,
            io_accesses=io_accesses,
            cached_accesses=cached_accesses,
            distance_evaluations=distance_evaluations,
            candidates_pruned=candidates_pruned,
        )
        return KnnResult(
            indices=np.array([index for _, index in hits], dtype=int),
            distances=np.array([distance for distance, _ in hits]),
            cost=cost,
        )

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of live (inserted and not deleted) vectors."""
        return int(self._alive.sum())

    def insert(self, vector: np.ndarray) -> int:
        """Insert a vector; returns its database index.

        Descends to the leaf whose bounding rectangle needs the least
        enlargement (R-tree style), growing rectangles on the way down;
        an over-full leaf is rebuilt into a subtree by the same
        median-split rule used at construction time.
        """
        vector = np.asarray(vector, dtype=float).ravel()
        if vector.shape[0] != self.vectors.shape[1]:
            raise ValueError(
                f"vector has dimension {vector.shape[0]}, index has "
                f"{self.vectors.shape[1]}"
            )
        if not np.all(np.isfinite(vector)):
            raise ValueError("indexed vectors must be finite")
        index = self.vectors.shape[0]
        self.vectors = np.vstack([self.vectors, vector[None, :]])
        self._alive = np.append(self._alive, True)
        self._insert_into(self.root, index, vector)
        return index

    def _enlargement(self, node: TreeNode, vector: np.ndarray) -> float:
        """Sum of per-axis rectangle growth needed to admit ``vector``."""
        below = np.maximum(node.low - vector, 0.0)
        above = np.maximum(vector - node.high, 0.0)
        return float(below.sum() + above.sum())

    def _insert_into(self, node: TreeNode, index: int, vector: np.ndarray) -> None:
        node.low = np.minimum(node.low, vector)
        node.high = np.maximum(node.high, vector)
        if node.is_leaf:
            node.indices = np.append(node.indices, index)
            spreads = node.high - node.low
            if node.indices.shape[0] > self.leaf_capacity and spreads.max() > 0.0:
                rebuilt = self._build(node.indices)
                node.indices = rebuilt.indices
                node.left = rebuilt.left
                node.right = rebuilt.right
                self.n_nodes = next(self._id_counter)
            return
        left_growth = self._enlargement(node.left, vector)
        right_growth = self._enlargement(node.right, vector)
        if left_growth < right_growth or (
            left_growth == right_growth
            and node.left.is_leaf
            and node.right.is_leaf
            and node.left.indices.shape[0] <= node.right.indices.shape[0]
        ):
            self._insert_into(node.left, index, vector)
        else:
            self._insert_into(node.right, index, vector)

    def delete(self, index: int) -> bool:
        """Logically delete a vector; returns whether it was live.

        Deleted entries are skipped by all searches; bounding rectangles
        are left as (valid) supersets.  Rebuild the tree to reclaim
        space after heavy churn.
        """
        if not 0 <= index < self._alive.shape[0]:
            raise IndexError(f"index {index} out of range")
        was_alive = bool(self._alive[index])
        self._alive[index] = False
        return was_alive
