"""Session-level multipoint search with node caching (paper Figure 7).

Figure 7 compares the per-iteration execution cost of three query
evaluation strategies:

* **multipoint approach** [7] (what Qcluster uses): evaluate the
  aggregate distance once per iteration, caching index nodes across the
  feedback iterations of one query session so revisited regions cost no
  further I/O;
* **centroid-based approach** (MARS / FALCON style): issue one fresh
  k-NN per representative (or per query re-weighting) every iteration,
  with no cross-iteration reuse.

:class:`MultipointSearcher` owns the per-session node cache;
:class:`CentroidSearcher` models the baseline by clearing state every
iteration and paying one scan per representative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

import numpy as np

from ..core.distance import DisjunctiveQuery
from ..core.kernels import ensure_compiled
from ..core.progressive import exact_top_k
from .hybridtree import HybridTree
from .linear import KnnResult, SearchCost

__all__ = ["MultipointSearcher", "CentroidSearcher", "SessionCostLog"]


@dataclass
class SessionCostLog:
    """Accumulated per-iteration costs of one feedback session."""

    per_iteration: List[SearchCost] = field(default_factory=list)

    @property
    def io_accesses(self) -> List[int]:
        """Uncached node reads per iteration — the Figure 7 series."""
        return [cost.io_accesses for cost in self.per_iteration]

    @property
    def total_io(self) -> int:
        return sum(self.io_accesses)


class MultipointSearcher:
    """Qcluster's search strategy: one aggregate k-NN, cached nodes.

    Args:
        tree: the index to search.

    The cache persists for the lifetime of the searcher, i.e. one query
    session; :meth:`reset` starts a new session.
    """

    def __init__(self, tree: HybridTree) -> None:
        self.tree = tree
        self._cache: Set[int] = set()
        self.log = SessionCostLog()

    def reset(self) -> None:
        """Start a new query session (cold cache, fresh log)."""
        self._cache = set()
        self.log = SessionCostLog()

    @property
    def cache_size(self) -> int:
        """Number of index nodes currently resident."""
        return len(self._cache)

    def search(self, query: DisjunctiveQuery, k: int) -> KnnResult:
        """k-NN for this iteration, reusing nodes cached by earlier ones."""
        result = self.tree.knn(query, k, node_cache=self._cache)
        self.log.per_iteration.append(result.cost)
        return result


class CentroidSearcher:
    """Baseline strategy: one *fresh* k-NN per representative, no cache.

    Models how a centroid-based system (MARS-style) evaluates a refined
    query: each of the ``g`` representatives triggers its own index
    search and the per-representative results are merged by aggregate
    distance.  Costs are summed over representatives.
    """

    def __init__(self, tree: HybridTree) -> None:
        self.tree = tree
        self.log = SessionCostLog()

    def reset(self) -> None:
        """Start a new query session (fresh log)."""
        self.log = SessionCostLog()

    def search(self, query: DisjunctiveQuery, k: int) -> KnnResult:
        """Per-representative k-NNs merged into one ranking."""
        # Compile the aggregate query up front: the per-representative
        # sub-searches and the final merge ranking below then share one
        # kernel set instead of rebuilding evaluators mid-search.
        ensure_compiled(query)
        candidate_indices: Set[int] = set()
        node_accesses = 0
        io_accesses = 0
        distance_evaluations = 0
        for point in query.points:
            single = DisjunctiveQuery([point])
            result = self.tree.knn(single, k, node_cache=None)
            candidate_indices.update(int(i) for i in result.indices)
            node_accesses += result.cost.node_accesses
            io_accesses += result.cost.io_accesses
            distance_evaluations += result.cost.distance_evaluations
        candidates = np.fromiter(candidate_indices, dtype=int)
        distances = query.distances(self.tree.vectors[candidates])
        # O(N + k log k) selection instead of a full O(N log N) sort;
        # tie-breaking on the database id keeps the merge deterministic
        # regardless of set-iteration order.
        order = exact_top_k(distances, min(k, candidates.shape[0]), tie_break=candidates)
        cost = SearchCost(
            node_accesses=node_accesses,
            io_accesses=io_accesses,
            cached_accesses=0,
            distance_evaluations=distance_evaluations + candidates.shape[0],
        )
        self.log.per_iteration.append(cost)
        return KnnResult(
            indices=candidates[order], distances=distances[order], cost=cost
        )
