"""Figure 5 / Example 3: the disjunctive query on uniform synthetic data."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.distance import DisjunctiveQuery, QueryPoint
from ..datasets.uniform import ball_membership, uniform_cube
from .reporting import ResultTable

__all__ = ["Fig05Result", "run", "build_query", "CENTERS"]

CENTERS = ((-1.0, -1.0, -1.0), (1.0, 1.0, 1.0))


def build_query() -> DisjunctiveQuery:
    """The Example 3 multipoint query (identity S, m_i = 1)."""
    return DisjunctiveQuery(
        [
            QueryPoint(center=np.asarray(center), inverse=np.eye(3), weight=1.0)
            for center in CENTERS
        ]
    )


@dataclass(frozen=True)
class Fig05Result:
    """Counts characterizing the retrieved set's two-ball shape."""

    n_in_balls: int
    n_retrieved: int
    near_first: int
    near_second: int
    in_gap: int
    overlap: int

    @property
    def agreement(self) -> float:
        """Fraction of the ground-truth two-ball set recovered."""
        return self.overlap / self.n_in_balls if self.n_in_balls else 0.0

    def as_table(self) -> ResultTable:
        table = ResultTable(
            "Figure 5: disjunctive query, uniform points in [-2,2]^3",
            ["quantity", "value"],
        )
        table.add_row("points within 1.0 of either center (ground truth)", self.n_in_balls)
        table.add_row("retrieved (same count, by aggregate distance)", self.n_retrieved)
        table.add_row("retrieved near (-1,-1,-1)", self.near_first)
        table.add_row("retrieved near (+1,+1,+1)", self.near_second)
        table.add_row("retrieved in the gap (within 0.5 of origin)", self.in_gap)
        table.add_row("overlap with ground truth", f"{self.overlap} ({self.agreement:.1%})")
        table.notes.append(
            "paper quotes 820 retrieved; two radius-1 balls are ~13.1% of the "
            "cube (~1309 of 10,000) — see EXPERIMENTS.md note 1"
        )
        return table


def run(n_points: int = 10_000, seed: int = 42) -> Fig05Result:
    """Execute the Example 3 retrieval and summarize its shape."""
    rng = np.random.default_rng(seed)
    points = uniform_cube(n_points, rng=rng)
    query = build_query()
    distances = query.distances(points)
    truth = ball_membership(points, CENTERS, radius=1.0)
    n_in_balls = int(truth.sum())
    retrieved = np.argsort(distances)[:n_in_balls]
    mask = np.zeros(n_points, dtype=bool)
    mask[retrieved] = True
    return Fig05Result(
        n_in_balls=n_in_balls,
        n_retrieved=int(retrieved.shape[0]),
        near_first=int(ball_membership(points[retrieved], [CENTERS[0]], 1.1).sum()),
        near_second=int(ball_membership(points[retrieved], [CENTERS[1]], 1.1).sum()),
        in_gap=int(ball_membership(points[retrieved], [(0.0, 0.0, 0.0)], 0.5).sum()),
        overlap=int((mask & truth).sum()),
    )
