"""Figures 14-17: classification error vs inter-cluster distance.

Synthetic protocol (paper Section 5): three Gaussian clusters in R^16
with inter-cluster distance 0.5-2.5, spherical and elliptical shapes,
PCA-reduced to 12/9/6/3 dims, Bayesian-classifier error rates under the
inverse and diagonal schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.classifier import BayesianClassifier
from ..core.cluster import Cluster
from ..core.covariance import get_scheme
from ..core.pca import PCA
from ..core.quality import labelled_classification_error
from ..datasets.gaussian import elliptical_clusters, spherical_clusters
from .reporting import ResultTable

__all__ = ["SEPARATIONS", "DIMENSIONS", "ClassificationSweep", "error_rate", "sweep"]

SEPARATIONS = (0.5, 1.0, 1.5, 2.0, 2.5)
DIMENSIONS = (12, 9, 6, 3)
RAW_DIM = 16
N_PER_CLUSTER = 60

_FIGURES = {
    ("spherical", "inverse"): "Figure 14",
    ("elliptical", "inverse"): "Figure 15",
    ("spherical", "diagonal"): "Figure 16",
    ("elliptical", "diagonal"): "Figure 17",
}


def error_rate(
    shape: str,
    scheme_name: str,
    separation: float,
    k: int,
    seed: int,
) -> float:
    """One trial: train clusters, classify held-out points in PC space."""
    rng = np.random.default_rng(seed)
    generator = spherical_clusters if shape == "spherical" else elliptical_clusters
    train = generator(3, RAW_DIM, separation, N_PER_CLUSTER, rng)
    test = generator(3, RAW_DIM, separation, N_PER_CLUSTER, rng)
    if shape == "elliptical":
        # Same clustering problem for train and test: reuse the train map.
        test_points = (test.points @ np.linalg.inv(test.transform).T) @ train.transform.T
    else:
        test_points = test.points
    pca = PCA(n_components=k).fit(train.points)
    clusters = [
        Cluster(pca.transform(train.points)[train.labels == label])
        for label in range(3)
    ]
    classifier = BayesianClassifier(scheme=get_scheme(scheme_name))
    return labelled_classification_error(
        pca.transform(test_points), test.labels, clusters, [0, 1, 2], classifier
    )


@dataclass(frozen=True)
class ClassificationSweep:
    """Error matrix over separations x retained dimensions."""

    shape: str
    scheme_name: str
    errors: Dict[float, Dict[int, float]]

    def as_table(self) -> ResultTable:
        figure = _FIGURES[(self.shape, self.scheme_name)]
        table = ResultTable(
            f"{figure}: classification error, {self.shape} data, "
            f"{self.scheme_name} matrix",
            ["inter-cluster distance", *(f"dim {k}" for k in DIMENSIONS)],
        )
        for separation in sorted(self.errors):
            table.add_row(
                separation,
                *(f"{self.errors[separation][k]:.3f}" for k in DIMENSIONS),
            )
        return table


def sweep(
    shape: str,
    scheme_name: str,
    separations: Sequence[float] = SEPARATIONS,
    dimensions: Sequence[int] = DIMENSIONS,
    n_trials: int = 3,
) -> ClassificationSweep:
    """Mean error over trials for every (separation, dimension) pair."""
    if shape not in ("spherical", "elliptical"):
        raise ValueError(f"shape must be 'spherical' or 'elliptical', got {shape!r}")
    errors: Dict[float, Dict[int, float]] = {}
    for separation in separations:
        errors[separation] = {}
        for k in dimensions:
            trials: List[float] = [
                error_rate(shape, scheme_name, separation, k, seed)
                for seed in range(n_trials)
            ]
            errors[separation][k] = float(np.mean(trials))
    return ClassificationSweep(shape=shape, scheme_name=scheme_name, errors=errors)
