"""Figure 7: execution cost of the three query-evaluation strategies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.config import QclusterConfig
from ..core.qcluster import QclusterEngine
from ..index import CentroidSearcher, HybridTree, LinearScan, MultipointSearcher
from ..retrieval import FeatureDatabase, SimulatedUser
from .reporting import ResultTable

__all__ = ["Fig07Result", "session_queries", "run"]


def session_queries(
    database: FeatureDatabase,
    query_index: int = 0,
    k: int = 100,
    n_iterations: int = 5,
) -> List:
    """The per-iteration refined queries of one real feedback session."""
    engine = QclusterEngine(QclusterConfig())
    user = SimulatedUser(database, database.category_of(query_index))
    queries = [engine.start(database.vectors[query_index])]
    for _ in range(n_iterations):
        distances = queries[-1].distances(database.vectors)
        top = np.argsort(distances)[:k]
        judgment = user.judge(top)
        if judgment.count == 0:
            break
        queries.append(
            engine.feedback(database.vectors[judgment.relevant_indices], judgment.scores)
        )
    return queries


@dataclass(frozen=True)
class Fig07Result:
    """Per-iteration I/O of the three strategies."""

    multipoint_io: List[int]
    centroid_io: List[int]
    scan_pages: int

    @property
    def multipoint_total(self) -> int:
        return sum(self.multipoint_io)

    @property
    def centroid_total(self) -> int:
        return sum(self.centroid_io)

    def as_table(self) -> ResultTable:
        table = ResultTable(
            "Figure 7: I/O node accesses per iteration",
            ["iteration", "multipoint (cached)", "centroid-based", "full scan pages"],
        )
        for iteration, (m, c) in enumerate(zip(self.multipoint_io, self.centroid_io)):
            table.add_row(iteration, m, c, self.scan_pages)
        table.notes.append(
            f"session totals: multipoint {self.multipoint_total}, "
            f"centroid {self.centroid_total}"
        )
        return table


def run(
    database: FeatureDatabase,
    query_index: int = 0,
    k: int = 100,
    n_iterations: int = 5,
    node_size_bytes: int = 4096,
) -> Fig07Result:
    """Replay one session's queries through both searchers."""
    queries = session_queries(database, query_index, k, n_iterations)
    tree = HybridTree(database.vectors, node_size_bytes=node_size_bytes)
    multipoint = MultipointSearcher(tree)
    centroid = CentroidSearcher(tree)
    for query in queries:
        multipoint.search(query, k)
        centroid.search(query, k)
    return Fig07Result(
        multipoint_io=multipoint.log.io_accesses,
        centroid_io=centroid.log.io_accesses,
        scan_pages=LinearScan(database.vectors, node_size_bytes).n_pages,
    )
