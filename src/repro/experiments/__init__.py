"""Experiment library: regenerate every table and figure of the paper.

Each module owns one experiment; the pytest benchmarks in
``benchmarks/`` and the CLI's ``figure`` subcommand are thin wrappers
around these functions, so a downstream user can rerun any figure
programmatically:

    from repro.experiments import ProtocolData, quality
    data = ProtocolData.build()
    result = quality.comparison(data, "color")
    for table in result.as_tables():
        table.print()
"""

from . import ann, classification, fig05, fig06, fig07, quality, t2_accuracy
from .protocol import ProtocolConfig, ProtocolData
from .reporting import ResultTable

__all__ = [
    "ann",
    "classification",
    "fig05",
    "fig06",
    "fig07",
    "quality",
    "t2_accuracy",
    "ProtocolConfig",
    "ProtocolData",
    "ResultTable",
]
