"""The paper's evaluation protocol, as a reusable configuration.

Section 5 fixes: a 30,000-image collection in ~300 categories of ~100
images, 100 random initial queries, five feedback iterations beyond the
initial query, k = 100, color-moment and co-occurrence-texture features,
the hybrid tree with 4 KB nodes.  :class:`ProtocolConfig` captures those
knobs (at a laptop-friendly default scale) and builds the shared
fixtures every experiment needs: the collection, the two feature
databases and the paired query sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..datasets import generate_collection
from ..datasets.synthetic_images import SyntheticCollection
from ..features import color_pipeline, texture_pipeline
from ..retrieval import FeatureDatabase

__all__ = ["ProtocolConfig", "ProtocolData"]


@dataclass(frozen=True)
class ProtocolConfig:
    """Scale and protocol knobs shared by the quality experiments.

    Defaults run the whole experiment suite in minutes; the paper-scale
    values are in the comments.
    """

    n_categories: int = 20            # paper: ~300
    images_per_category: int = 100    # paper: ~100
    image_size: int = 20
    complex_fraction: float = 0.4
    n_queries: int = 30               # paper: 100
    k: int = 100                      # paper: 100
    n_iterations: int = 5             # paper: 5
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.n_categories < 1 or self.images_per_category < 1:
            raise ValueError("collection dimensions must be positive")
        if self.n_queries < 1 or self.k < 1 or self.n_iterations < 0:
            raise ValueError("protocol parameters out of range")


@dataclass
class ProtocolData:
    """Materialized protocol fixtures (build once, reuse across figures)."""

    config: ProtocolConfig
    collection: SyntheticCollection
    color_database: FeatureDatabase
    texture_database: FeatureDatabase
    query_indices: np.ndarray = field(repr=False)

    @classmethod
    def build(cls, config: Optional[ProtocolConfig] = None) -> "ProtocolData":
        """Generate the collection, extract both feature sets, draw queries."""
        config = config if config is not None else ProtocolConfig()
        collection = generate_collection(
            n_categories=config.n_categories,
            images_per_category=config.images_per_category,
            image_size=config.image_size,
            complex_fraction=config.complex_fraction,
            seed=config.seed,
        )
        color_features = color_pipeline().fit(collection.images)
        texture_features = texture_pipeline().fit(collection.images)
        color_database = FeatureDatabase(color_features, collection.labels)
        texture_database = FeatureDatabase(texture_features, collection.labels)
        rng = np.random.default_rng(config.seed)
        query_indices = rng.choice(
            color_database.size, size=min(config.n_queries, color_database.size),
            replace=False,
        )
        return cls(
            config=config,
            collection=collection,
            color_database=color_database,
            texture_database=texture_database,
            query_indices=query_indices,
        )

    def database_for(self, feature: str) -> FeatureDatabase:
        """Select a feature database by name (``"color"`` / ``"texture"``)."""
        if feature == "color":
            return self.color_database
        if feature == "texture":
            return self.texture_database
        raise ValueError(f"unknown feature {feature!r}; expected 'color' or 'texture'")
