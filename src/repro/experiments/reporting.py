"""Result tables: text rendering and CSV export.

Every experiment returns a :class:`ResultTable`; the CLI prints it and
(optionally) writes a CSV so the series can be plotted elsewhere —
there is no plotting dependency in this package.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Sequence, Union

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A titled table of experiment output.

    Attributes:
        title: the figure/table this regenerates.
        headers: column names.
        rows: cell values; rendered with ``str``.
        notes: free-form lines printed below the table.
    """

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (cells in header order)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Aligned plain-text rendering."""
        string_rows = [[str(cell) for cell in row] for row in self.rows]
        headers = [str(header) for header in self.headers]
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in string_rows))
            if string_rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        lines = [f"=== {self.title} ===", header_line, "-" * len(header_line)]
        for row in string_rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        lines.extend(self.notes)
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (with a leading blank line)."""
        print("\n" + self.render())

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write headers + rows as CSV (notes go into a trailing comment)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            for row in self.rows:
                writer.writerow([str(cell) for cell in row])
        if self.notes:
            with path.open("a") as handle:
                for note in self.notes:
                    handle.write(f"# {note}\n")
