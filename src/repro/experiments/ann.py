"""Recall-versus-speedup sweep for the ANN tier — the empirical contract.

The spill tree's defeatist search trades exactness for cost, and the
trade is only defensible if it is *measured*: this module owns the
workload that measures it.  A clustered Gaussian collection is queried
through the full Qcluster feedback protocol (``scheme="inverse"``, the
covariance regime the serving stack defaults to for pruning), so the
swept queries are the real production shape — adaptive multi-cluster
disjunctive queries with Mahalanobis-stretched contours, not synthetic
single points.  Every configuration in the sweep is scored on

* **recall@k** against the exact compiled shard scan (mean and worst
  query), the quantity the committed contract floors;
* **speedup** over that same exact scan (wall-clock, best-of-repeats);
* **candidate fraction** — the share of the database the reached
  leaves actually scored, the scale-free cost proxy CI can gate when
  timings cannot be trusted across runners.

``benchmarks/test_ann_recall.py`` runs :func:`run_sweep` at full scale
and writes ``BENCH_ann.json``; ``compare_bench.py --suite ann`` runs
the CI-scale config against the committed floors in
``benchmarks/baselines/ann.json``; ``python -m repro.cli bench`` is the
interactive front-end.  One sweep, three consumers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import QclusterConfig
from ..core.distance import DisjunctiveQuery
from ..index.spill import SpillTree, SpillTreeConfig
from ..parallel import scan_shard_topk
from ..retrieval import FeatureDatabase, QclusterMethod, SimulatedUser

__all__ = ["AnnSweepConfig", "run_sweep", "DEFAULT_RULE", "DEFAULT_SPILL"]

#: The operating point the service ships with (``SpillTreeConfig()``)
#: and the committed baseline floors: every sweep must include it.
DEFAULT_RULE = "kd"
DEFAULT_SPILL = 0.3


@dataclass(frozen=True)
class AnnSweepConfig:
    """Workload and sweep knobs.

    The default is the full-scale contract workload (40k rows in 40
    categories, 16-d features, 6 query seeds x 3 feedback rounds);
    :meth:`small` is the CI/smoke scale, shrunk but with leaf capacity
    and ``max_leaves`` re-tuned so the descent still prunes — a tree
    whose leaves swallow the collection would measure nothing.
    """

    n_categories: int = 40
    points_per_category: int = 1000
    dimensions: int = 16
    n_query_seeds: int = 6
    n_rounds: int = 3
    k: int = 20
    seed: int = 7
    scheme: str = "inverse"
    spills: Tuple[float, ...] = (0.0, 0.15, DEFAULT_SPILL)
    rules: Tuple[str, ...] = (DEFAULT_RULE, "rp")
    max_leaves: int = 12
    leaf_capacity: Optional[int] = None  # heuristic: 1024 at 16 dims
    repeats: int = 3

    @classmethod
    def small(cls) -> "AnnSweepConfig":
        """CI scale: ~2.4k rows, small leaves so real splits happen."""
        return cls(
            n_categories=12,
            points_per_category=200,
            n_query_seeds=4,
            leaf_capacity=128,
            max_leaves=8,
            repeats=2,
        )

    @property
    def n(self) -> int:
        return self.n_categories * self.points_per_category

    def tree_config(self, rule: str, spill: float) -> SpillTreeConfig:
        return SpillTreeConfig(
            rule=rule,
            spill=spill,
            leaf_capacity=self.leaf_capacity,
            max_leaves=self.max_leaves,
            seed=0,
        )


def build_database(config: AnnSweepConfig) -> FeatureDatabase:
    """Clustered Gaussian categories, deterministic for ``config.seed``."""
    rng = np.random.default_rng(config.seed)
    centers = 2.0 * rng.standard_normal((config.n_categories, config.dimensions))
    vectors = np.concatenate(
        [
            center
            + 1.5 * rng.standard_normal((config.points_per_category, config.dimensions))
            for center in centers
        ]
    )
    labels = np.repeat(np.arange(config.n_categories), config.points_per_category)
    return FeatureDatabase(vectors, labels)


def harvest_queries(
    database: FeatureDatabase, config: AnnSweepConfig
) -> List[DisjunctiveQuery]:
    """The production query mix: replayed Qcluster feedback sessions.

    Each seed row starts a session; the simulated user judges the exact
    top-k page and the method refits its adaptive clusters, so rounds
    beyond the first contribute genuine multi-cluster disjunctive
    queries under the configured covariance scheme.
    """
    rng = np.random.default_rng(config.seed + 2)
    queries: List[DisjunctiveQuery] = []
    for query_id in rng.integers(0, database.size, size=config.n_query_seeds):
        method = QclusterMethod(QclusterConfig(scheme=config.scheme))
        user = SimulatedUser(database, database.category_of(int(query_id)))
        query = method.start(database.vectors[int(query_id)])
        for _ in range(config.n_rounds):
            queries.append(query)
            ranked = scan_shard_topk(query, database.vectors, 0, config.k)[0]
            judgment = user.judge(ranked)
            if judgment.count == 0:
                break
            query = method.feedback(
                database.vectors[judgment.relevant_indices], judgment.scores
            )
    return queries


def _best_of(callable_, repeats: int) -> float:
    """Minimum wall time of ``callable_`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def run_sweep(config: Optional[AnnSweepConfig] = None) -> Dict:
    """Sweep ``rules x spills``; returns the full result payload.

    The payload's ``configs`` list holds one entry per swept
    configuration — recall (mean / worst query), speedup over the
    exact compiled scan, candidate fraction, node accesses and the
    tree's own build-time ``calibrated_recall`` — and ``default``
    names the entry matching the shipped operating point.
    """
    config = config if config is not None else AnnSweepConfig()
    database = build_database(config)
    vectors = database.vectors
    queries = harvest_queries(database, config)
    k = config.k

    truth = [scan_shard_topk(query, vectors, 0, k)[0] for query in queries]

    def exact_run():
        for query in queries:
            scan_shard_topk(query, vectors, 0, k)

    exact_run()  # warm-up: kernel compile + scan plans
    exact_seconds = _best_of(exact_run, config.repeats)

    entries = []
    default_name = None
    for rule in config.rules:
        for spill in config.spills:
            tree = SpillTree(vectors, config.tree_config(rule, spill))
            # Scored once up front: these results feed the recall and
            # cost metrics *and* warm the kernels before timing.
            results = [tree.defeatist_search(query, k) for query in queries]

            def ann_run(tree=tree):
                for query in queries:
                    tree.defeatist_search(query, k)

            ann_seconds = _best_of(ann_run, config.repeats)
            recalls = [
                len(set(map(int, result.indices)) & set(map(int, true_ids))) / k
                for result, true_ids in zip(results, truth)
            ]
            name = f"{rule}:spill={spill:g}"
            if rule == DEFAULT_RULE and spill == DEFAULT_SPILL:
                default_name = name
            entries.append(
                {
                    "name": name,
                    "rule": rule,
                    "spill": spill,
                    "max_leaves": config.max_leaves,
                    "leaf_capacity": tree.leaf_capacity,
                    "n_leaves": tree.stats()["n_leaves"],
                    "recall_mean": float(np.mean(recalls)),
                    "recall_min": float(min(recalls)),
                    "candidate_fraction": float(
                        np.mean([r.n_candidates for r in results]) / config.n
                    ),
                    "node_accesses_per_query": float(
                        np.mean([r.cost.node_accesses for r in results])
                    ),
                    "calibrated_recall": tree.calibrated_recall,
                    "ann_seconds": ann_seconds,
                    "speedup": exact_seconds / ann_seconds,
                }
            )

    return {
        "n": config.n,
        "p": config.dimensions,
        "k": k,
        "scheme": config.scheme,
        "n_queries": len(queries),
        "repeats": config.repeats,
        "exact_seconds": exact_seconds,
        "default": default_name,
        "configs": entries,
    }


def small_sweep() -> Dict:
    """The CI-scale sweep (used by ``compare_bench.py --suite ann``)."""
    return run_sweep(AnnSweepConfig.small())


def sweep_config(small: bool = False, **overrides) -> AnnSweepConfig:
    """Convenience for the CLI: base scale plus keyword overrides."""
    base = AnnSweepConfig.small() if small else AnnSweepConfig()
    return replace(base, **overrides) if overrides else base
