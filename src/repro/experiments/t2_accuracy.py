"""Tables 2-3 and Figures 18-19: accuracy of the T^2 merge decision.

100 pairs of size-30 clusters in R^16, PCA-reduced to 12/9/6/3 dims;
the F-scaled two-sample statistic is compared against the quantile-F
critical value (Tables 2-3) and against random Equation-20 draws in a
Q-Q construction (Figures 18-19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..core.covariance import get_scheme
from ..core.pca import PCA
from ..datasets.gaussian import cluster_pair
from ..stats.fdist import f_upper_quantile, random_f
from ..stats.hotelling import hotelling_t2
from .reporting import ResultTable

__all__ = [
    "DIMENSIONS",
    "f_scaled_t2",
    "T2Table",
    "run_table",
    "QQData",
    "qq_data",
]

DIMENSIONS = (12, 9, 6, 3)
RAW_DIM = 16
PAIR_SIZE = 30
ALPHA = 0.05
SEPARATION = 2.0


def f_scaled_t2(points_a: np.ndarray, points_b: np.ndarray, scheme_name: str) -> float:
    """The F-scaled two-sample statistic the tables report.

    ``T^2 (n - p - 1) / ((n - 2) p)`` follows F(p, n - p - 1) under H0,
    directly comparable to the quantile-F column.
    """
    n_a, p = points_a.shape
    n_b = points_b.shape[0]
    pooled = (
        (points_a - points_a.mean(0)).T @ (points_a - points_a.mean(0))
        + (points_b - points_b.mean(0)).T @ (points_b - points_b.mean(0))
    ) / (n_a + n_b - 2.0)
    inverse = get_scheme(scheme_name, regularization=1e-10).invert(pooled).inverse
    t2 = hotelling_t2(points_a.mean(0), points_b.mean(0), inverse, float(n_a), float(n_b))
    n = n_a + n_b
    return t2 * (n - p - 1.0) / ((n - 2.0) * p)


@dataclass(frozen=True)
class T2Table:
    """One of Tables 2/3: per-dimension statistics and error ratios."""

    same_mean: bool
    scheme_name: str
    #: dim -> (variation ratio, mean statistic, quantile-F, error ratio)
    per_dim: Dict[int, Tuple[float, float, float, float]]

    def as_table(self) -> ResultTable:
        which = "2" if self.same_mean else "3"
        kind = "SAME" if self.same_mean else "DIFFERENT"
        table = ResultTable(
            f"Table {which}: T^2 with {self.scheme_name} matrix, "
            f"pairs with {kind} means",
            ["dim", "variation ratio", "avg T^2 (F-scaled)", "quantile-F", "error-ratio (%)"],
        )
        for dim in DIMENSIONS:
            variation, mean_stat, quantile, errors = self.per_dim[dim]
            table.add_row(
                dim,
                f"{variation:.3f}",
                f"{mean_stat:.2f}",
                f"{quantile:.2f}",
                f"{100 * errors:.0f}",
            )
        return table


def run_table(
    same_mean: bool,
    scheme_name: str,
    n_pairs: int = 100,
    seed: int = None,
) -> T2Table:
    """Generate pairs, compute statistics, count decision errors."""
    if seed is None:
        seed = 42 if same_mean else 43
    rng = np.random.default_rng(seed)
    statistics: Dict[int, list] = {k: [] for k in DIMENSIONS}
    variation: Dict[int, list] = {k: [] for k in DIMENSIONS}
    for _ in range(n_pairs):
        points_a, points_b = cluster_pair(
            same_mean=same_mean,
            size=PAIR_SIZE,
            dim=RAW_DIM,
            separation=SEPARATION,
            rng=rng,
        )
        pca = PCA().fit(np.vstack([points_a, points_b]))
        cumulative = np.cumsum(pca.explained_variance_ratio_)
        for k in DIMENSIONS:
            truncated = pca.truncated(k)
            statistics[k].append(
                f_scaled_t2(
                    truncated.transform(points_a),
                    truncated.transform(points_b),
                    scheme_name,
                )
            )
            variation[k].append(float(cumulative[k - 1]))
    per_dim = {}
    for k in DIMENSIONS:
        values = np.asarray(statistics[k])
        df2 = 2 * PAIR_SIZE - k - 1
        quantile = f_upper_quantile(ALPHA, float(k), float(df2))
        if same_mean:
            errors = float(np.mean(values > quantile))  # wrongly separated
        else:
            errors = float(np.mean(values <= quantile))  # wrongly merged
        per_dim[k] = (float(np.mean(variation[k])), float(values.mean()), quantile, errors)
    return T2Table(same_mean=same_mean, scheme_name=scheme_name, per_dim=per_dim)


@dataclass(frozen=True)
class QQData:
    """Sorted statistic/critical pairs for the Figures 18-19 Q-Q plot."""

    scheme_name: str
    statistics: np.ndarray
    same_mean: np.ndarray
    criticals: np.ndarray

    def sorted_pairs(self):
        """(sorted statistics, their labels, sorted criticals)."""
        order = np.argsort(self.statistics)
        return (
            self.statistics[order],
            self.same_mean[order],
            np.sort(self.criticals),
        )

    def as_table(self) -> ResultTable:
        figure = "Figure 18" if self.scheme_name == "inverse" else "Figure 19"
        table = ResultTable(
            f"{figure}: Q-Q of F-scaled T^2 vs Equation-20 criticals "
            f"({self.scheme_name})",
            ["quantile", "T^2", "critical", "T^2/critical", "pair type at this rank"],
        )
        sorted_statistics, sorted_labels, sorted_criticals = self.sorted_pairs()
        for quantile in (0.1, 0.25, 0.5, 0.75, 0.9):
            index = int(quantile * (len(sorted_statistics) - 1))
            ratio = sorted_statistics[index] / sorted_criticals[index]
            table.add_row(
                f"{quantile:.2f}",
                f"{sorted_statistics[index]:.2f}",
                f"{sorted_criticals[index]:.2f}",
                f"{ratio:.2f}",
                "same" if sorted_labels[index] else "different",
            )
        return table


def qq_data(scheme_name: str, n_each: int = 50, k: int = 12, seed: int = 7) -> QQData:
    """Statistics for 50 same + 50 different pairs, plus random criticals."""
    rng = np.random.default_rng(seed)
    statistics = []
    labels = []
    for same_mean in (True, False):
        for _ in range(n_each):
            points_a, points_b = cluster_pair(
                same_mean=same_mean,
                size=PAIR_SIZE,
                dim=RAW_DIM,
                separation=SEPARATION,
                rng=rng,
            )
            pca = PCA(n_components=k).fit(np.vstack([points_a, points_b]))
            statistics.append(
                f_scaled_t2(pca.transform(points_a), pca.transform(points_b), scheme_name)
            )
            labels.append(same_mean)
    # Equation 20's chi-square ratio, normalized to the F scale so it is
    # comparable to the F-scaled statistic.
    df1 = k
    df2 = 2 * PAIR_SIZE - k
    criticals = np.array(
        [random_f(df1, df2, rng) * df2 / df1 for _ in range(2 * n_each)]
    )
    return QQData(
        scheme_name=scheme_name,
        statistics=np.asarray(statistics),
        same_mean=np.asarray(labels),
        criticals=criticals,
    )
