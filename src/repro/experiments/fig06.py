"""Figure 6: CPU cost of the inverse vs the diagonal covariance scheme."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.config import QclusterConfig
from ..core.qcluster import QclusterEngine
from .reporting import ResultTable

__all__ = ["Fig06Result", "one_feedback_round", "make_relevant_set", "run"]


def make_relevant_set(
    dim: int = 16,
    n_per_mode: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """A bimodal relevant set at the pre-PCA dimensionality (worst case)."""
    rng = rng if rng is not None else np.random.default_rng(7)
    return np.vstack(
        [
            rng.normal(0.0, 0.5, (n_per_mode, dim)),
            rng.normal(4.0, 0.5, (n_per_mode, dim)),
        ]
    )


def one_feedback_round(scheme: str, relevant: np.ndarray) -> None:
    """One full update: classification + merging + query construction."""
    engine = QclusterEngine(QclusterConfig(scheme=scheme))
    engine.start(relevant[0])
    engine.feedback(relevant)


@dataclass(frozen=True)
class Fig06Result:
    """Per-round CPU seconds for the two schemes."""

    diagonal_seconds: float
    inverse_seconds: float
    dim: int

    @property
    def speedup(self) -> float:
        """inverse / diagonal time ratio (> 1 means diagonal wins)."""
        return self.inverse_seconds / self.diagonal_seconds

    def as_table(self) -> ResultTable:
        table = ResultTable(
            f"Figure 6: per-feedback-round CPU time ({self.dim}-d features)",
            ["scheme", "seconds/round"],
        )
        table.add_row("diagonal", f"{self.diagonal_seconds:.5f}")
        table.add_row("inverse", f"{self.inverse_seconds:.5f}")
        table.notes.append(f"inverse/diagonal ratio: {self.speedup:.2f}x")
        return table


def run(dim: int = 16, repeats: int = 20, seed: int = 7) -> Fig06Result:
    """Paired timing of the two schemes on the same relevant set."""
    relevant = make_relevant_set(dim=dim, rng=np.random.default_rng(seed))

    def measure(scheme: str, rounds: int) -> float:
        start = time.perf_counter()
        for _ in range(rounds):
            one_feedback_round(scheme, relevant)
        return (time.perf_counter() - start) / rounds

    measure("diagonal", rounds=3)  # warm-up
    return Fig06Result(
        diagonal_seconds=measure("diagonal", repeats),
        inverse_seconds=measure("inverse", repeats),
        dim=dim,
    )


def dimension_sweep(
    dims=(8, 16, 32, 64),
    repeats: int = 8,
    seed: int = 7,
):
    """Figure 6 extended: the scheme gap vs feature dimensionality.

    The inverse scheme's O(p^3) per-cluster inversion separates from the
    diagonal scheme's O(p) as dimensionality grows; this sweep makes the
    asymptotic claim visible where the paper's single setting cannot.

    Returns:
        list of :class:`Fig06Result`, one per dimensionality.
    """
    return [run(dim=dim, repeats=repeats, seed=seed) for dim in dims]
