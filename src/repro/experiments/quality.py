"""Retrieval-quality experiments: Figures 8-13 and the headline claim.

* :func:`pr_curves` — per-iteration precision-recall curves for one
  method (Figures 8 and 9).
* :func:`comparison` — recall/precision per iteration for Qcluster, QEX
  and QPM over the same queries (Figures 10-13).
* :func:`headline` — the abstract's relative-improvement numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from ..baselines import QueryExpansion, QueryPointMovement
from ..retrieval import BatchResult, QclusterMethod, compare_methods, run_batch
from .protocol import ProtocolData
from .reporting import ResultTable

__all__ = [
    "METHODS",
    "PRCurvesResult",
    "ComparisonResult",
    "HeadlineResult",
    "pr_curves",
    "comparison",
    "headline",
]

#: The paper's three compared approaches, in its naming.
METHODS: Dict[str, Callable] = {
    "qcluster": QclusterMethod,
    "qex": QueryExpansion,
    "qpm": QueryPointMovement,
}

_CHECKPOINTS = (1, 10, 25, 50, 100)


@dataclass(frozen=True)
class PRCurvesResult:
    """Per-iteration P-R curves of one method (Figures 8/9)."""

    feature: str
    batch: BatchResult

    @property
    def mean_precision_per_iteration(self) -> List[float]:
        return [curve.average_precision for curve in self.batch.curves]

    def as_table(self) -> ResultTable:
        figure = "Figure 8 (color moments)" if self.feature == "color" else "Figure 9 (texture)"
        table = ResultTable(
            f"{figure}: P/R at result-list checkpoints per iteration",
            ["iteration", "retrieved", "precision", "recall"],
        )
        for iteration, curve in enumerate(self.batch.curves):
            for checkpoint in _CHECKPOINTS:
                index = min(checkpoint, curve.precisions.shape[0]) - 1
                table.add_row(
                    iteration,
                    checkpoint,
                    f"{curve.precisions[index]:.3f}",
                    f"{curve.recalls[index]:.3f}",
                )
        return table


def pr_curves(data: ProtocolData, feature: str) -> PRCurvesResult:
    """Run Qcluster over the protocol queries and collect P-R curves."""
    batch = run_batch(
        data.database_for(feature),
        QclusterMethod,
        data.query_indices,
        k=data.config.k,
        n_iterations=data.config.n_iterations,
    )
    return PRCurvesResult(feature=feature, batch=batch)


@dataclass(frozen=True)
class ComparisonResult:
    """Three-approach quality series (Figures 10-13)."""

    feature: str
    results: Dict[str, BatchResult]

    def series(self, metric: str) -> Dict[str, np.ndarray]:
        """``metric`` is ``mean_recall`` or ``mean_precision``."""
        return {name: getattr(batch, metric) for name, batch in self.results.items()}

    def as_tables(self) -> List[ResultTable]:
        tables = []
        figure_ids = {
            ("color", "mean_recall"): "Figure 10",
            ("texture", "mean_recall"): "Figure 11",
            ("color", "mean_precision"): "Figure 12",
            ("texture", "mean_precision"): "Figure 13",
        }
        for metric in ("mean_recall", "mean_precision"):
            label = metric.replace("mean_", "")
            figure = figure_ids[(self.feature, metric)]
            table = ResultTable(
                f"{figure}: {label} per iteration ({self.feature})",
                ["iteration", *self.results],
            )
            series = self.series(metric)
            iterations = len(next(iter(series.values())))
            for iteration in range(iterations):
                table.add_row(
                    iteration,
                    *(f"{series[name][iteration]:.3f}" for name in self.results),
                )
            tables.append(table)
        return tables


def comparison(data: ProtocolData, feature: str) -> ComparisonResult:
    """Paired three-approach comparison over the protocol queries."""
    results = compare_methods(
        data.database_for(feature),
        METHODS,
        data.query_indices,
        k=data.config.k,
        n_iterations=data.config.n_iterations,
    )
    return ComparisonResult(feature=feature, results=results)


@dataclass(frozen=True)
class HeadlineResult:
    """Relative improvements per feature/baseline/metric (the abstract)."""

    improvements: Dict  # (feature, baseline, metric) -> float

    def pooled(self, baseline: str, metric: str) -> float:
        values = [
            value
            for (feature, b, m), value in self.improvements.items()
            if b == baseline and m == metric
        ]
        return float(np.mean(values))

    def as_table(self) -> ResultTable:
        table = ResultTable(
            "Headline: Qcluster's relative improvement "
            "(paper: +22%/+20% vs QEX, +34%/+33% vs QPM)",
            ["feature", "baseline", "metric", "improvement"],
        )
        for (feature, baseline, metric), value in self.improvements.items():
            table.add_row(feature, baseline, metric, f"{value:+.1%}")
        for baseline in ("qex", "qpm"):
            for metric in ("recall", "precision"):
                table.add_row("POOLED", baseline, metric, f"{self.pooled(baseline, metric):+.1%}")
        return table


def headline(data: ProtocolData) -> HeadlineResult:
    """Compute the abstract's relative-improvement numbers on both features."""
    improvements = {}
    for feature in ("color", "texture"):
        compared = comparison(data, feature)
        for baseline in ("qex", "qpm"):
            for metric_name, metric_attr in (
                ("recall", "mean_recall"),
                ("precision", "mean_precision"),
            ):
                ours = getattr(compared.results["qcluster"], metric_attr)[1:]
                theirs = getattr(compared.results[baseline], metric_attr)[1:]
                improvements[(feature, baseline, metric_name)] = float(
                    np.mean(ours / theirs - 1.0)
                )
    return HeadlineResult(improvements=improvements)
