"""Shared pieces of the baseline implementations.

The baselines accumulate the relevant set across iterations (every
method in the paper's comparison sees the same judgments) and rank the
database with some aggregate of per-point quadratic distances.
:class:`PowerMeanQuery` generalizes the paper's Equation 4 to arbitrary
exponents so one query type serves QEX (arithmetic mean — one convex
contour) and FALCON (strongly negative exponent — fuzzy OR over all
relevant points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core import kernels as _kernels
from ..core.distance import QueryPoint, quadratic_distance_many
from ..retrieval.methods import FeedbackMethod

__all__ = ["PowerMeanQuery", "AccumulatingMethod", "diagonal_inverse_from_points"]

_DISTANCE_FLOOR = 1e-12


def diagonal_inverse_from_points(
    points: np.ndarray,
    scores: Optional[Sequence[float]] = None,
    regularization: float = 1e-6,
) -> np.ndarray:
    """MARS-style diagonal re-weighting matrix from a relevant set.

    Each dimension's weight is the reciprocal of the (score-weighted)
    variance of the relevant points along it — the classic re-weighting
    rule the paper attributes to MARS.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if scores is None:
        weights = np.ones(points.shape[0])
    else:
        weights = np.asarray(scores, dtype=float)
    total = weights.sum()
    mean = weights @ points / total
    variances = weights @ (points - mean) ** 2 / total
    variances = np.maximum(variances, regularization)
    return np.diag(1.0 / variances)


@dataclass(frozen=True)
class PowerMeanQuery:
    """Aggregate query: the ``alpha``-power mean of per-point distances.

    Implements Equation 4 for arbitrary exponent over query points with
    individual centers, inverse matrices and weights.

    Attributes:
        centers: ``(g, p)`` query-point matrix.
        inverses: per-point ``S^{-1}`` matrices (length ``g``).
        weights: per-point weights (relative importance in the mean).
        alpha: power-mean exponent; 1 = weighted average (convex,
            conjunctive contour), negative = fuzzy OR.
    """

    centers: np.ndarray
    inverses: Tuple[np.ndarray, ...]
    weights: np.ndarray
    alpha: float

    def __post_init__(self) -> None:
        centers = np.atleast_2d(np.asarray(self.centers, dtype=float))
        object.__setattr__(self, "centers", centers)
        if centers.shape[0] == 0:
            raise ValueError("a query needs at least one point")
        if len(self.inverses) != centers.shape[0]:
            raise ValueError("need one inverse matrix per query point")
        weights = np.asarray(self.weights, dtype=float)
        if weights.shape != (centers.shape[0],):
            raise ValueError("need one weight per query point")
        if np.any(weights <= 0):
            raise ValueError("weights must be strictly positive")
        object.__setattr__(self, "weights", weights)
        if self.alpha == 0.0:
            raise ValueError("alpha must be non-zero")

    @property
    def size(self) -> int:
        """Number of query points."""
        return self.centers.shape[0]

    @property
    def dimension(self) -> int:
        """Feature-space dimensionality (index interface)."""
        return self.centers.shape[1]

    @property
    def points(self) -> List[QueryPoint]:
        """The query points as :class:`QueryPoint` records (index interface)."""
        return [
            QueryPoint(center=center, inverse=inverse, weight=float(weight))
            for center, inverse, weight in zip(self.centers, self.inverses, self.weights)
        ]

    def combine_per_cluster(self, per_point: np.ndarray) -> np.ndarray:
        """Fold a ``(g, N)`` per-point matrix into the power-mean aggregate.

        The weighted power mean is monotone increasing in every
        coordinate (for any non-zero exponent), so per-point *lower
        bounds* — box bounds or progressive coordinate prefixes —
        combine into a valid aggregate lower bound.
        """
        per_point = np.atleast_2d(np.asarray(per_point, dtype=float))
        normalized = self.weights / self.weights.sum()
        if self.alpha < 0:
            per_point = np.maximum(per_point, _DISTANCE_FLOOR)
        mean_power = np.tensordot(normalized, per_point**self.alpha, axes=1)
        return mean_power ** (1.0 / self.alpha)

    def lower_bound_from_center_distance(self, center_distances) -> np.ndarray:
        """Aggregate lower bound from per-point lower bounds."""
        per_point = np.asarray(center_distances, dtype=float)[:, None]
        return self.combine_per_cluster(per_point)

    def per_point_distances(self, database: np.ndarray) -> np.ndarray:
        """``(g, N)`` per-query-point quadratic distances.

        Shares the compiled-kernel layer with the disjunctive query, so
        the baselines' rankings enjoy the same diagonal fast path and
        fused whitening matmul (and the same cross-call kernel cache)
        as Qcluster's own.
        """
        database = np.atleast_2d(np.asarray(database, dtype=float))
        if _kernels.kernels_enabled():
            return _kernels.ensure_compiled(self).per_cluster_distances(database)
        return np.stack(
            [
                quadratic_distance_many(database, center, inverse)
                for center, inverse in zip(self.centers, self.inverses)
            ]
        )

    def distances(self, database: np.ndarray) -> np.ndarray:
        """Weighted ``alpha``-power mean of per-point distances."""
        return self.combine_per_cluster(self.per_point_distances(database))


class AccumulatingMethod(FeedbackMethod):
    """Base for baselines that pool judgments across iterations.

    Subclasses implement :meth:`build_query` from the accumulated
    relevant set; the bookkeeping (deduplication, initial query) lives
    here.
    """

    def __init__(self) -> None:
        self._points: List[np.ndarray] = []
        self._scores: List[float] = []
        self._seen: set = set()
        self._initial: Optional[np.ndarray] = None

    # -- FeedbackMethod ------------------------------------------------

    def start(self, query_point: np.ndarray):
        point = np.asarray(query_point, dtype=float)
        if point.ndim != 1:
            raise ValueError(f"query point must be 1-d, got shape {point.shape}")
        self._points = []
        self._scores = []
        self._seen = set()
        self._initial = point
        return PowerMeanQuery(
            centers=point[None, :],
            inverses=(np.eye(point.shape[0]),),
            weights=np.ones(1),
            alpha=1.0,
        )

    def feedback(self, relevant_points: np.ndarray, scores=None):
        points = np.atleast_2d(np.asarray(relevant_points, dtype=float))
        if scores is None:
            scores = np.ones(points.shape[0])
        else:
            scores = np.asarray(scores, dtype=float)
            if scores.shape != (points.shape[0],):
                raise ValueError("need one score per point")
        for point, score in zip(points, scores):
            key = point.tobytes()
            if key in self._seen:
                continue
            self._seen.add(key)
            self._points.append(point)
            self._scores.append(float(score))
        if not self._points:
            return self.start(self._initial)
        return self.build_query(
            np.vstack(self._points), np.asarray(self._scores, dtype=float)
        )

    # -- subclass hook ---------------------------------------------------

    def build_query(self, points: np.ndarray, scores: np.ndarray):
        """Construct the refined query from the pooled relevant set."""
        raise NotImplementedError

    @property
    def initial_point(self) -> Optional[np.ndarray]:
        """The session's example feature vector."""
        return self._initial
