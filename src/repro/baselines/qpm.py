"""Query-point movement baseline (MARS [15] / Rocchio [14]).

QPM represents the refined query as a **single point**:

* the point moves toward the relevant examples via Rocchio's formula
  ``q' = a q + b x̄_relevant`` (good matches only — the evaluation
  protocol produces no explicit negative judgments), and
* each dimension is re-weighted inversely to the variance of the
  relevant points along it (the MARS re-weighting rule), producing an
  axis-aligned ellipsoidal contour.

This is Figure 1(a): one contour, one point — the approach Qcluster
beats by ~34 % recall / ~33 % precision on complex queries because a
single convex contour cannot cover disjoint clusters.
"""

from __future__ import annotations

import numpy as np

from ..stats.descriptive import weighted_mean
from .base import AccumulatingMethod, PowerMeanQuery, diagonal_inverse_from_points

__all__ = ["QueryPointMovement"]


class QueryPointMovement(AccumulatingMethod):
    """Rocchio movement + MARS diagonal re-weighting.

    Args:
        query_weight: Rocchio's ``a`` — how much the original example
            keeps pulling the query point.
        relevant_weight: Rocchio's ``b`` — the pull of the relevant mean.
        regularization: variance floor for the re-weighting.
    """

    name = "qpm"

    def __init__(
        self,
        query_weight: float = 0.3,
        relevant_weight: float = 0.7,
        regularization: float = 1e-6,
    ) -> None:
        super().__init__()
        if query_weight < 0 or relevant_weight <= 0:
            raise ValueError("Rocchio weights must be non-negative (relevant > 0)")
        self.query_weight = query_weight
        self.relevant_weight = relevant_weight
        self.regularization = regularization

    def build_query(self, points: np.ndarray, scores: np.ndarray) -> PowerMeanQuery:
        relevant_mean = weighted_mean(points, scores)
        total = self.query_weight + self.relevant_weight
        moved = (
            self.query_weight * self.initial_point
            + self.relevant_weight * relevant_mean
        ) / total
        inverse = diagonal_inverse_from_points(points, scores, self.regularization)
        return PowerMeanQuery(
            centers=moved[None, :],
            inverses=(inverse,),
            weights=np.ones(1),
            alpha=1.0,
        )
