"""MindReader baseline (Ishikawa, Subramanya & Faloutsos [11]).

MindReader is query-point movement with a **full** covariance model: the
single query point is the weighted mean of the relevant set and the
distance is the generalized Euclidean form with the full (regularized)
inverse covariance, so arbitrarily *oriented* ellipsoids are learnable
(unlike MARS, whose diagonal weights only stretch along coordinate
axes).

In Qcluster terms this is the ``g = 1`` special case with the inverse
scheme: "when all relevant images are included in a single cluster, it
is the same as MindReader's" (Section 4).
"""

from __future__ import annotations

import numpy as np

from ..core.covariance import InverseScheme
from ..stats.descriptive import weighted_covariance, weighted_mean
from .base import AccumulatingMethod, PowerMeanQuery

__all__ = ["MindReader"]


class MindReader(AccumulatingMethod):
    """Single point, full inverse-covariance distance.

    Args:
        regularization: diagonal loading for the covariance inversion
            (the singularity fix of Section 3.2 — needed whenever fewer
            relevant images than dimensions are available).
    """

    name = "mindreader"

    def __init__(self, regularization: float = 1e-6) -> None:
        super().__init__()
        self.scheme = InverseScheme(regularization=regularization)

    def build_query(self, points: np.ndarray, scores: np.ndarray) -> PowerMeanQuery:
        center = weighted_mean(points, scores)
        covariance = weighted_covariance(points, scores, center)
        inverse = self.scheme.invert(covariance).inverse
        return PowerMeanQuery(
            centers=center[None, :],
            inverses=(inverse,),
            weights=np.ones(1),
            alpha=1.0,
        )
