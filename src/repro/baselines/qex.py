"""Query-expansion baseline (Porkaew & Chakrabarti [13], MARS).

QEX also uses multiple query points — it clusters the relevant set and
keeps cluster centroids as representatives — but then "all local
clusters are merged to form a **single large contour** that covers all
query points": the aggregate is a *weighted average* (convex /
conjunctive combination) of per-representative distances, so the
iso-distance surface is one connected region enclosing every
representative (Figure 1(b)).

That convexity is exactly what fails on complex queries: when the
relevant images form disjoint feature-space clusters, the single large
contour covers the (irrelevant) region between them.  Qcluster's
harmonic (fuzzy-OR) aggregate keeps the contours separate.
"""

from __future__ import annotations

import numpy as np

from ..clustering.agglomerative import AgglomerativeClusterer
from .base import AccumulatingMethod, PowerMeanQuery, diagonal_inverse_from_points

__all__ = ["QueryExpansion"]


class QueryExpansion(AccumulatingMethod):
    """Cluster the relevant set; combine representatives conjunctively.

    Args:
        n_representatives: number of local clusters to keep (the MARS
            query-expansion work uses a handful; 3 is its common choice).
        linkage: linkage criterion for the local clustering.
        regularization: variance floor for the per-representative
            re-weighting.
    """

    name = "qex"

    def __init__(
        self,
        n_representatives: int = 3,
        linkage: str = "average",
        regularization: float = 1e-6,
    ) -> None:
        super().__init__()
        if n_representatives < 1:
            raise ValueError(
                f"n_representatives must be at least 1, got {n_representatives}"
            )
        self.n_representatives = n_representatives
        self.linkage = linkage
        self.regularization = regularization

    def build_query(self, points: np.ndarray, scores: np.ndarray) -> PowerMeanQuery:
        n_clusters = min(self.n_representatives, points.shape[0])
        clustering = AgglomerativeClusterer(
            n_clusters=n_clusters, linkage=self.linkage
        ).fit(points)
        centers = []
        weights = []
        # One shared shape matrix: the single-large-contour model weights
        # dimensions from the *whole* relevant set, not per cluster.
        shared_inverse = diagonal_inverse_from_points(points, scores, self.regularization)
        for label in range(clustering.n_clusters):
            members = clustering.members(label)
            member_scores = scores[members]
            centers.append(member_scores @ points[members] / member_scores.sum())
            weights.append(float(member_scores.sum()))
        centers = np.vstack(centers)
        return PowerMeanQuery(
            centers=centers,
            inverses=tuple(shared_inverse for _ in range(centers.shape[0])),
            weights=np.asarray(weights),
            alpha=1.0,  # arithmetic mean -> one convex covering contour
        )
