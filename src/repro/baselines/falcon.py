"""FALCON baseline (Wu, Faloutsos, Sycara & Payne [20]).

FALCON's aggregate dissimilarity treats **every relevant point as a
query point** (no clustering, no representatives) and combines their
distances with a strongly negative power mean,

    d_agg(Q, x)^alpha = (1/g) sum_i d(q_i, x)^alpha,  alpha < 0

(the original paper recommends ``alpha = -5``).  The negative exponent
mimics a fuzzy OR, so FALCON *can* learn disjunctive queries — but, as
the Qcluster paper notes, "the proposed aggregate dissimilarity model
depends on ad hoc heuristics and assumes all relevant points are query
points", which makes every distance evaluation cost ``O(g)`` in the
number of relevant images rather than the number of clusters.
"""

from __future__ import annotations

import numpy as np

from .base import AccumulatingMethod, PowerMeanQuery

__all__ = ["Falcon"]


class Falcon(AccumulatingMethod):
    """All relevant points as query points, fuzzy-OR aggregate.

    Args:
        alpha: the (negative) aggregate exponent; -5 per the FALCON paper.
        max_query_points: optional cap on the pooled relevant set size
            (keeps distance evaluation tractable in long sessions; the
            most recently added points are kept).
    """

    name = "falcon"

    def __init__(self, alpha: float = -5.0, max_query_points: int = None) -> None:
        super().__init__()
        if alpha >= 0:
            raise ValueError(f"FALCON requires a negative alpha, got {alpha}")
        if max_query_points is not None and max_query_points < 1:
            raise ValueError(
                f"max_query_points must be at least 1, got {max_query_points}"
            )
        self.alpha = alpha
        self.max_query_points = max_query_points

    def build_query(self, points: np.ndarray, scores: np.ndarray) -> PowerMeanQuery:
        if self.max_query_points is not None and points.shape[0] > self.max_query_points:
            points = points[-self.max_query_points :]
            scores = scores[-self.max_query_points :]
        identity = np.eye(points.shape[1])
        return PowerMeanQuery(
            centers=points,
            inverses=tuple(identity for _ in range(points.shape[0])),
            weights=scores,
            alpha=self.alpha,
        )
