"""Comparison baselines: QPM (MARS/Rocchio), QEX, FALCON and MindReader."""

from .base import AccumulatingMethod, PowerMeanQuery, diagonal_inverse_from_points
from .falcon import Falcon
from .mindreader import MindReader
from .qex import QueryExpansion
from .qpm import QueryPointMovement

__all__ = [
    "AccumulatingMethod",
    "PowerMeanQuery",
    "diagonal_inverse_from_points",
    "Falcon",
    "MindReader",
    "QueryExpansion",
    "QueryPointMovement",
]
