"""Uniform synthetic data for the disjunctive-query demo (paper Example 3).

The paper's Example 3 / Figure 5: 10,000 points uniformly distributed in
the cube ``(-2,-2,-2) ~ (2,2,2)``; a disjunctive query around
``(-1,-1,-1)`` and ``(1,1,1)`` with radius 1.0 retrieves 820 points in
two separated balls.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["uniform_cube", "ball_membership"]


def uniform_cube(
    n_points: int = 10_000,
    dim: int = 3,
    low: float = -2.0,
    high: float = 2.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """``(n_points, dim)`` points uniform in ``[low, high]^dim``."""
    if n_points < 1:
        raise ValueError(f"n_points must be at least 1, got {n_points}")
    if low >= high:
        raise ValueError(f"low must be below high, got [{low}, {high}]")
    rng = rng if rng is not None else np.random.default_rng()
    return rng.uniform(low, high, size=(n_points, dim))


def ball_membership(
    points: np.ndarray,
    centers: Sequence[Sequence[float]],
    radius: float,
) -> np.ndarray:
    """Boolean mask: point within Euclidean ``radius`` of *any* center.

    This is the ground truth of Example 3 ("points were retrieved if and
    only if they were within 1.0 units of either (-1,-1,-1) or (1,1,1)").
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    points = np.atleast_2d(np.asarray(points, dtype=float))
    mask = np.zeros(points.shape[0], dtype=bool)
    for center in centers:
        deltas = points - np.asarray(center, dtype=float)
        mask |= np.einsum("ij,ij->i", deltas, deltas) <= radius**2
    return mask
