"""One canonical float32 feature-matrix conversion for stored datasets.

Every producer in :mod:`repro.datasets` hands out float64 arrays (the
in-memory analysis paths want the extra precision), and historically
each consumer re-converted on its own — the feature store's ingest path
would have stacked a float64 copy on top of a float32 copy on top of a
C-order copy.  :func:`as_feature_matrix` is the single place that
conversion happens now: whatever the source (raw array, nested lists, a
:class:`~repro.retrieval.database.FeatureDatabase`, a
:class:`~repro.datasets.gaussian.GaussianSample`), the result is one
``(n, p)`` float32 C-contiguous matrix produced by at most one copy.

:func:`assert_scan_ready` is the companion guard for the scan hot path:
it verifies — cheaply, via the array interface, never by copying — that
a matrix a scanner is about to consume is already in the canonical
layout, so an accidental upcast or re-copy fails loudly in tests
instead of silently doubling memory traffic.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FEATURE_DTYPE", "as_feature_matrix", "assert_scan_ready"]

#: The canonical on-disk / scan-path element type.  float32 halves the
#: store's footprint and memory bandwidth; distance kernels upcast to
#: float64 *during arithmetic* (NumPy type promotion), which is exact
#: for float32 inputs, so rankings do not depend on the storage dtype.
FEATURE_DTYPE = np.dtype("<f4")


def _extract_vectors(source) -> np.ndarray:
    """The raw ``(n, p)``-shaped payload of any dataset-ish object."""
    vectors = getattr(source, "vectors", None)  # FeatureDatabase
    if vectors is None:
        vectors = getattr(source, "points", None)  # GaussianSample
    if vectors is None:
        vectors = source
    return np.atleast_2d(np.asarray(vectors))


def as_feature_matrix(source) -> np.ndarray:
    """``source`` as one ``(n, p)`` float32 C-contiguous matrix.

    Performs at most one conversion: an array that is already float32,
    C-contiguous and two-dimensional is returned as-is (no copy at
    all), anything else is converted exactly once.

    Args:
        source: a raw ``(n, p)`` array (or anything ``np.asarray``
            accepts), a ``FeatureDatabase``, or a ``GaussianSample``.

    Raises:
        ValueError: on empty or non-2-d payloads, or non-finite values
            (NaN/inf would silently poison every distance downstream,
            and float64 values beyond float32 range would turn into
            ``inf`` in the narrowing).
    """
    vectors = _extract_vectors(source)
    if vectors.ndim != 2:
        raise ValueError(f"feature matrix must be 2-d, got shape {vectors.shape}")
    if vectors.shape[0] == 0 or vectors.shape[1] == 0:
        raise ValueError(f"feature matrix must be non-empty, got shape {vectors.shape}")
    if not np.all(np.isfinite(vectors)):
        raise ValueError("feature matrix contains non-finite values")
    with np.errstate(over="ignore"):  # overflow is detected and raised below
        matrix = np.ascontiguousarray(vectors, dtype=FEATURE_DTYPE)
    if not np.all(np.isfinite(matrix)):
        raise ValueError("feature matrix overflows float32 range")
    return matrix


def assert_scan_ready(matrix: np.ndarray, *, name: str = "feature matrix") -> np.ndarray:
    """Assert ``matrix`` is already scan-ready; returns it unchanged.

    Scan-ready means float32, C-contiguous and 2-d — the layout
    :func:`as_feature_matrix` produces and the zero-copy mmap scan path
    requires.  The check reads only array metadata (dtype, flags,
    ndim); it never touches the data, so it is free to leave on the hot
    path.
    """
    if not isinstance(matrix, np.ndarray):
        raise TypeError(f"{name} must be an ndarray, got {type(matrix)!r}")
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be 2-d, got shape {matrix.shape}")
    if matrix.dtype != FEATURE_DTYPE:
        raise ValueError(
            f"{name} must be {FEATURE_DTYPE} (got {matrix.dtype}): a silent "
            "re-conversion crept onto the scan hot path"
        )
    if not matrix.flags["C_CONTIGUOUS"]:
        raise ValueError(
            f"{name} must be C-contiguous: a silent copy/transpose crept "
            "onto the scan hot path"
        )
    return matrix
