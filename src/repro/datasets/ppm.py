"""PPM image I/O and a directory-based collection loader.

The reproduction runs on a procedural collection by default, but the
system is meant to be usable on real images.  PPM (P6/P3) is the one
raster format that needs no imaging dependency — pure byte wrangling —
so this module provides:

* :func:`load_ppm` / :func:`save_ppm` — binary (P6) and ASCII (P3)
  readers and a P6 writer, 8-bit channels;
* :func:`load_directory_collection` — build a labelled collection from
  a directory tree where each subdirectory is one category (the layout
  of essentially every image-classification dataset).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from ..features.image import Image

__all__ = ["load_ppm", "save_ppm", "load_directory_collection"]


def _read_tokens(data: bytes, count: int, offset: int) -> Tuple[List[bytes], int]:
    """Read ``count`` whitespace-delimited tokens, skipping # comments."""
    tokens: List[bytes] = []
    position = offset
    length = len(data)
    while len(tokens) < count:
        while position < length and data[position : position + 1].isspace():
            position += 1
        if position < length and data[position : position + 1] == b"#":
            while position < length and data[position : position + 1] != b"\n":
                position += 1
            continue
        start = position
        while position < length and not data[position : position + 1].isspace():
            position += 1
        if start == position:
            raise ValueError("truncated PPM header")
        tokens.append(data[start:position])
    return tokens, position


def load_ppm(path: Union[str, Path], label: int = -1) -> Image:
    """Read a P6 (binary) or P3 (ASCII) PPM file into an :class:`Image`."""
    data = Path(path).read_bytes()
    if len(data) < 2 or data[:2] not in (b"P6", b"P3"):
        raise ValueError(f"{path}: not a P6/P3 PPM file")
    magic = data[:2]
    (width_token, height_token, maxval_token), position = _read_tokens(data, 3, 2)
    width, height, maxval = int(width_token), int(height_token), int(maxval_token)
    if width < 1 or height < 1:
        raise ValueError(f"{path}: invalid dimensions {width}x{height}")
    if not 0 < maxval < 65536:
        raise ValueError(f"{path}: invalid maxval {maxval}")
    n_values = width * height * 3
    if magic == b"P6":
        position += 1  # single whitespace after maxval
        bytes_per_value = 1 if maxval < 256 else 2
        raw = data[position : position + n_values * bytes_per_value]
        if len(raw) < n_values * bytes_per_value:
            raise ValueError(f"{path}: truncated pixel data")
        dtype = np.uint8 if bytes_per_value == 1 else ">u2"
        values = np.frombuffer(raw, dtype=dtype, count=n_values).astype(float)
    else:
        tokens, _ = _read_tokens(data, n_values, position)
        values = np.array([int(token) for token in tokens], dtype=float)
    pixels = (values.reshape(height, width, 3) / maxval * 255.0 + 0.5).astype(np.uint8)
    return Image(pixels=pixels, label=label)


def save_ppm(image: Image, path: Union[str, Path]) -> None:
    """Write an :class:`Image` as binary P6 PPM."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    height, width = image.shape
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    path.write_bytes(header + image.pixels.tobytes())


def load_directory_collection(
    root: Union[str, Path],
    pattern: str = "*.ppm",
) -> Tuple[List[Image], np.ndarray, List[str]]:
    """Load a subdirectory-per-category tree of PPM images.

    Args:
        root: directory whose immediate subdirectories are categories.
        pattern: filename glob within each category directory.

    Returns:
        ``(images, labels, category_names)`` — labels index into
        ``category_names`` (sorted for determinism).
    """
    root = Path(root)
    if not root.is_dir():
        raise ValueError(f"{root} is not a directory")
    category_directories = sorted(p for p in root.iterdir() if p.is_dir())
    if not category_directories:
        raise ValueError(f"{root} contains no category subdirectories")
    images: List[Image] = []
    labels: List[int] = []
    names: List[str] = []
    for label, directory in enumerate(category_directories):
        names.append(directory.name)
        files = sorted(directory.glob(pattern))
        for file in files:
            images.append(load_ppm(file, label=label))
            labels.append(label)
    if not images:
        raise ValueError(f"no images matching {pattern!r} under {root}")
    return images, np.asarray(labels), names
