"""Synthetic datasets: Gaussian clusters, uniform cubes, image collections."""

from .gaussian import (
    GaussianSample,
    cluster_pair,
    elliptical_clusters,
    random_linear_map,
    simplex_centers,
    spherical_clusters,
)
from .matrix import FEATURE_DTYPE, as_feature_matrix, assert_scan_ready
from .ppm import load_directory_collection, load_ppm, save_ppm
from .synthetic_images import (
    CategorySpec,
    ModeSpec,
    SyntheticCollection,
    generate_collection,
    render_mode_image,
)
from .uniform import ball_membership, uniform_cube

__all__ = [
    "FEATURE_DTYPE",
    "as_feature_matrix",
    "assert_scan_ready",
    "GaussianSample",
    "cluster_pair",
    "elliptical_clusters",
    "random_linear_map",
    "simplex_centers",
    "spherical_clusters",
    "CategorySpec",
    "ModeSpec",
    "SyntheticCollection",
    "generate_collection",
    "render_mode_image",
    "ball_membership",
    "uniform_cube",
    "load_directory_collection",
    "load_ppm",
    "save_ppm",
]
