"""Synthetic Gaussian cluster data (paper Section 5, synthetic experiments).

The paper's synthetic protocol:

* draw ``z = (z_1, ..., z_p)`` i.i.d. ``N(0, 1)`` — spherical clusters;
* apply a linear map ``y = A z`` so ``COV(y) = A A'`` — elliptical
  clusters (used to demonstrate the linear-transformation invariance of
  Theorem 1);
* 3 clusters in R^16 whose **inter-cluster distance** varies from 0.5 to
  2.5, PCA-reduced to 12 / 9 / 6 / 3 dims (Figures 14-17);
* pairs of clusters of size 30 with *same* or *different* means for the
  ``T^2`` accuracy study (Tables 2-3, Figures 18-19).

Inter-cluster distance here means the pairwise Euclidean distance
between cluster centers measured in units of the (unit) component
standard deviation, matching the paper's 0.5-2.5 range where clusters
go from heavily overlapping to well separated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "GaussianSample",
    "simplex_centers",
    "random_linear_map",
    "spherical_clusters",
    "elliptical_clusters",
    "cluster_pair",
]


@dataclass(frozen=True)
class GaussianSample:
    """Labelled synthetic sample.

    Attributes:
        points: ``(n, p)`` data matrix.
        labels: length-``n`` integer cluster labels.
        centers: ``(g, p)`` true cluster centers (after any linear map).
        transform: the linear map ``A`` applied, or ``None`` for spherical.
    """

    points: np.ndarray
    labels: np.ndarray
    centers: np.ndarray
    transform: Optional[np.ndarray]


def simplex_centers(n_clusters: int, dim: int, separation: float) -> np.ndarray:
    """Cluster centers with *equal* pairwise distance ``separation``.

    Uses the regular-simplex construction: the first ``n_clusters``
    standard basis vectors scaled by ``separation / sqrt(2)`` are mutually
    equidistant with exactly the requested pairwise distance; the
    configuration is then centered at the origin.
    """
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be at least 1, got {n_clusters}")
    if n_clusters > dim + 1:
        raise ValueError(
            f"cannot place {n_clusters} equidistant centers in {dim} dimensions"
        )
    if separation < 0:
        raise ValueError(f"separation must be non-negative, got {separation}")
    centers = np.zeros((n_clusters, dim))
    for i in range(min(n_clusters, dim)):
        centers[i, i] = separation / np.sqrt(2.0)
    if n_clusters == dim + 1:
        # The extra vertex of the regular simplex.
        value = separation / np.sqrt(2.0) * (1.0 + np.sqrt(dim + 1.0)) / dim
        centers[-1, :] = value
    return centers - centers.mean(axis=0)


def random_linear_map(
    dim: int,
    rng: np.random.Generator,
    condition_number: float = 4.0,
) -> np.ndarray:
    """A well-conditioned random ``(dim, dim)`` linear map ``A``.

    Built as ``A = Q1 D Q2`` with random orthogonal factors (QR of a
    Gaussian matrix) and singular values log-spaced between 1 and
    ``condition_number`` — elliptical but never near-singular, so the
    inverse-matrix scheme stays numerically comparable.
    """
    if condition_number < 1.0:
        raise ValueError(f"condition_number must be >= 1, got {condition_number}")
    q1, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    q2, _ = np.linalg.qr(rng.standard_normal((dim, dim)))
    singular_values = np.logspace(0.0, np.log10(condition_number), dim)
    return q1 @ np.diag(singular_values) @ q2


def spherical_clusters(
    n_clusters: int = 3,
    dim: int = 16,
    separation: float = 1.5,
    n_per_cluster: int = 60,
    rng: Optional[np.random.Generator] = None,
) -> GaussianSample:
    """``n_clusters`` unit-covariance Gaussian blobs at pairwise ``separation``."""
    rng = rng if rng is not None else np.random.default_rng()
    if n_per_cluster < 1:
        raise ValueError(f"n_per_cluster must be at least 1, got {n_per_cluster}")
    centers = simplex_centers(n_clusters, dim, separation)
    points = np.vstack(
        [center + rng.standard_normal((n_per_cluster, dim)) for center in centers]
    )
    labels = np.repeat(np.arange(n_clusters), n_per_cluster)
    return GaussianSample(points=points, labels=labels, centers=centers, transform=None)


def elliptical_clusters(
    n_clusters: int = 3,
    dim: int = 16,
    separation: float = 1.5,
    n_per_cluster: int = 60,
    rng: Optional[np.random.Generator] = None,
    condition_number: float = 4.0,
) -> GaussianSample:
    """Spherical clusters pushed through a shared random linear map ``y = Az``.

    Applying one map to *all* points (centers included) preserves the
    clustering problem up to a linear transformation, which is exactly
    the setting of Theorem 1: an invariant method must score the same
    here as on the spherical original.
    """
    rng = rng if rng is not None else np.random.default_rng()
    base = spherical_clusters(n_clusters, dim, separation, n_per_cluster, rng)
    transform = random_linear_map(dim, rng, condition_number)
    return GaussianSample(
        points=base.points @ transform.T,
        labels=base.labels,
        centers=base.centers @ transform.T,
        transform=transform,
    )


def cluster_pair(
    same_mean: bool,
    size: int = 30,
    dim: int = 16,
    separation: float = 2.0,
    rng: Optional[np.random.Generator] = None,
    elliptical: bool = False,
    condition_number: float = 4.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """One pair of Gaussian clusters for the ``T^2`` study (Tables 2-3).

    Args:
        same_mean: draw both clusters from the same population (H0 true)
            or displace the second by ``separation`` (H0 false).
        size: points per cluster (the paper uses 30).
        dim: dimensionality (the paper uses 16, then PCA-reduces).
        separation: center displacement used when ``same_mean`` is False.
        elliptical: push both clusters through one random linear map.

    Returns:
        ``(points_a, points_b)`` each of shape ``(size, dim)``.
    """
    rng = rng if rng is not None else np.random.default_rng()
    if size < 2:
        raise ValueError(f"size must be at least 2, got {size}")
    points_a = rng.standard_normal((size, dim))
    offset = np.zeros(dim)
    if not same_mean:
        direction = rng.standard_normal(dim)
        direction /= np.linalg.norm(direction)
        offset = separation * direction
    points_b = offset + rng.standard_normal((size, dim))
    if elliptical:
        transform = random_linear_map(dim, rng, condition_number)
        points_a = points_a @ transform.T
        points_b = points_b @ transform.T
    return points_a, points_b
