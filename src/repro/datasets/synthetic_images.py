"""Procedural image collection — the Corel/Mantan surrogate.

The paper evaluates on 30,000 Corel + Mantan color images grouped by
domain professionals into categories of roughly 100 images; category
membership is the relevance ground truth.  That collection is
proprietary, so we synthesize a collection with the properties the
evaluation actually depends on:

* images are genuine pixel arrays — color moments and GLCM texture are
  extracted from them by the same math the paper describes;
* each category has a coherent visual identity (a palette and a
  procedural texture), so same-category images are close in feature
  space;
* a configurable fraction of categories is **multi-modal**: their
  members split between two visually distinct modes (e.g. the paper's
  bird images on light-green vs dark-blue backgrounds, Example 1).
  These are the "complex queries" that disjunctive multipoint queries
  exist for — a single contour cannot cover both modes.

Textures available: flat, horizontal/vertical/diagonal stripes,
checkerboard, blobs (band-limited noise), and radial gradient.  Each
mode fixes a texture kind, a frequency, a base HSV palette and a noise
level; individual images jitter all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..features.hsv import hsv_to_rgb
from ..features.image import Image

__all__ = [
    "ModeSpec",
    "CategorySpec",
    "SyntheticCollection",
    "render_mode_image",
    "generate_collection",
]

_TEXTURES = ("flat", "stripes_h", "stripes_v", "stripes_d", "checker", "blobs", "radial")


@dataclass(frozen=True)
class ModeSpec:
    """One visual mode of a category.

    Attributes:
        hue: base hue in [0, 1).
        saturation: base saturation in [0, 1].
        value: base brightness in [0, 1].
        texture: one of flat / stripes_h / stripes_v / stripes_d /
            checker / blobs / radial.
        frequency: texture spatial frequency (cycles across the image).
        contrast: amplitude of the texture modulation on the value channel.
        noise: per-pixel Gaussian noise level.
    """

    hue: float
    saturation: float
    value: float
    texture: str
    frequency: float = 4.0
    contrast: float = 0.35
    noise: float = 0.03

    def __post_init__(self) -> None:
        if self.texture not in _TEXTURES:
            raise ValueError(
                f"unknown texture {self.texture!r}; expected one of {_TEXTURES}"
            )
        if not 0.0 <= self.saturation <= 1.0 or not 0.0 <= self.value <= 1.0:
            raise ValueError("saturation and value must lie in [0, 1]")


@dataclass(frozen=True)
class CategorySpec:
    """A category: one or more visual modes sharing a semantic label."""

    category_id: int
    modes: Tuple[ModeSpec, ...]

    def __post_init__(self) -> None:
        if not self.modes:
            raise ValueError("a category needs at least one mode")

    @property
    def is_complex(self) -> bool:
        """True for multi-modal (disjunctive-query-requiring) categories."""
        return len(self.modes) > 1


@dataclass
class SyntheticCollection:
    """The generated collection: images, labels and their specs.

    Attributes:
        images: the rendered images, label already attached.
        labels: ``(n,)`` category id per image.
        modes: ``(n,)`` within-category mode index per image (useful for
            verifying that multipoint queries recover both modes).
        categories: the category specifications used.
        related: symmetric related-category relation (the paper's
            "flowers and plants": visually adjacent categories whose
            images count as relevant at a reduced score).  Pass this to
            :class:`~repro.retrieval.database.FeatureDatabase`.
    """

    images: List[Image]
    labels: np.ndarray
    modes: np.ndarray
    categories: List[CategorySpec] = field(default_factory=list)
    related: Dict[int, Set[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.images)

    def indices_of(self, category_id: int) -> np.ndarray:
        """Indices of all images in ``category_id``."""
        return np.nonzero(self.labels == category_id)[0]


def _texture_field(
    texture: str,
    size: int,
    frequency: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A [−1, 1] modulation field of shape ``(size, size)``."""
    coords = np.linspace(0.0, 1.0, size, endpoint=False)
    y, x = np.meshgrid(coords, coords, indexing="ij")
    phase = rng.uniform(0.0, 2.0 * np.pi)
    if texture == "flat":
        return np.zeros((size, size))
    if texture == "stripes_h":
        return np.sin(2.0 * np.pi * frequency * y + phase)
    if texture == "stripes_v":
        return np.sin(2.0 * np.pi * frequency * x + phase)
    if texture == "stripes_d":
        return np.sin(2.0 * np.pi * frequency * (x + y) / np.sqrt(2.0) + phase)
    if texture == "checker":
        return np.sign(
            np.sin(2.0 * np.pi * frequency * x + phase)
            * np.sin(2.0 * np.pi * frequency * y + phase)
        )
    if texture == "blobs":
        # Band-limited noise: random low-resolution grid upsampled by
        # separable linear interpolation.
        grid_size = max(2, int(frequency))
        grid = rng.standard_normal((grid_size, grid_size))
        xp = np.linspace(0.0, grid_size - 1.0, size)
        rows = np.empty((grid_size, size))
        for i in range(grid_size):
            rows[i] = np.interp(xp, np.arange(grid_size), grid[i])
        columns = np.empty((size, size))
        for j in range(size):
            columns[:, j] = np.interp(xp, np.arange(grid_size), rows[:, j])
        peak = np.abs(columns).max()
        return columns / peak if peak > 0 else columns
    if texture == "radial":
        radius = np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2)
        return np.cos(2.0 * np.pi * frequency * radius + phase)
    raise ValueError(f"unknown texture {texture!r}")  # pragma: no cover


def render_mode_image(
    mode: ModeSpec,
    size: int,
    rng: np.random.Generator,
    label: int = -1,
) -> Image:
    """Render one image of a mode with per-image jitter.

    Jitter: hue ±0.02, saturation/value ±0.05, frequency ±15 %, plus the
    mode's pixel noise — enough intra-mode variance for covariance
    estimation to be meaningful, small enough to keep modes separable.
    """
    jittered_frequency = mode.frequency * rng.uniform(0.85, 1.15)
    base_field = _texture_field(mode.texture, size, jittered_frequency, rng)
    value = np.clip(
        mode.value
        + rng.normal(0.0, 0.05)
        + mode.contrast * base_field
        + rng.normal(0.0, mode.noise, (size, size)),
        0.0,
        1.0,
    )
    hue = (mode.hue + rng.normal(0.0, 0.02) + rng.normal(0.0, 0.01, (size, size))) % 1.0
    saturation = np.clip(
        mode.saturation + rng.normal(0.0, 0.05) + rng.normal(0.0, 0.02, (size, size)),
        0.0,
        1.0,
    )
    hsv = np.stack([hue, saturation, value], axis=-1)
    rgb = np.clip(hsv_to_rgb(hsv), 0.0, 1.0)
    return Image(pixels=rgb, label=label)


def _random_mode(rng: np.random.Generator) -> ModeSpec:
    return ModeSpec(
        hue=float(rng.uniform(0.0, 1.0)),
        saturation=float(rng.uniform(0.35, 0.95)),
        value=float(rng.uniform(0.35, 0.85)),
        texture=str(rng.choice(_TEXTURES)),
        frequency=float(rng.uniform(2.0, 8.0)),
        contrast=float(rng.uniform(0.2, 0.45)),
        noise=float(rng.uniform(0.01, 0.05)),
    )


def _related_mode(mode: ModeSpec, rng: np.random.Generator) -> ModeSpec:
    """A visually adjacent variation of ``mode`` (same texture family)."""
    return replace(
        mode,
        hue=float((mode.hue + rng.uniform(0.04, 0.09)) % 1.0),
        saturation=float(np.clip(mode.saturation + rng.uniform(-0.1, 0.1), 0.2, 1.0)),
        value=float(np.clip(mode.value + rng.uniform(-0.1, 0.1), 0.2, 0.95)),
        frequency=float(mode.frequency * rng.uniform(0.9, 1.1)),
    )


def generate_collection(
    n_categories: int = 20,
    images_per_category: int = 100,
    image_size: int = 24,
    complex_fraction: float = 0.3,
    related_pairs: int = 0,
    seed: int = 0,
) -> SyntheticCollection:
    """Generate the surrogate collection.

    Args:
        n_categories: number of semantic categories (the paper has ~300;
            20 × 100 keeps Python-side feature extraction tractable while
            preserving the evaluation's structure).
        images_per_category: the paper's "about 100 images per category".
        image_size: square image edge in pixels.
        complex_fraction: fraction of categories given **two** visual
            modes (the complex-query population).
        related_pairs: number of category pairs made visually adjacent
            and recorded in :attr:`SyntheticCollection.related` (the
            paper's flowers/plants graded-relevance setting).  Pairs are
            taken from the tail of the simple categories.
        seed: RNG seed — the collection is fully deterministic given it.
    """
    if n_categories < 1:
        raise ValueError(f"n_categories must be at least 1, got {n_categories}")
    if images_per_category < 1:
        raise ValueError(
            f"images_per_category must be at least 1, got {images_per_category}"
        )
    if not 0.0 <= complex_fraction <= 1.0:
        raise ValueError(f"complex_fraction must lie in [0, 1], got {complex_fraction}")
    if related_pairs < 0:
        raise ValueError(f"related_pairs must be non-negative, got {related_pairs}")
    rng = np.random.default_rng(seed)
    n_complex = int(round(complex_fraction * n_categories))
    if 2 * related_pairs > n_categories - n_complex:
        raise ValueError(
            f"{related_pairs} related pairs need {2 * related_pairs} simple "
            f"categories; only {n_categories - n_complex} available"
        )
    categories: List[CategorySpec] = []
    for category_id in range(n_categories):
        n_modes = 2 if category_id < n_complex else 1
        modes = tuple(_random_mode(rng) for _ in range(n_modes))
        categories.append(CategorySpec(category_id=category_id, modes=modes))

    # Make the last 2*related_pairs simple categories pairwise adjacent:
    # the second of each pair re-derives its mode from the first's.
    related: Dict[int, Set[int]] = {}
    for pair in range(related_pairs):
        first = n_categories - 2 * related_pairs + 2 * pair
        second = first + 1
        base_mode = categories[first].modes[0]
        categories[second] = CategorySpec(
            category_id=second, modes=(_related_mode(base_mode, rng),)
        )
        related.setdefault(first, set()).add(second)
        related.setdefault(second, set()).add(first)

    images: List[Image] = []
    labels: List[int] = []
    mode_indices: List[int] = []
    for spec in categories:
        for image_index in range(images_per_category):
            mode_index = image_index % len(spec.modes)
            images.append(
                render_mode_image(
                    spec.modes[mode_index], image_size, rng, label=spec.category_id
                )
            )
            labels.append(spec.category_id)
            mode_indices.append(mode_index)
    return SyntheticCollection(
        images=images,
        labels=np.asarray(labels),
        modes=np.asarray(mode_indices),
        categories=categories,
        related=related,
    )
