"""The complete CBIR system of the paper's Figure 2, as one object.

:class:`ImageRetrievalSystem` wires every layer together — feature
extraction, the index, the Qcluster engine and session bookkeeping —
behind the interaction the paper describes:

1. build the system over an image collection (features are extracted
   and indexed once),
2. ``query_by_image`` with an example image (the parse step of
   Figure 2) to get the first result page,
3. ``give_feedback`` with the ids the user marked relevant (optionally
   scored) to get a refined result page,
4. repeat 3 until satisfied.

Any :class:`~repro.retrieval.methods.FeedbackMethod` can be plugged in,
so the same system object also runs the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .features.image import Image
from .features.pipeline import FeaturePipeline, color_pipeline, texture_pipeline
from .index.hybridtree import HybridTree
from .index.multipoint import MultipointSearcher
from .retrieval.methods import FeedbackMethod, QclusterMethod

__all__ = ["ResultQuality", "EXACT_QUALITY", "ResultPage", "ImageRetrievalSystem"]


@dataclass(frozen=True)
class ResultQuality:
    """Provenance of a result page: exact, approximate, or degraded — and *why*.

    Every response carries one of these.  ``exact`` is a guarantee:
    the page is byte-identical to what a fault-free computation over
    the session's state would produce (recovery — retries, hedges,
    fallback scans — may have happened, but it succeeded completely).
    ``approximate`` means the page was deliberately served by the
    cheap no-backtrack ANN tier (or the session's feedback trajectory
    has been shaped by such a page): the ranking is exact *over the
    candidates the tier reached*, and ``estimated_recall`` states the
    tier's calibrated recall@k against the exact scan.  Approximation
    is an announced trade, never a silent one.
    ``degraded`` means coverage or state was *lost* and names the causes:

    * ``"shard_failed"`` — one or more shards were dropped after their
      retry budget; the page may miss rows from those shards.
    * ``"deadline"`` — the request's recovery budget expired before
      full coverage could be restored.
    * ``"checkpoint_rebuilt"`` — the session was rebuilt from its
      genesis query after checkpoint corruption; accumulated feedback
      was lost.

    Approximate pages carry their own reason tags:

    * ``"ann"`` — the page was ranked by the defeatist spill/RP-tree
      search over the reached leaves only.
    * ``"ann_fallback"`` — the ANN tier itself failed mid-descent and
      the request was re-served by the *exact* scan; the page content
      is exact, but it is stamped approximate (a conservative claim is
      never a lie) so the caller sees the tier misbehaving.

    Degradation and approximation are sticky per session: once a
    session's feedback trajectory was influenced by such a page, later
    pages remain marked (their ranking is exact over *divergent* state).

    Attributes:
        level: ``"exact"``, ``"approximate"`` or ``"degraded"``.
        reasons: sorted, de-duplicated causes (empty iff exact).
        estimated_recall: calibrated recall@k estimate in ``(0, 1]``;
            required for ``approximate``, absent otherwise.
    """

    level: str = "exact"
    reasons: Tuple[str, ...] = ()
    estimated_recall: Optional[float] = None

    def __post_init__(self) -> None:
        if self.level not in ("exact", "approximate", "degraded"):
            raise ValueError(
                f"level must be 'exact', 'approximate' or 'degraded', got {self.level!r}"
            )
        object.__setattr__(self, "reasons", tuple(sorted(set(self.reasons))))
        if self.level == "exact" and self.reasons:
            raise ValueError(f"exact quality cannot carry reasons, got {self.reasons}")
        if self.level in ("approximate", "degraded") and not self.reasons:
            raise ValueError(f"{self.level} quality needs at least one reason")
        if self.level == "approximate":
            if self.estimated_recall is None:
                raise ValueError("approximate quality needs an estimated_recall")
            if not 0.0 < self.estimated_recall <= 1.0:
                raise ValueError(
                    f"estimated_recall must be in (0, 1], got {self.estimated_recall}"
                )
        elif self.estimated_recall is not None:
            raise ValueError(
                f"{self.level} quality cannot carry an estimated_recall"
            )

    @property
    def is_exact(self) -> bool:
        """Whether the page is guaranteed byte-identical to fault-free."""
        return self.level == "exact"

    @property
    def is_approximate(self) -> bool:
        """Whether the page was (or follows) an announced ANN-tier serve."""
        return self.level == "approximate"

    @classmethod
    def degraded(cls, *reasons: str) -> "ResultQuality":
        """A degraded quality tagged with one or more causes."""
        return cls(level="degraded", reasons=tuple(reasons))

    @classmethod
    def approximate(cls, estimated_recall: float, *reasons: str) -> "ResultQuality":
        """An approximate quality with its recall estimate and causes."""
        return cls(
            level="approximate",
            reasons=tuple(reasons) or ("ann",),
            estimated_recall=float(estimated_recall),
        )

    def to_dict(self) -> dict:
        """JSON-compatible form for logs and API responses."""
        payload = {"level": self.level, "reasons": list(self.reasons)}
        if self.estimated_recall is not None:
            payload["estimated_recall"] = self.estimated_recall
        return payload


#: The shared "nothing was lost" singleton (the default on every page).
EXACT_QUALITY = ResultQuality()


@dataclass(frozen=True)
class ResultPage:
    """One page of ranked results.

    Attributes:
        ids: database image ids, best first.
        distances: aggregate distances, aligned with ``ids``.
        iteration: 0 for the initial query, then 1, 2, ...
        quality: exactness provenance (:data:`EXACT_QUALITY` unless the
            serving layer explicitly degraded this response).
    """

    ids: np.ndarray
    distances: np.ndarray
    iteration: int
    quality: ResultQuality = EXACT_QUALITY

    def __len__(self) -> int:
        return self.ids.shape[0]


@dataclass
class _Session:
    """Mutable per-query state."""

    method: FeedbackMethod
    query: object
    iteration: int = 0
    seen_relevant: set = field(default_factory=set)


class ImageRetrievalSystem:
    """Content-based image retrieval with relevance feedback.

    Args:
        images: the collection to index.
        feature: ``"color"`` (HSV moments → 3-d), ``"texture"``
            (GLCM → 4-d) or a ready :class:`FeaturePipeline`.
        method_factory: feedback strategy per session (default Qcluster).
        k: result-page size.
        use_index: route ranking through the cached multipoint tree
            search; ``False`` uses an exact vectorized scan (identical
            results, often faster for small collections).
    """

    def __init__(
        self,
        images: Sequence[Image],
        feature: object = "color",
        method_factory: Callable[[], FeedbackMethod] = QclusterMethod,
        k: int = 20,
        use_index: bool = True,
    ) -> None:
        if not images:
            raise ValueError("cannot build a retrieval system over zero images")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        if isinstance(feature, FeaturePipeline):
            self.pipeline = feature
        elif feature == "color":
            self.pipeline = color_pipeline()
        elif feature == "texture":
            self.pipeline = texture_pipeline()
        else:
            raise ValueError(
                f"feature must be 'color', 'texture' or a FeaturePipeline, got {feature!r}"
            )
        self.images = list(images)
        self.vectors = self.pipeline.fit(self.images)
        self.k = min(k, len(self.images))
        self.method_factory = method_factory
        self._tree = HybridTree(self.vectors) if use_index else None
        self._searcher: Optional[MultipointSearcher] = None
        self._session: Optional[_Session] = None

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of indexed images."""
        return len(self.images)

    @property
    def iteration(self) -> int:
        """Feedback iterations completed in the active session."""
        if self._session is None:
            raise RuntimeError("no active session; call query_by_image first")
        return self._session.iteration

    def _rank(self, query) -> ResultPage:
        assert self._session is not None
        if self._searcher is not None:
            result = self._searcher.search(query, self.k)
            ids, distances = result.indices, result.distances
        else:
            all_distances = query.distances(self.vectors)
            top = np.argpartition(all_distances, self.k - 1)[: self.k]
            ids = top[np.argsort(all_distances[top], kind="stable")]
            distances = all_distances[ids]
        return ResultPage(ids=ids, distances=distances, iteration=self._session.iteration)

    # ------------------------------------------------------------------
    # The Figure 2 loop
    # ------------------------------------------------------------------

    def query_by_image(self, example: Image) -> ResultPage:
        """Start a session from an example image (query parsing step)."""
        feature_vector = self.pipeline.transform_one(example)
        method = self.method_factory()
        query = method.start(feature_vector)
        if self._tree is not None:
            self._searcher = MultipointSearcher(self._tree)
        self._session = _Session(method=method, query=query)
        return self._rank(query)

    def query_by_id(self, image_id: int) -> ResultPage:
        """Start a session from an image already in the collection."""
        if not 0 <= image_id < self.size:
            raise IndexError(f"image id {image_id} out of range")
        method = self.method_factory()
        query = method.start(self.vectors[image_id])
        if self._tree is not None:
            self._searcher = MultipointSearcher(self._tree)
        self._session = _Session(method=method, query=query)
        return self._rank(query)

    def give_feedback(
        self,
        relevant_ids: Sequence[int],
        scores: Optional[Sequence[float]] = None,
    ) -> ResultPage:
        """Refine the active session's query with the user's judgments."""
        if self._session is None:
            raise RuntimeError("no active session; call query_by_image first")
        ids: List[int] = [int(i) for i in relevant_ids]
        for image_id in ids:
            if not 0 <= image_id < self.size:
                raise IndexError(f"image id {image_id} out of range")
            self._session.seen_relevant.add(image_id)
        if ids:
            self._session.query = self._session.method.feedback(
                self.vectors[ids], scores
            )
        self._session.iteration += 1
        return self._rank(self._session.query)

    def end_session(self) -> None:
        """Drop session state (the index itself stays warm)."""
        self._session = None
        self._searcher = None
