"""Multi-process shard scanning over a memory-mapped feature store.

The GIL caps the thread-sharded scan at roughly one core of NumPy per
request; this module crosses the process boundary without giving up
either zero-copy reads or byte-identical rankings:

* every worker process opens its *own* read-only
  :class:`~repro.store.FeatureStore` over the same file (the OS page
  cache shares the physical pages, so N workers cost one copy of the
  data);
* queries travel as small typed payloads — cluster centers, inverse
  matrices, weights — never as pickled query objects, so the compiled
  kernel memoized on the parent's query instance is not dragged
  through the pickle machinery; each worker compiles into its own
  process-wide kernel cache (compilation is a pure function of the
  cluster state, so every process builds the same evaluators);
* :func:`scan_shard_topk` is the *single* per-shard top-k
  implementation shared by the serial path, the thread pool and the
  process pool — there is no second scan codepath to drift — and the
  coordinator merges per-shard results in shard order under the
  ``(distance, id)`` tie-break, so the backend choice can never change
  a ranking, only its wall-clock cost.

Workers are spawn-safe: the pool uses the ``spawn`` start method
explicitly, so no fork-inherited locks, mmaps or NumPy thread pools
leak into children on any platform.

Trace propagation rides the existing round-trip: when the coordinator
passes a ``trace`` payload (a
:meth:`~repro.obs.TraceContext.to_dict` dict), the worker records its
scan under a process-local tracer adopted into that context and
returns the finished span dicts appended to the result tuple — no new
IPC channel, and the scan arrays themselves are untouched (the
byte-identity guarantee holds with tracing on or off).
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.kernels import (
    batched_per_cluster_distances,
    ensure_compiled,
    kernels_enabled,
)
from ..core.progressive import (
    CoarseLevel0,
    exact_top_k,
    progressive_topk,
    progressive_topk_batch,
)
from ..datasets.matrix import assert_scan_ready
from ..store import FeatureStore, StoreBlockCorrupt

__all__ = [
    "ShardWorkerPool",
    "encode_query",
    "decode_query",
    "scan_shard_topk",
    "scan_shard_topk_batch",
    "shard_coarse_level0",
]


def scan_shard_topk(
    query,
    shard: np.ndarray,
    offset: int,
    k: int,
    *,
    coarse: Optional[CoarseLevel0] = None,
):
    """Exact per-shard top-``k``: ``(global ids, distances, pruned, refined)``.

    Routed through the progressive filter-and-refine scan when it
    applies; the fallback computes every distance.  Either way the
    ids/distances returned are the shard's exact top-k under the
    ``(distance, id)`` order — this is the one scan kernel every
    backend (serial, threads, processes) runs.

    Args:
        coarse: optional precomputed level-0 projections for this shard
            (the store's PCA companions); bounds change, rankings never
            do.
    """
    k = min(k, shard.shape[0])
    progressive = progressive_topk(shard, query, k, coarse=coarse)
    if progressive is not None:
        return (
            progressive.indices + offset,
            progressive.distances,
            progressive.stats.pruned,
            progressive.stats.refined,
        )
    distances = _full_scan_distances([query], shard)[0]
    top = exact_top_k(distances, k)
    return top + offset, distances[top], 0, shard.shape[0]


def _full_scan_distances(queries, shard: np.ndarray) -> List[np.ndarray]:
    """Aggregate distances of every row to each full-scan query.

    The one fallback scorer both the solo and batched scan use: queries
    the compiled-kernel layer understands share a single tiled pass
    (:func:`~repro.core.kernels.batched_per_cluster_distances`, whose
    tile bounds depend only on the shard geometry — so a query scored
    solo and the same query scored inside a micro-batch make identical
    per-tile kernel calls and return identical bytes); anything else
    falls back to the query's own ``distances`` method.
    """
    compiled_at: List[Optional[int]] = []
    compilable = []
    for query in queries:
        combine = getattr(query, "combine_per_cluster", None)
        if (
            combine is not None
            and getattr(query, "points", None) is not None
            and kernels_enabled()
        ):
            compiled_at.append(len(compilable))
            compilable.append(query)
        else:
            compiled_at.append(None)
    per_cluster = batched_per_cluster_distances(
        [ensure_compiled(query) for query in compilable], shard
    )
    return [
        query.combine_per_cluster(per_cluster[position])
        if position is not None
        else query.distances(shard)
        for query, position in zip(queries, compiled_at)
    ]


def scan_shard_topk_batch(
    queries: Sequence[object],
    shard: np.ndarray,
    offset: int,
    ks: Sequence[int],
    *,
    coarse: Optional[CoarseLevel0] = None,
    approximate: Optional[Sequence[bool]] = None,
) -> List[Tuple[np.ndarray, np.ndarray, int, int, bool]]:
    """Per-shard top-``k`` for a whole micro-batch in one database pass.

    The batched counterpart of :func:`scan_shard_topk`: eligible
    queries share one level-0 filter pass over the shard (see
    :func:`~repro.core.progressive.progressive_topk_batch`), then each
    refines through its own compiled kernels — so every returned page
    is byte-identical to its solo scan.  Queries the progressive path
    rejects share one tiled full-scan pass instead (or, for query
    types the kernel layer cannot compile, their own ``distances``
    method), still byte-identical to their solo fallback.

    Returns one ``(global ids, distances, pruned, refined, exact)``
    tuple per query; ``exact`` is ``False`` only when that query's
    ``approximate`` flag was honored by a progressive load-shed scan.
    """
    ks = [min(int(k), shard.shape[0]) for k in ks]
    batched = progressive_topk_batch(
        shard, queries, ks, coarse=coarse, approximate=approximate
    )
    rejected = [
        query
        for query, progressive in zip(queries, batched)
        if progressive is None
    ]
    full_scans = iter(_full_scan_distances(rejected, shard))
    results: List[Tuple[np.ndarray, np.ndarray, int, int, bool]] = []
    for _query, k, progressive in zip(queries, ks, batched):
        if progressive is not None:
            results.append(
                (
                    progressive.indices + offset,
                    progressive.distances,
                    progressive.stats.pruned,
                    progressive.stats.refined,
                    progressive.exact,
                )
            )
            continue
        distances = next(full_scans)
        top = exact_top_k(distances, k)
        results.append((top + offset, distances[top], 0, shard.shape[0], True))
    return results


def shard_coarse_level0(
    store: FeatureStore, shard_index: int
) -> Optional[CoarseLevel0]:
    """The store's PCA companion of one shard as a level-0 bound source.

    Returns ``None`` when the store was built without coarse blocks or
    when any companion block fails its CRC — the scan then falls back
    to on-the-fly prefix transforms (lossless, just slower).  Callers
    should memoize the result: the constructor converts the float32
    companion to a float64 working copy once.
    """
    if not store.coarse_dims:
        return None
    try:
        projected = store.coarse(shard_index)
        mean, components = store.coarse_projection()
    except StoreBlockCorrupt:
        return None
    return CoarseLevel0(projected, mean, components)


# ----------------------------------------------------------------------
# Query serialization (typed payloads, pickle only as a last resort)
# ----------------------------------------------------------------------


def encode_query(query) -> Dict[str, Any]:
    """A small, picklable payload reconstructing ``query`` in a worker.

    Known query types (the disjunctive aggregate and the baselines'
    power mean) are flattened to their defining arrays; anything else
    falls back to pickling the object itself.
    """
    from ..baselines.base import PowerMeanQuery
    from ..core.distance import DisjunctiveQuery

    if isinstance(query, DisjunctiveQuery):
        return {
            "kind": "disjunctive",
            "points": [
                (
                    np.asarray(point.center, dtype=float),
                    np.asarray(point.inverse, dtype=float),
                    float(point.weight),
                    None
                    if point.diagonal is None
                    else np.asarray(point.diagonal, dtype=float),
                )
                for point in query.points
            ],
        }
    if isinstance(query, PowerMeanQuery):
        return {
            "kind": "power_mean",
            "centers": np.asarray(query.centers, dtype=float),
            "inverses": tuple(
                np.asarray(inverse, dtype=float) for inverse in query.inverses
            ),
            "weights": np.asarray(query.weights, dtype=float),
            "alpha": float(query.alpha),
        }
    import pickle

    return {"kind": "pickle", "blob": pickle.dumps(query)}


def decode_query(payload: Dict[str, Any]):
    """Inverse of :func:`encode_query`."""
    kind = payload["kind"]
    if kind == "disjunctive":
        from ..core.distance import DisjunctiveQuery, QueryPoint

        return DisjunctiveQuery(
            [
                QueryPoint(center=center, inverse=inverse, weight=weight, diagonal=diagonal)
                for center, inverse, weight, diagonal in payload["points"]
            ]
        )
    if kind == "power_mean":
        from ..baselines.base import PowerMeanQuery

        return PowerMeanQuery(
            centers=payload["centers"],
            inverses=payload["inverses"],
            weights=payload["weights"],
            alpha=payload["alpha"],
        )
    if kind == "pickle":
        import pickle

        return pickle.loads(payload["blob"])
    raise ValueError(f"unknown query payload kind {kind!r}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process store handles, keyed by path.  Populated by the pool
#: initializer (and lazily on first use, should a task outlive it).
_WORKER_STORES: Dict[str, FeatureStore] = {}

#: Per-process coarse-companion working copies, keyed by
#: ``(store path, shard index)`` — built once per worker, reused by
#: every scan of that shard.  ``None`` marks a store without usable
#: companions (absent or CRC-failed) so the fallback is not re-probed.
_WORKER_COARSE: Dict[Tuple[str, int], Optional[CoarseLevel0]] = {}


def _worker_store(store_path: str) -> FeatureStore:
    store = _WORKER_STORES.get(store_path)
    if store is None:
        store = FeatureStore.open(store_path)
        _WORKER_STORES[store_path] = store
    return store


def _worker_coarse(store_path: str, shard_index: int) -> Optional[CoarseLevel0]:
    key = (store_path, shard_index)
    if key not in _WORKER_COARSE:
        _WORKER_COARSE[key] = shard_coarse_level0(
            _worker_store(store_path), shard_index
        )
    return _WORKER_COARSE[key]


def _pool_initializer(store_path: str) -> None:
    """Open the store once per worker process, before any task runs."""
    _worker_store(store_path)


#: Per-worker-process trace-task counter: each traced task gets its own
#: short-lived tracer, so span ids are made unique per (pid, task) —
#: three shards scanned by one worker must not collide inside a trace.
_TRACE_TASKS = itertools.count(1)


class _WorkerTrace:
    """Context manager recording one worker-side scan span.

    Builds a short-lived process-local tracer adopted into the
    propagated :class:`~repro.obs.TraceContext`, opens a ``scan`` span
    annotated with the worker's identity, and hands the finished span
    dicts back through :attr:`spans` — the payload the task appends to
    its result for coordinator-side stitching.  Span ids are prefixed
    with the worker pid so they can never collide with coordinator ids
    inside one stitched trace.  A ``None`` trace payload makes the
    whole thing a no-op.
    """

    def __init__(self, trace: Optional[Dict[str, Any]], shard_index: int) -> None:
        self._trace = trace
        self._shard_index = shard_index
        self._stack: Optional[Any] = None
        self._tracer: Optional[Any] = None
        self.spans: List[Dict[str, Any]] = []

    def __enter__(self) -> "_WorkerTrace":
        if self._trace is None:
            return self
        import contextlib
        import os

        from ..obs import TraceContext, Tracer, activate
        from ..obs.distributed import with_trace_context

        self._tracer = Tracer(
            max_traces=4,
            id_prefix=f"w{os.getpid():x}.{next(_TRACE_TASKS):x}.",
        )
        self._stack = contextlib.ExitStack()
        self._stack.enter_context(activate(self._tracer))
        self._stack.enter_context(
            with_trace_context(TraceContext.from_dict(self._trace))
        )
        self._stack.enter_context(
            self._tracer.span(
                "scan", path="worker", shard=self._shard_index, pid=os.getpid()
            )
        )
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._stack is None:
            return
        self._stack.close()
        self.spans = self._tracer.traces() if self._tracer is not None else []


def _scan_shard_task(
    store_path: str,
    shard_index: int,
    payload: Dict[str, Any],
    k: int,
    trace: Optional[Dict[str, Any]] = None,
):
    """One shard's top-k, computed inside a worker process.

    The shard is a zero-copy mmap view (asserted scan-ready: float32,
    C-contiguous — no silent conversion happens between the file and
    the kernels); the query is rebuilt from its payload and compiled
    into this process's kernel cache.  Exceptions — including
    :class:`~repro.store.StoreBlockCorrupt` — pickle back to the
    coordinator intact.

    With a ``trace`` payload the return gains a fifth element: the
    worker-side span dicts recorded under the propagated context.
    Without one the historical 4-tuple shape is preserved exactly.
    """
    store = _worker_store(store_path)
    query = decode_query(payload)
    with _WorkerTrace(trace, shard_index) as recorder:
        ensure_compiled(query)
        shard = assert_scan_ready(
            store.shard(shard_index), name=f"shard {shard_index}"
        )
        offset = store.row_offsets[shard_index]
        coarse = _worker_coarse(store_path, shard_index)
        ids, distances, pruned, refined = scan_shard_topk(
            query, shard, offset, k, coarse=coarse
        )
    result = (np.asarray(ids), np.asarray(distances), int(pruned), int(refined))
    if trace is None:
        return result
    return result + (recorder.spans,)


def _scan_shard_batch_task(
    store_path: str,
    shard_index: int,
    payloads: Sequence[Dict[str, Any]],
    ks: Sequence[int],
    approximate: Sequence[bool],
    trace: Optional[Dict[str, Any]] = None,
):
    """A whole micro-batch's top-k over one shard, inside a worker.

    The batched counterpart of :func:`_scan_shard_task`: one shard read
    feeds every query in the batch (see :func:`scan_shard_topk_batch`).
    Results come back as plain tuples in payload order; with a
    ``trace`` payload they arrive wrapped as ``(parts, spans)``.
    """
    store = _worker_store(store_path)
    queries = [decode_query(payload) for payload in payloads]
    with _WorkerTrace(trace, shard_index) as recorder:
        for query in queries:
            ensure_compiled(query)
        shard = assert_scan_ready(
            store.shard(shard_index), name=f"shard {shard_index}"
        )
        offset = store.row_offsets[shard_index]
        coarse = _worker_coarse(store_path, shard_index)
        parts = scan_shard_topk_batch(
            queries, shard, offset, ks, coarse=coarse, approximate=approximate
        )
    results = [
        (np.asarray(ids), np.asarray(distances), int(pruned), int(refined), bool(exact))
        for ids, distances, pruned, refined, exact in parts
    ]
    if trace is None:
        return results
    return results, recorder.spans


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class ShardWorkerPool:
    """A spawn-safe process pool scanning one store's shards.

    Args:
        store_path: the feature-store file every worker mmaps.
        n_workers: worker process count.

    The pool tracks in-flight tasks (the ``repro_worker_pool_busy``
    gauge) and completion/failure totals; :meth:`stats` feeds the
    service metrics snapshot.
    """

    def __init__(self, store_path: Union[str, Path], n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        self.store_path = str(store_path)
        self.n_workers = n_workers
        self._executor: Optional[ProcessPoolExecutor] = None
        # Two locks on purpose: `_lock` guards executor lifecycle —
        # which holds it across a slow worker spawn — while the stats
        # counters live under their own `_stats_lock`, so a concurrent
        # `metrics()` read never blocks behind a spawn nor sees a torn
        # multi-counter snapshot.
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._in_flight = 0
        self._peak_in_flight = 0
        self._completed = 0
        self._failed = 0

    def _ensure_executor(self) -> ProcessPoolExecutor:
        # Lazy: constructing the service should not pay worker spawn
        # cost when no query ever reaches the process backend.
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=_pool_initializer,
                    initargs=(self.store_path,),
                )
            return self._executor

    @property
    def busy(self) -> int:
        """Tasks currently submitted and not yet finished."""
        with self._stats_lock:
            return self._in_flight

    def _track_submit(self, submit) -> "Future":
        with self._stats_lock:
            self._in_flight += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
        try:
            future = submit()
        except BaseException:
            with self._stats_lock:
                self._in_flight -= 1
            raise
        future.add_done_callback(self._task_done)
        return future

    def submit(
        self,
        shard_index: int,
        payload: Dict[str, Any],
        k: int,
        trace: Optional[Dict[str, Any]] = None,
    ) -> "Future":
        """Dispatch one shard scan; returns its future.

        With a ``trace`` context dict the result gains a trailing
        element of worker-recorded span dicts (see
        :func:`_scan_shard_task`).
        """
        executor = self._ensure_executor()
        return self._track_submit(
            lambda: executor.submit(
                _scan_shard_task, self.store_path, shard_index, payload, k, trace
            )
        )

    def submit_batch(
        self,
        shard_index: int,
        payloads: Sequence[Dict[str, Any]],
        ks: Sequence[int],
        approximate: Sequence[bool],
        trace: Optional[Dict[str, Any]] = None,
    ) -> "Future":
        """Dispatch one shard scan covering a whole micro-batch.

        The future resolves to one ``(ids, distances, pruned, refined,
        exact)`` tuple per payload, in payload order — the shard is
        read once for the whole batch.  With a ``trace`` context dict
        it resolves to ``(parts, spans)`` instead.
        """
        executor = self._ensure_executor()
        return self._track_submit(
            lambda: executor.submit(
                _scan_shard_batch_task,
                self.store_path,
                shard_index,
                list(payloads),
                list(ks),
                list(approximate),
                trace,
            )
        )

    def run(self, shard_index: int, payload: Dict[str, Any], k: int):
        """Blocking convenience: submit one shard scan and await it."""
        return self.submit(shard_index, payload, k).result()

    def _task_done(self, future: "Future") -> None:
        with self._stats_lock:
            self._in_flight -= 1
            if future.cancelled() or future.exception() is not None:
                self._failed += 1
            else:
                self._completed += 1

    def stats(self) -> Dict[str, int]:
        """``{workers, busy, peak_busy, tasks_completed, tasks_failed}``.

        One consistent snapshot: every counter is read under a single
        acquisition of the stats lock, and the lock is never held
        across executor spawn/shutdown, so readers can't observe torn
        values or stall behind pool lifecycle.
        """
        with self._stats_lock:
            return {
                "workers": self.n_workers,
                "busy": self._in_flight,
                "peak_busy": self._peak_in_flight,
                "tasks_completed": self._completed,
                "tasks_failed": self._failed,
            }

    def shutdown(self) -> None:
        """Terminate the worker processes (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ShardWorkerPool({self.store_path!r}, n_workers={self.n_workers}, "
            f"busy={self.busy})"
        )

