"""Multi-process shard scanning over a memory-mapped feature store.

The GIL caps the thread-sharded scan at roughly one core of NumPy per
request; this module crosses the process boundary without giving up
either zero-copy reads or byte-identical rankings:

* every worker process opens its *own* read-only
  :class:`~repro.store.FeatureStore` over the same file (the OS page
  cache shares the physical pages, so N workers cost one copy of the
  data);
* queries travel as small typed payloads — cluster centers, inverse
  matrices, weights — never as pickled query objects, so the compiled
  kernel memoized on the parent's query instance is not dragged
  through the pickle machinery; each worker compiles into its own
  process-wide kernel cache (compilation is a pure function of the
  cluster state, so every process builds the same evaluators);
* :func:`scan_shard_topk` is the *single* per-shard top-k
  implementation shared by the serial path, the thread pool and the
  process pool — there is no second scan codepath to drift — and the
  coordinator merges per-shard results in shard order under the
  ``(distance, id)`` tie-break, so the backend choice can never change
  a ranking, only its wall-clock cost.

Workers are spawn-safe: the pool uses the ``spawn`` start method
explicitly, so no fork-inherited locks, mmaps or NumPy thread pools
leak into children on any platform.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from ..core.kernels import ensure_compiled
from ..core.progressive import exact_top_k, progressive_topk
from ..datasets.matrix import assert_scan_ready
from ..store import FeatureStore

__all__ = ["ShardWorkerPool", "encode_query", "decode_query", "scan_shard_topk"]


def scan_shard_topk(query, shard: np.ndarray, offset: int, k: int):
    """Exact per-shard top-``k``: ``(global ids, distances, pruned, refined)``.

    Routed through the progressive filter-and-refine scan when it
    applies; the fallback computes every distance.  Either way the
    ids/distances returned are the shard's exact top-k under the
    ``(distance, id)`` order — this is the one scan kernel every
    backend (serial, threads, processes) runs.
    """
    k = min(k, shard.shape[0])
    progressive = progressive_topk(shard, query, k)
    if progressive is not None:
        return (
            progressive.indices + offset,
            progressive.distances,
            progressive.stats.pruned,
            progressive.stats.refined,
        )
    distances = query.distances(shard)
    top = exact_top_k(distances, k)
    return top + offset, distances[top], 0, shard.shape[0]


# ----------------------------------------------------------------------
# Query serialization (typed payloads, pickle only as a last resort)
# ----------------------------------------------------------------------


def encode_query(query) -> Dict[str, Any]:
    """A small, picklable payload reconstructing ``query`` in a worker.

    Known query types (the disjunctive aggregate and the baselines'
    power mean) are flattened to their defining arrays; anything else
    falls back to pickling the object itself.
    """
    from ..baselines.base import PowerMeanQuery
    from ..core.distance import DisjunctiveQuery

    if isinstance(query, DisjunctiveQuery):
        return {
            "kind": "disjunctive",
            "points": [
                (
                    np.asarray(point.center, dtype=float),
                    np.asarray(point.inverse, dtype=float),
                    float(point.weight),
                    None
                    if point.diagonal is None
                    else np.asarray(point.diagonal, dtype=float),
                )
                for point in query.points
            ],
        }
    if isinstance(query, PowerMeanQuery):
        return {
            "kind": "power_mean",
            "centers": np.asarray(query.centers, dtype=float),
            "inverses": tuple(
                np.asarray(inverse, dtype=float) for inverse in query.inverses
            ),
            "weights": np.asarray(query.weights, dtype=float),
            "alpha": float(query.alpha),
        }
    import pickle

    return {"kind": "pickle", "blob": pickle.dumps(query)}


def decode_query(payload: Dict[str, Any]):
    """Inverse of :func:`encode_query`."""
    kind = payload["kind"]
    if kind == "disjunctive":
        from ..core.distance import DisjunctiveQuery, QueryPoint

        return DisjunctiveQuery(
            [
                QueryPoint(center=center, inverse=inverse, weight=weight, diagonal=diagonal)
                for center, inverse, weight, diagonal in payload["points"]
            ]
        )
    if kind == "power_mean":
        from ..baselines.base import PowerMeanQuery

        return PowerMeanQuery(
            centers=payload["centers"],
            inverses=payload["inverses"],
            weights=payload["weights"],
            alpha=payload["alpha"],
        )
    if kind == "pickle":
        import pickle

        return pickle.loads(payload["blob"])
    raise ValueError(f"unknown query payload kind {kind!r}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process store handles, keyed by path.  Populated by the pool
#: initializer (and lazily on first use, should a task outlive it).
_WORKER_STORES: Dict[str, FeatureStore] = {}


def _worker_store(store_path: str) -> FeatureStore:
    store = _WORKER_STORES.get(store_path)
    if store is None:
        store = FeatureStore.open(store_path)
        _WORKER_STORES[store_path] = store
    return store


def _pool_initializer(store_path: str) -> None:
    """Open the store once per worker process, before any task runs."""
    _worker_store(store_path)


def _scan_shard_task(
    store_path: str, shard_index: int, payload: Dict[str, Any], k: int
):
    """One shard's top-k, computed inside a worker process.

    The shard is a zero-copy mmap view (asserted scan-ready: float32,
    C-contiguous — no silent conversion happens between the file and
    the kernels); the query is rebuilt from its payload and compiled
    into this process's kernel cache.  Exceptions — including
    :class:`~repro.store.StoreBlockCorrupt` — pickle back to the
    coordinator intact.
    """
    store = _worker_store(store_path)
    query = decode_query(payload)
    ensure_compiled(query)
    shard = assert_scan_ready(store.shard(shard_index), name=f"shard {shard_index}")
    offset = store.row_offsets[shard_index]
    ids, distances, pruned, refined = scan_shard_topk(query, shard, offset, k)
    return np.asarray(ids), np.asarray(distances), int(pruned), int(refined)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class ShardWorkerPool:
    """A spawn-safe process pool scanning one store's shards.

    Args:
        store_path: the feature-store file every worker mmaps.
        n_workers: worker process count.

    The pool tracks in-flight tasks (the ``repro_worker_pool_busy``
    gauge) and completion/failure totals; :meth:`stats` feeds the
    service metrics snapshot.
    """

    def __init__(self, store_path: Union[str, Path], n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {n_workers}")
        self.store_path = str(store_path)
        self.n_workers = n_workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._in_flight = 0
        self._peak_in_flight = 0
        self._completed = 0
        self._failed = 0

    def _ensure_executor(self) -> ProcessPoolExecutor:
        # Lazy: constructing the service should not pay worker spawn
        # cost when no query ever reaches the process backend.
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=_pool_initializer,
                    initargs=(self.store_path,),
                )
            return self._executor

    @property
    def busy(self) -> int:
        """Tasks currently submitted and not yet finished."""
        with self._lock:
            return self._in_flight

    def submit(self, shard_index: int, payload: Dict[str, Any], k: int) -> "Future":
        """Dispatch one shard scan; returns its future."""
        executor = self._ensure_executor()
        with self._lock:
            self._in_flight += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
        try:
            future = executor.submit(
                _scan_shard_task, self.store_path, shard_index, payload, k
            )
        except BaseException:
            with self._lock:
                self._in_flight -= 1
            raise
        future.add_done_callback(self._task_done)
        return future

    def run(self, shard_index: int, payload: Dict[str, Any], k: int):
        """Blocking convenience: submit one shard scan and await it."""
        return self.submit(shard_index, payload, k).result()

    def _task_done(self, future: "Future") -> None:
        with self._lock:
            self._in_flight -= 1
            if future.cancelled() or future.exception() is not None:
                self._failed += 1
            else:
                self._completed += 1

    def stats(self) -> Dict[str, int]:
        """``{workers, busy, peak_busy, tasks_completed, tasks_failed}``."""
        with self._lock:
            return {
                "workers": self.n_workers,
                "busy": self._in_flight,
                "peak_busy": self._peak_in_flight,
                "tasks_completed": self._completed,
                "tasks_failed": self._failed,
            }

    def shutdown(self) -> None:
        """Terminate the worker processes (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return (
            f"ShardWorkerPool({self.store_path!r}, n_workers={self.n_workers}, "
            f"busy={self.busy})"
        )

