"""Process-parallel shard scanning over a mmap'd feature store."""

from .workers import (
    ShardWorkerPool,
    decode_query,
    encode_query,
    scan_shard_topk,
    scan_shard_topk_batch,
    shard_coarse_level0,
)

__all__ = [
    "ShardWorkerPool",
    "encode_query",
    "decode_query",
    "scan_shard_topk",
    "scan_shard_topk_batch",
    "shard_coarse_level0",
]
