"""Process-parallel shard scanning over a mmap'd feature store."""

from .workers import ShardWorkerPool, decode_query, encode_query, scan_shard_topk

__all__ = ["ShardWorkerPool", "encode_query", "decode_query", "scan_shard_topk"]
