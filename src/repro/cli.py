"""Command-line interface for the Qcluster reproduction.

Subcommands:

* ``demo`` — a self-contained feedback session on a freshly generated
  collection, printing per-iteration quality (the quickstart, as a CLI).
* ``compare`` — Qcluster vs the baselines over a query batch.
* ``disjunctive`` — the Example 3 / Figure 5 scatter demonstration.
* ``service`` — drive N concurrent simulated users through the
  :class:`~repro.service.RetrievalService` and print throughput plus
  the operational metrics snapshot.
* ``serve`` — stand up the asyncio HTTP front-end
  (:class:`~repro.service.RetrievalServer`) over a generated
  collection, with cross-session query batching on by default;
  ``--self-test`` instead runs the closed-loop load generator against
  an ephemeral server and prints throughput.
* ``obs`` — run a traced feedback workload and dump the observability
  surface: rendered span trees of the last N rounds, the raw JSONL
  event log, or a Prometheus text-format exposition.
* ``chaos`` — replay a deterministic feedback workload twice, fault-free
  and under a seeded :class:`~repro.faults.FaultPlan`, and verify the
  resilience contract: every page served under faults is either
  byte-identical to its fault-free twin or explicitly marked degraded.
  ``--store`` runs both replays over a memory-mapped feature store so
  the ``store.*`` fault sites (torn block reads, CRC quarantine) are
  armed; ``--batching`` routes both replays through the batching
  executor so the ``batch.execute`` fault site is armed.
* ``store`` — build a memory-mapped feature store from a generated
  collection (``store build``), re-check every block CRC
  (``store verify``), or dump its header, geometry and block table
  (``store inspect``).
* ``figure`` — regenerate any of the paper's tables/figures by id
  (``fig5`` ... ``fig19``, ``table2``, ``table3``, ``headline``),
  optionally exporting CSV.
* ``bench`` — run the ANN tier's recall-vs-speedup sweep (the
  empirical contract behind ``serve --ann``) and print the per-config
  table; ``--small`` uses the CI scale.
* ``export-collection`` — write a procedural collection to disk as a
  PPM directory tree (one subdirectory per category), loadable back via
  :func:`repro.datasets.load_directory_collection`.

Run:  python -m repro.cli <subcommand> [options]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .baselines import Falcon, MindReader, QueryExpansion, QueryPointMovement
from .core.distance import DisjunctiveQuery, QueryPoint
from .datasets import generate_collection
from .datasets.uniform import ball_membership, uniform_cube
from .features import color_pipeline
from .retrieval import (
    FeatureDatabase,
    FeedbackSession,
    QclusterMethod,
    compare_methods,
    sample_query_indices,
)

_METHODS = {
    "qcluster": QclusterMethod,
    "qex": QueryExpansion,
    "qpm": QueryPointMovement,
    "falcon": Falcon,
    "mindreader": MindReader,
}


def _build_database(args) -> FeatureDatabase:
    collection = generate_collection(
        n_categories=args.categories,
        images_per_category=args.images_per_category,
        image_size=20,
        complex_fraction=args.complex_fraction,
        seed=args.seed,
    )
    features = color_pipeline().fit(collection.images)
    return FeatureDatabase(features, collection.labels)


def cmd_demo(args) -> int:
    """One feedback session with per-iteration quality output."""
    database = _build_database(args)
    method = QclusterMethod()
    session = FeedbackSession(database, method, k=args.k)
    result = session.run(args.query, n_iterations=args.iterations)
    print("iteration  precision  recall  clusters")
    for record in result.records:
        print(
            f"{record.iteration:^9}  {record.precision:^9.3f}  "
            f"{record.recall:^6.3f}  {method.n_clusters:^8}"
        )
    return 0


def cmd_compare(args) -> int:
    """Paired comparison of the selected methods."""
    database = _build_database(args)
    names = args.methods.split(",")
    unknown = [name for name in names if name not in _METHODS]
    if unknown:
        print(f"unknown methods: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(_METHODS)}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(args.seed)
    queries = sample_query_indices(database, args.queries, rng)
    results = compare_methods(
        database,
        {name: _METHODS[name] for name in names},
        queries,
        k=args.k,
        n_iterations=args.iterations,
    )
    print("recall per iteration")
    print("iter  " + "  ".join(f"{name:>10}" for name in names))
    for iteration in range(args.iterations + 1):
        cells = "  ".join(
            f"{results[name].mean_recall[iteration]:>10.3f}" for name in names
        )
        print(f"{iteration:^4}  {cells}")
    return 0


def cmd_disjunctive(args) -> int:
    """The Example 3 two-ball retrieval counts."""
    rng = np.random.default_rng(args.seed)
    points = uniform_cube(args.points, rng=rng)
    centers = [np.full(3, -1.0), np.full(3, 1.0)]
    query = DisjunctiveQuery(
        [QueryPoint(center=c, inverse=np.eye(3), weight=1.0) for c in centers]
    )
    truth = ball_membership(points, centers, radius=1.0)
    n_target = int(truth.sum())
    retrieved = np.argsort(query.distances(points))[:n_target]
    mask = np.zeros(args.points, dtype=bool)
    mask[retrieved] = True
    overlap = int((mask & truth).sum())
    print(f"points within 1.0 of either center: {n_target}")
    print(f"retrieved by the Equation-5 aggregate: {len(retrieved)}")
    print(f"agreement with the two-ball ground truth: {overlap / n_target:.1%}")
    return 0


def cmd_service(args) -> int:
    """N concurrent simulated users against one RetrievalService."""
    import threading
    import time

    from .retrieval import SimulatedUser
    from .service import RetrievalService

    if args.users < 1:
        print(f"--users must be at least 1, got {args.users}", file=sys.stderr)
        return 2
    database = _build_database(args)
    service = RetrievalService(
        database,
        k=args.k,
        capacity=args.capacity,
        cache_size=args.cache_size,
        soft_deadline_s=args.deadline,
        max_workers=args.workers,
    )
    rng = np.random.default_rng(args.seed)
    query_ids = rng.integers(0, database.size, size=args.users)
    errors: List[BaseException] = []

    def drive(query_id: int) -> None:
        try:
            session_id = service.create_session(query_id)
            user = SimulatedUser(database, database.category_of(query_id))
            page = service.query(session_id)
            for _ in range(args.iterations):
                page = service.query(session_id)  # repeated page fetch: cached
                judgment = user.judge(page.ids)
                page = service.feedback(
                    session_id, judgment.relevant_indices, judgment.scores
                )
            service.close(session_id)
        except BaseException as error:  # surfaced after join
            errors.append(error)

    start = time.perf_counter()
    if args.users > 1:
        threads = [
            threading.Thread(target=drive, args=(int(query_id),))
            for query_id in query_ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    else:
        drive(int(query_ids[0]))
    elapsed = time.perf_counter() - start
    snapshot = service.metrics_snapshot()
    service.shutdown()
    if errors:
        print(f"{len(errors)} session(s) failed: {errors[0]!r}", file=sys.stderr)
        return 1

    print(
        f"served {args.users} sessions x {args.iterations} feedback rounds "
        f"in {elapsed:.2f}s ({args.users / elapsed:.2f} sessions/sec)"
    )
    print()
    print(f"{'counter':<28} value")
    for name, value in sorted(snapshot["counters"].items()):
        print(f"{name:<28} {value}")
    print(f"{'cache_hit_rate':<28} {snapshot['cache_hit_rate']:.3f}")
    print(f"{'degradations':<28} {snapshot['degradations']}")
    print()
    print(f"{'stage':<16} {'count':>6} {'p50_ms':>8} {'p95_ms':>8} {'max_ms':>8}")
    for stage, summary in sorted(snapshot["latency"].items()):
        print(
            f"{stage:<16} {summary['count']:>6} {summary['p50'] * 1e3:>8.2f} "
            f"{summary['p95'] * 1e3:>8.2f} {summary['max'] * 1e3:>8.2f}"
        )
    return 0


def cmd_serve(args) -> int:
    """Serve the retrieval API over HTTP, batching compatible queries."""
    from .service import BatchingConfig, RetrievalServer, RetrievalService

    database = _build_database(args)
    batching = (
        False
        if args.no_batching
        else BatchingConfig(
            max_batch=args.batch_size,
            max_wait_s=args.batch_wait_ms / 1e3,
            max_pending=args.max_pending,
            shed_threshold=args.shed_threshold,
        )
    )
    service = RetrievalService(
        database,
        k=args.k,
        use_index=args.use_index,
        capacity=args.capacity,
        cache_size=args.cache_size,
        batching=batching,
        ann=args.ann,
    )
    server = RetrievalServer(
        service, host=args.host, port=args.port, max_concurrent=args.max_concurrent
    )
    try:
        if args.self_test:
            from .service import closed_loop_load

            host, port = server.start_in_background()
            print(f"self-test server on http://{host}:{port}")
            report = closed_loop_load(
                host,
                port,
                sessions=args.loadgen_sessions,
                rounds=args.loadgen_rounds,
                k=min(args.k, 10),
                tenants=max(1, args.loadgen_sessions // 8),
            )
            server.stop_background()
            print(
                f"closed loop: {args.loadgen_sessions} sessions x "
                f"{args.loadgen_rounds} rounds -> {report['queries']} queries "
                f"in {report['wall_s']:.2f}s"
            )
            print(
                f"qps={report['qps']:.1f} p50={report['p50_s'] * 1e3:.2f}ms "
                f"p95={report['p95_s'] * 1e3:.2f}ms "
                f"errors={len(report['errors'])}"
            )
            stats = service.batching.stats() if service.batching else {}
            if stats:
                print(
                    f"batches={stats['batches']} "
                    f"mean_batch_size={stats['mean_batch_size']:.2f} "
                    f"max_batch_size={stats['max_batch_size']}"
                )
            return 1 if report["errors"] else 0
        print(f"serving on http://{args.host}:{args.port} (Ctrl-C to stop)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        return 0
    finally:
        service.shutdown()


def cmd_store(args) -> int:
    """Build / verify / inspect a memory-mapped feature store."""
    import json

    from .store import FeatureStore, StoreFormatError, build_store

    if args.store_command == "build":
        database = _build_database(args)
        try:
            build_store(
                database,
                args.output,
                n_shards=args.shards,
                coarse_dims=args.coarse_dims,
            )
        except ValueError as error:
            print(f"cannot build store: {error}", file=sys.stderr)
            return 2
        store = FeatureStore.open(args.output)
        print(
            f"wrote {args.output}: n={store.n} p={store.dimension} "
            f"shards={store.n_shards} coarse_dims={store.coarse_dims} "
            f"epoch={store.epoch}"
        )
        print(f"fingerprint: {store.fingerprint}")
        return 0
    try:
        store = FeatureStore.open(args.path)
    except (StoreFormatError, OSError) as error:
        print(f"invalid store: {error}", file=sys.stderr)
        return 1
    if args.store_command == "verify":
        report = store.verify()
        for name in sorted(report):
            print(f"{name:<24} {report[name]}")
        bad = sum(1 for reason in report.values() if reason != "ok")
        if bad:
            print(f"{bad} corrupt block(s)", file=sys.stderr)
            return 1
        print(f"all {len(report)} blocks verified ({store.fingerprint})")
        return 0
    print(json.dumps(store.describe(), indent=2))
    return 0


def cmd_chaos(args) -> int:
    """Deterministic fault-plan replay with the byte-identical-or-degraded check."""
    import tempfile
    from contextlib import nullcontext
    from pathlib import Path

    from .faults import FaultPlan, activate_faults
    from .faults.plans import BUILTIN_PLAN_NAMES, builtin_plan
    from .index import SpillTreeConfig
    from .retrieval import SimulatedUser
    from .service import RetrievalService

    # Importing the store package registers the ``store.*`` fault sites
    # so plans targeting them validate even without ``--store``.
    from .store import FeatureStore, build_store

    if args.plan_file:
        plan = FaultPlan.from_json(Path(args.plan_file).read_text())
    elif args.plan in BUILTIN_PLAN_NAMES:
        plan = builtin_plan(args.plan, seed=args.fault_seed)
    else:
        print(f"unknown plan: {args.plan}", file=sys.stderr)
        print(f"available: {', '.join(BUILTIN_PLAN_NAMES)}", file=sys.stderr)
        return 2
    if args.save_plan:
        Path(args.save_plan).write_text(plan.to_json())
        print(f"plan written to {args.save_plan}")

    # Tail-sampled tracing of the faulted replay: keep_probability=0 keeps
    # ONLY traces flagged interesting (fault_injected / retry / degraded
    # quality / errors), so the exported JSONL is exactly the incident set.
    tracer = None
    if args.trace_jsonl:
        from .obs import TailSamplingPolicy, Tracer

        tracer = Tracer(
            max_traces=256,
            tail_sampling=TailSamplingPolicy(keep_probability=0.0),
        )

    database = _build_database(args)
    rng = np.random.default_rng(args.seed)
    query_ids = [int(q) for q in rng.integers(0, database.size, size=args.sessions)]

    store_dir = tempfile.TemporaryDirectory() if args.store else None
    store_path = None
    if store_dir is not None:
        # Both replays serve the same store file, so the fault-free
        # baseline and the faulted run rank identical float32 bytes.
        store_path = Path(store_dir.name) / "chaos.qcs"
        build_store(database, store_path, n_shards=args.shards)

    def run_workload(fault_plan, trace_with=None):
        """One sequential round-robin workload; returns (records, stats)."""
        records = []
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            service = RetrievalService(
                FeatureStore.open(store_path) if store_path is not None else database,
                k=args.k,
                use_index=args.use_index,
                n_shards=args.shards,
                capacity=args.capacity,
                checkpoint_dir=checkpoint_dir,
                cache_size=args.cache_size,
                batching=args.batching,
                # Chaos collections are small, so force real splits: a
                # single-leaf tree would make every descent one node and
                # starve the index.descend site.
                ann=SpillTreeConfig(leaf_capacity=64, max_leaves=4)
                if args.ann
                else None,
                tracer=trace_with,
            )
            context = (
                activate_faults(fault_plan)
                if fault_plan is not None
                else nullcontext(None)
            )
            try:
                with context as active:
                    session_ids = [
                        service.create_session(q, session_id=f"chaos-{i}")
                        for i, q in enumerate(query_ids)
                    ]
                    users = [
                        SimulatedUser(database, database.category_of(q))
                        for q in query_ids
                    ]
                    last_pages = {}
                    # Round-robin across sessions so a small store
                    # capacity forces checkpoint evict/restore cycles.
                    for round_index in range(args.iterations + 1):
                        for index, session_id in enumerate(session_ids):
                            record = {"key": (index, round_index)}
                            try:
                                if round_index == 0 or index not in last_pages:
                                    page = service.query(
                                        session_id, approximate=args.ann
                                    )
                                else:
                                    judgment = users[index].judge(
                                        last_pages[index].ids
                                    )
                                    page = service.feedback(
                                        session_id,
                                        judgment.relevant_indices,
                                        judgment.scores,
                                        approximate=args.ann,
                                    )
                            except Exception as error:
                                record["error"] = repr(error)
                            else:
                                last_pages[index] = page
                                record["ids"] = page.ids.tobytes()
                                record["distances"] = page.distances.tobytes()
                                record["quality"] = page.quality.level
                                record["reasons"] = page.quality.reasons
                            records.append(record)
                    fire_stats = active.stats() if active is not None else None
            finally:
                snapshot = service.metrics_snapshot()
                service.shutdown()
        return records, fire_stats, snapshot

    try:
        baseline, _, _ = run_workload(None)
        faulted, fire_stats, snapshot = run_workload(plan, trace_with=tracer)
    finally:
        if store_dir is not None:
            store_dir.cleanup()

    baseline_errors = sum(1 for record in baseline if "error" in record)
    if baseline_errors:
        print(
            f"{baseline_errors} step(s) failed in the fault-free baseline",
            file=sys.stderr,
        )
        return 1

    by_key = {record["key"]: record for record in baseline}
    violations = []
    exact_pages = approximate_pages = fallback_pages = 0
    degraded_pages = errored = excluded = 0
    diverged = set()
    for record in faulted:
        session_index = record["key"][0]
        if "error" in record:
            # The caller saw the exception, so nothing was silently
            # wrong — but the session's feedback trajectory now differs
            # from the baseline's, so its later pages are incomparable.
            errored += 1
            diverged.add(session_index)
            continue
        if session_index in diverged:
            excluded += 1
            continue
        reasons = record.get("reasons", ())
        if record["quality"] == "exact":
            exact_pages += 1
            comparable = True
        elif record["quality"] == "approximate" and "ann_fallback" not in reasons:
            # Defeatist descent is deterministic, so a healthy ANN page
            # must match the fault-free twin's ANN page byte for byte.
            approximate_pages += 1
            comparable = True
        elif "ann_fallback" in reasons:
            # The tier failed mid-descent and the exact scan rescued the
            # request — announced on the page, but its content differs
            # from the twin's ANN page, so the session's feedback
            # trajectory diverges from here on.
            fallback_pages += 1
            diverged.add(session_index)
            comparable = False
        else:
            degraded_pages += 1
            comparable = False
        if comparable:
            twin = by_key[record["key"]]
            if (
                record["ids"] != twin["ids"]
                or record["distances"] != twin["distances"]
            ):
                violations.append(record["key"])

    counters = snapshot["counters"]
    print(f"plan: {plan.name or '<unnamed>'} (seed {plan.seed}, {len(plan.specs)} specs)")
    print(f"workload: {args.sessions} sessions x {args.iterations} rounds")
    print()
    print("injected faults by site:")
    for site, kinds in fire_stats["by_site"].items():
        detail = ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
        print(f"  {site:<22} {detail}")
    if not fire_stats["by_site"]:
        print("  (none fired)")
    print()
    print("recovery:")
    for name in (
        "shard_retries",
        "shard_failures",
        "hedges",
        "compile_retries",
        "restore_retries",
        "checkpoint_save_errors",
        "checkpoints_corrupt",
        "sessions_rebuilt",
        "cache_errors",
        "ann_scans",
        "ann_fallbacks",
        "results_exact",
        "results_approximate",
        "results_degraded",
    ):
        if counters.get(name):
            print(f"  {name:<24} {counters[name]}")
    print(f"  {'cache_corruptions':<24} {snapshot['cache']['corruptions']}")
    print()
    print(
        f"pages: {exact_pages} exact + {approximate_pages} approximate "
        f"(byte-checked), {fallback_pages} ann-fallback, "
        f"{degraded_pages} degraded, {errored} errored, "
        f"{excluded} excluded after divergence"
    )
    if tracer is not None:
        from .obs import trace_to_jsonl_lines

        traces = tracer.traces()
        lines = [line for trace in traces for line in trace_to_jsonl_lines(trace)]
        Path(args.trace_jsonl).write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )
        tail = tracer.aggregates().get("tail", {})
        print(
            f"tail sampling: {len(traces)} trace(s) retained "
            f"({tail.get('kept_interesting', 0)} interesting, "
            f"{tail.get('kept_slow', 0)} slow, {tail.get('dropped', 0)} dropped) "
            f"-> {args.trace_jsonl}"
        )
        if (degraded_pages or fallback_pages or errored) and not traces:
            print(
                "VIOLATION: degraded/errored pages occurred but tail sampling "
                "retained no trace",
                file=sys.stderr,
            )
            return 1
    if violations:
        print(
            f"VIOLATION: {len(violations)} comparable page(s) differ from the "
            f"fault-free run: {violations[:10]}",
            file=sys.stderr,
        )
        return 1
    print(
        "resilience contract holds: every exact page — and every healthy "
        "approximate page — is byte-identical"
    )
    return 0


def cmd_obs(args) -> int:
    """Traced feedback workload, dumped as span trees / JSONL / Prometheus."""
    from .obs import Tracer, render_span_tree, trace_to_jsonl_lines
    from .retrieval import SimulatedUser
    from .service import RetrievalService

    database = _build_database(args)
    tracer = Tracer(max_traces=args.max_traces, sample_every=args.sample_every)
    service = RetrievalService(database, k=args.k, tracer=tracer)
    rng = np.random.default_rng(args.seed)
    try:
        for query_id in rng.integers(0, database.size, size=args.sessions):
            session_id = service.create_session(int(query_id))
            user = SimulatedUser(database, database.category_of(int(query_id)))
            page = service.query(session_id)
            for _ in range(args.iterations):
                judgment = user.judge(page.ids)
                page = service.feedback(
                    session_id, judgment.relevant_indices, judgment.scores
                )
            service.close(session_id)
        traces = tracer.traces(last=args.last)
        if args.format == "prometheus":
            output = service.prometheus_metrics()
        elif args.format == "slo":
            output = _render_slo(service.slo.snapshot())
        elif args.format == "jsonl":
            output = "\n".join(
                line for trace in traces for line in trace_to_jsonl_lines(trace)
            )
        else:
            output = "\n\n".join(render_span_tree(trace) for trace in traces)
    finally:
        service.shutdown()
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(output + "\n", encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(output)
    return 0


def _render_slo(snapshot) -> str:
    """Human-readable SLO report: latency rows, then burn rates."""
    lines = ["latency histograms (p50 / p95 / p99, count):"]
    for entry in snapshot["histograms"]:
        cumulative = entry["counts"]
        buckets = entry["buckets"]
        count = entry["count"]

        def quantile(q):
            if count == 0:
                return 0.0
            rank = q * count
            for bound, seen in zip(buckets, cumulative):
                if seen >= rank:
                    return bound
            return buckets[-1]

        label = f"{entry['route']}/{entry['tenant']}/{entry['quality']}"
        lines.append(
            f"  {label:<32} {quantile(0.5) * 1000:8.2f}ms "
            f"{quantile(0.95) * 1000:8.2f}ms {quantile(0.99) * 1000:8.2f}ms "
            f"n={count}"
        )
    if len(lines) == 1:
        lines.append("  (no requests observed)")
    lines.append("")
    lines.append("error-budget burn rates (per objective, per window):")
    for objective in snapshot["objectives"]:
        target = objective["target"]
        lines.append(f"  {objective['name']} (target {target:g}):")
        for window, stats in objective["windows"].items():
            lines.append(
                f"    {window:<8} burn={stats['burn_rate']:.3f} "
                f"bad={stats['bad']}/{stats['total']}"
            )
    return "\n".join(lines)


def _figure_tables(figure_id: str, scale: str):
    """Produce the ResultTables for one figure/table id."""
    from .experiments import (
        ProtocolConfig,
        ProtocolData,
        classification,
        fig05,
        fig06,
        fig07,
        quality,
        t2_accuracy,
    )

    if figure_id == "fig5":
        return [fig05.run().as_table()]
    if figure_id == "fig6":
        return [fig06.run().as_table()]

    if figure_id in ("fig14", "fig15", "fig16", "fig17"):
        shape, scheme = {
            "fig14": ("spherical", "inverse"),
            "fig15": ("elliptical", "inverse"),
            "fig16": ("spherical", "diagonal"),
            "fig17": ("elliptical", "diagonal"),
        }[figure_id]
        return [classification.sweep(shape, scheme).as_table()]
    if figure_id in ("table2", "table3"):
        same_mean = figure_id == "table2"
        return [
            t2_accuracy.run_table(same_mean, scheme).as_table()
            for scheme in ("inverse", "diagonal")
        ]
    if figure_id in ("fig18", "fig19"):
        scheme = "inverse" if figure_id == "fig18" else "diagonal"
        return [t2_accuracy.qq_data(scheme).as_table()]

    # The remaining figures need the full retrieval protocol.
    config = ProtocolConfig() if scale == "default" else ProtocolConfig(
        n_categories=6, images_per_category=40, n_queries=8
    )
    data = ProtocolData.build(config)
    if figure_id == "fig7":
        return [fig07.run(data.color_database).as_table()]
    if figure_id in ("fig8", "fig9"):
        feature = "color" if figure_id == "fig8" else "texture"
        return [quality.pr_curves(data, feature).as_table()]
    if figure_id in ("fig10", "fig11", "fig12", "fig13"):
        feature = "color" if figure_id in ("fig10", "fig12") else "texture"
        tables = quality.comparison(data, feature).as_tables()
        wanted = "recall" if figure_id in ("fig10", "fig11") else "precision"
        return [table for table in tables if wanted in table.title]
    if figure_id == "headline":
        return [quality.headline(data).as_table()]
    raise KeyError(figure_id)


FIGURE_IDS = (
    "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
    "table2", "table3", "headline",
)


def cmd_figure(args) -> int:
    """Regenerate one of the paper's tables/figures."""
    if args.id not in FIGURE_IDS:
        print(f"unknown figure id {args.id!r}", file=sys.stderr)
        print(f"available: {', '.join(FIGURE_IDS)}", file=sys.stderr)
        return 2
    tables = _figure_tables(args.id, args.scale)
    for position, table in enumerate(tables):
        table.print()
        if args.csv:
            suffix = f"_{position}" if len(tables) > 1 else ""
            path = f"{args.csv}/{args.id}{suffix}.csv"
            table.to_csv(path)
            print(f"wrote {path}")
    return 0


def cmd_bench(args) -> int:
    """Run the ANN recall-vs-speedup sweep and print the contract table."""
    import json

    from .experiments.ann import DEFAULT_RULE, DEFAULT_SPILL, run_sweep, sweep_config

    config = sweep_config(small=args.small)
    print(
        f"sweeping {len(config.rules)} rule(s) x {len(config.spills)} spill "
        f"fraction(s) over {config.n} rows ({config.dimensions}-d, "
        f"scheme={config.scheme!r}) ..."
    )
    payload = run_sweep(config)
    print(
        f"\n{'config':>16s}  {'recall':>6s}  {'min':>5s}  {'calib':>6s}  "
        f"{'candfrac':>8s}  {'speedup':>7s}"
    )
    for entry in payload["configs"]:
        marker = " <- default" if entry["name"] == payload["default"] else ""
        calibrated = entry["calibrated_recall"]
        print(
            f"{entry['name']:>16s}  {entry['recall_mean']:>6.3f}  "
            f"{entry['recall_min']:>5.2f}  "
            f"{calibrated if calibrated is None else format(calibrated, '6.3f')}  "
            f"{entry['candidate_fraction']:>8.3f}  "
            f"{entry['speedup']:>6.2f}x{marker}"
        )
    default = next(
        entry for entry in payload["configs"] if entry["name"] == payload["default"]
    )
    print(
        f"\noperating point ({DEFAULT_RULE}, spill={DEFAULT_SPILL:g}): "
        f"recall {default['recall_mean']:.3f} at {default['speedup']:.2f}x "
        f"over the exact scan; contract floor is 0.9 "
        f"(benchmarks/baselines/ann.json)"
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def cmd_export_collection(args) -> int:
    """Write a generated collection as a PPM directory tree."""
    from pathlib import Path

    from .datasets import generate_collection
    from .datasets.ppm import save_ppm

    collection = generate_collection(
        n_categories=args.categories,
        images_per_category=args.images_per_category,
        image_size=args.image_size,
        complex_fraction=args.complex_fraction,
        seed=args.seed,
    )
    root = Path(args.output)
    counters = {}
    for image, label in zip(collection.images, collection.labels):
        index = counters.get(int(label), 0)
        counters[int(label)] = index + 1
        save_ppm(image, root / f"category_{label:03d}" / f"{index:04d}.ppm")
    print(
        f"wrote {len(collection)} images across {args.categories} categories to {root}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Qcluster (SIGMOD 2003) reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_collection_arguments(sub):
        sub.add_argument("--categories", type=int, default=12)
        sub.add_argument("--images-per-category", type=int, default=100)
        sub.add_argument("--complex-fraction", type=float, default=0.4)
        sub.add_argument("--seed", type=int, default=42)
        sub.add_argument("--k", type=int, default=100)
        sub.add_argument("--iterations", type=int, default=5)

    demo = subparsers.add_parser("demo", help="run one feedback session")
    add_collection_arguments(demo)
    demo.add_argument("--query", type=int, default=0, help="query image index")
    demo.set_defaults(func=cmd_demo)

    compare = subparsers.add_parser("compare", help="compare feedback methods")
    add_collection_arguments(compare)
    compare.add_argument(
        "--methods", default="qcluster,qex,qpm", help="comma-separated method names"
    )
    compare.add_argument("--queries", type=int, default=10)
    compare.set_defaults(func=cmd_compare)

    service = subparsers.add_parser(
        "service", help="concurrent multi-session service demo with metrics"
    )
    add_collection_arguments(service)
    service.add_argument("--users", type=int, default=8, help="concurrent sessions")
    service.add_argument("--capacity", type=int, default=256, help="max live sessions")
    service.add_argument("--cache-size", type=int, default=128, help="result-cache pages")
    service.add_argument(
        "--deadline", type=float, default=None, help="per-query soft deadline (s)"
    )
    service.add_argument(
        "--workers", type=int, default=None, help="ranking thread-pool size"
    )
    service.set_defaults(func=cmd_service)

    serve = subparsers.add_parser(
        "serve", help="asyncio HTTP front-end with cross-session query batching"
    )
    add_collection_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=64, help="admission-control limit"
    )
    serve.add_argument("--capacity", type=int, default=256, help="max live sessions")
    serve.add_argument("--cache-size", type=int, default=128, help="result-cache pages")
    serve.add_argument(
        "--batch-size", type=int, default=32, help="micro-batch size ceiling"
    )
    serve.add_argument(
        "--batch-wait-ms", type=float, default=2.0, help="batch collection window"
    )
    serve.add_argument(
        "--max-pending", type=int, default=256, help="backpressure queue bound"
    )
    serve.add_argument(
        "--shed-threshold",
        type=int,
        default=None,
        help="queue depth above which queries degrade to approximate",
    )
    serve.add_argument(
        "--no-batching",
        action="store_true",
        help="serve each query through the unbatched thread-pool path",
    )
    serve.add_argument(
        "--ann",
        action="store_true",
        help="build the spill-tree approximate tier: clients opt in per "
        "request (?approximate=1), and load-shed batching traffic is "
        "served from it instead of waiting out the queue",
    )
    serve.add_argument(
        "--use-index",
        action="store_true",
        help="serve through the HybridTree (bypasses the batching executor; "
        "default: exact sharded scan)",
    )
    serve.add_argument(
        "--self-test",
        action="store_true",
        help="run the closed-loop load generator against an ephemeral "
        "server, print throughput, and exit",
    )
    serve.add_argument(
        "--loadgen-sessions", type=int, default=16, help="self-test sessions"
    )
    serve.add_argument(
        "--loadgen-rounds", type=int, default=3, help="self-test feedback rounds"
    )
    serve.set_defaults(func=cmd_serve)

    obs = subparsers.add_parser(
        "obs", help="trace a feedback workload and dump spans/events/metrics"
    )
    add_collection_arguments(obs)
    obs.add_argument("--sessions", type=int, default=2, help="sessions to drive")
    obs.add_argument(
        "--format",
        choices=("tree", "jsonl", "prometheus", "slo"),
        default="tree",
        help="tree = rendered span trees, jsonl = raw event log, "
        "prometheus = text-format metrics exposition, "
        "slo = latency quantiles and error-budget burn rates",
    )
    obs.add_argument(
        "--last", type=int, default=None, help="only the last N traces"
    )
    obs.add_argument(
        "--max-traces", type=int, default=64, help="trace ring-buffer size"
    )
    obs.add_argument(
        "--sample-every", type=int, default=1, help="trace every N-th request"
    )
    obs.add_argument("--output", help="write to this file instead of stdout")
    obs.set_defaults(func=cmd_obs)

    chaos = subparsers.add_parser(
        "chaos",
        help="replay a workload under a seeded fault plan and check the "
        "byte-identical-or-degraded contract",
    )
    add_collection_arguments(chaos)
    chaos.add_argument(
        "--plan",
        default="worker-crash",
        help="builtin plan name (worker-crash, slow-shard, corrupt-checkpoint, "
        "torn-block, batch-abort, ann-descend)",
    )
    chaos.add_argument(
        "--plan-file", default=None, help="load the fault plan from a JSON file"
    )
    chaos.add_argument(
        "--save-plan", default=None, help="write the resolved plan JSON here"
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=0, help="seed for the fault plan's draws"
    )
    chaos.add_argument("--sessions", type=int, default=4, help="sessions to drive")
    chaos.add_argument(
        "--capacity",
        type=int,
        default=2,
        help="live-session capacity (small values force checkpoint cycles)",
    )
    chaos.add_argument("--cache-size", type=int, default=32, help="result-cache pages")
    chaos.add_argument("--shards", type=int, default=4, help="scan shards")
    chaos.add_argument(
        "--use-index",
        action="store_true",
        help="serve through the HybridTree (default: exact sharded scan)",
    )
    chaos.add_argument(
        "--store",
        action="store_true",
        help="serve both replays from a memory-mapped feature store, arming "
        "the store.* fault sites",
    )
    chaos.add_argument(
        "--batching",
        action="store_true",
        help="route both replays through the batching executor, arming the "
        "batch.execute fault site",
    )
    chaos.add_argument(
        "--ann",
        action="store_true",
        help="serve both replays from the spill-tree ANN tier (approximate "
        "pages with estimated recall), arming the index.descend fault site",
    )
    chaos.add_argument(
        "--trace-jsonl",
        default=None,
        help="trace the faulted replay with tail sampling (keep only "
        "faulted/degraded/slow traces) and write them to this JSONL file; "
        "fails if degraded pages occurred but no trace was retained",
    )
    chaos.set_defaults(func=cmd_chaos)

    store = subparsers.add_parser(
        "store", help="build / verify / inspect a memory-mapped feature store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_build = store_sub.add_parser(
        "build", help="ingest a generated collection into a store file"
    )
    add_collection_arguments(store_build)
    store_build.add_argument("--output", required=True, help="store file to write")
    store_build.add_argument(
        "--shards", type=int, default=None, help="shard count (default: sized from n)"
    )
    store_build.add_argument(
        "--coarse-dims",
        type=int,
        default=0,
        help="PCA-prefix companion block width (0 = none)",
    )
    store_build.set_defaults(func=cmd_store)
    store_verify = store_sub.add_parser("verify", help="re-check every block CRC")
    store_verify.add_argument("path", help="store file")
    store_verify.set_defaults(func=cmd_store)
    store_inspect = store_sub.add_parser(
        "inspect", help="dump the header, geometry and block table as JSON"
    )
    store_inspect.add_argument("path", help="store file")
    store_inspect.set_defaults(func=cmd_store)

    disjunctive = subparsers.add_parser(
        "disjunctive", help="the Example 3 / Figure 5 demo"
    )
    disjunctive.add_argument("--points", type=int, default=10_000)
    disjunctive.add_argument("--seed", type=int, default=42)
    disjunctive.set_defaults(func=cmd_disjunctive)

    figure = subparsers.add_parser(
        "figure", help="regenerate a paper table/figure by id"
    )
    figure.add_argument("id", help=f"one of: {', '.join(FIGURE_IDS)}")
    figure.add_argument(
        "--scale",
        choices=("default", "small"),
        default="default",
        help="protocol scale for the retrieval figures (small = quick look)",
    )
    figure.add_argument("--csv", help="directory to export CSV into")
    figure.set_defaults(func=cmd_figure)

    bench = subparsers.add_parser(
        "bench", help="run the ANN recall-vs-speedup sweep"
    )
    bench.add_argument(
        "--small",
        action="store_true",
        help="CI scale (~2.4k rows) instead of the full 40k-row workload",
    )
    bench.add_argument("--out", help="write the sweep payload as JSON here")
    bench.set_defaults(func=cmd_bench)

    export = subparsers.add_parser(
        "export-collection", help="write a generated collection as PPM files"
    )
    export.add_argument("output", help="target directory")
    export.add_argument("--categories", type=int, default=8)
    export.add_argument("--images-per-category", type=int, default=20)
    export.add_argument("--image-size", type=int, default=24)
    export.add_argument("--complex-fraction", type=float, default=0.3)
    export.add_argument("--seed", type=int, default=0)
    export.set_defaults(func=cmd_export_collection)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
