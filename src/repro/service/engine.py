"""`RetrievalService` — the concurrent multi-session facade.

One service object fronts one indexed collection and serves many
relevance-feedback sessions at once:

* ``create_session`` / ``query`` / ``feedback`` / ``close`` mirror the
  paper's Figure 2 interaction, per session id;
* per-session access is serialized by the session's own lock while
  distinct sessions run fully in parallel (the store-level lock is held
  only for map lookups);
* ranking executes across database shards on a shared
  :class:`~concurrent.futures.ThreadPoolExecutor` — the quadratic-form
  hot path is NumPy ``matmul``/``einsum`` which releases the GIL, so
  shards genuinely overlap;
* repeated page fetches within an iteration are served by the
  content-addressed :class:`~repro.service.cache.ResultCache`;
* index failures and soft-deadline misses degrade gracefully to the
  exact sharded scan (see :mod:`repro.service.degrade`);
* everything is observable through :meth:`metrics_snapshot`.

Results are bit-identical whether a session is served serially or
interleaved with others, through the index or the fallback scan, live
or restored from an eviction checkpoint — concurrency and degradation
change cost, never rankings.
"""

from __future__ import annotations

import contextvars
import os
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..core.kernels import default_kernel_cache, ensure_compiled
from ..core.progressive import exact_top_k, progressive_topk
from ..index.hybridtree import HybridTree
from ..index.linear import page_capacity_for
from ..index.multipoint import MultipointSearcher
from ..obs import NULL_TRACER, activate, add_event, prometheus_text
from ..retrieval.database import FeatureDatabase
from ..retrieval.methods import FeedbackMethod, QclusterMethod, QueryLike
from ..system import ResultPage
from .cache import ResultCache, fingerprint_query
from .degrade import DegradationPolicy, SessionGuard
from .metrics import ServiceMetrics
from .sessions import ManagedSession, SessionNotFound, SessionStore

__all__ = ["RetrievalService"]

#: Below this many rows per shard, thread fan-out costs more than the
#: NumPy kernel it parallelizes.
_MIN_SHARD_ROWS = 1024


class RetrievalService:
    """Serve many concurrent feedback sessions over one collection.

    Args:
        database: a :class:`FeatureDatabase` or a raw ``(n, p)`` feature
            matrix.
        method_factory: feedback strategy per session (default
            Qcluster; only Qcluster-backed sessions are checkpointable).
        k: default result-page size.
        use_index: serve queries through the :class:`HybridTree` with
            per-session node caches; ``False`` always uses the exact
            sharded scan.
        n_shards: shards for the parallel scan path; default sizes
            shards to at least ``_MIN_SHARD_ROWS`` rows and at most the
            worker count.
        max_workers: threads in the shared ranking pool (default: CPU
            count, capped at 8).
        capacity: maximum in-memory sessions (LRU-evicted beyond).
        ttl_seconds: idle session lifetime before eviction.
        checkpoint_dir: where eviction checkpoints live; enables
            sessions to survive process restarts.
        cache_size: result-cache capacity in pages (0 disables).
        soft_deadline_s: per-query latency budget for the index path.
        deadline_trip: consecutive deadline misses before a session is
            pinned to the fallback scan.
        metrics: share an external :class:`ServiceMetrics` if desired.
        tracer: a :class:`~repro.obs.Tracer` recording per-request span
            trees (classify/merge/compile/scan/refine stages with
            algorithmic events); default is the no-op
            :data:`~repro.obs.NULL_TRACER`, whose overhead is
            negligible (see ``benchmarks/test_obs_overhead.py``).
    """

    def __init__(
        self,
        database: Union[FeatureDatabase, np.ndarray],
        *,
        method_factory: Callable[[], FeedbackMethod] = QclusterMethod,
        k: int = 20,
        use_index: bool = True,
        n_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        capacity: int = 256,
        ttl_seconds: Optional[float] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        cache_size: int = 128,
        soft_deadline_s: Optional[float] = None,
        deadline_trip: int = 1,
        metrics: Optional[ServiceMetrics] = None,
        tracer=None,
    ) -> None:
        if isinstance(database, FeatureDatabase):
            vectors = database.vectors
        else:
            vectors = np.atleast_2d(np.asarray(database, dtype=float))
        # Stored once, C-contiguous float64: shards are then contiguous
        # row views and the distance kernels never re-convert or copy
        # the database on the hot path.
        vectors = np.ascontiguousarray(vectors, dtype=float)
        if vectors.shape[0] == 0:
            raise ValueError("cannot serve an empty database")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.vectors = vectors
        self.k = min(k, vectors.shape[0])
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.policy = DegradationPolicy(
            soft_deadline_s=soft_deadline_s, trip_after=deadline_trip
        )
        self.store = SessionStore(
            capacity=capacity,
            ttl_seconds=ttl_seconds,
            checkpoint_dir=checkpoint_dir,
            method_factory=method_factory,
            metrics=self.metrics,
        )
        self.cache = ResultCache(cache_size)
        self._method_factory = method_factory
        self._tree = HybridTree(vectors) if use_index else None
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if n_shards is None:
            n_shards = max(1, min(max_workers, vectors.shape[0] // _MIN_SHARD_ROWS))
        if n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {n_shards}")
        bounds = np.linspace(0, vectors.shape[0], n_shards + 1, dtype=int)
        self._shards: List[np.ndarray] = [
            vectors[bounds[i] : bounds[i + 1]] for i in range(n_shards)
        ]
        # Global row id of each shard's first row: per-shard top-k
        # results are translated back to database ids before merging.
        self._shard_offsets: List[int] = [int(b) for b in bounds[:-1]]
        self._executor = (
            ThreadPoolExecutor(
                max_workers=min(max_workers, n_shards),
                thread_name_prefix="repro-rank",
            )
            if n_shards > 1
            else None
        )
        self._clock = time.monotonic

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of served database objects."""
        return self.vectors.shape[0]

    @property
    def n_shards(self) -> int:
        """Shards the parallel scan path fans out over."""
        return len(self._shards)

    def __enter__(self) -> "RetrievalService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the ranking thread pool (sessions stay restorable)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # The service API
    # ------------------------------------------------------------------

    def create_session(
        self,
        query: Union[int, Sequence[float], np.ndarray],
        *,
        session_id: Optional[str] = None,
    ) -> str:
        """Open a feedback session; returns its id.

        Args:
            query: a database row index (query-by-id) or an explicit
                feature vector (query-by-example).
            session_id: caller-chosen id; defaults to a fresh UUID hex.
        """
        with activate(self.tracer), self.tracer.span("create_session") as span, self.metrics.time("create"):
            if isinstance(query, (int, np.integer)):
                if not 0 <= int(query) < self.size:
                    raise IndexError(f"query id {query} out of range")
                point = self.vectors[int(query)]
            else:
                point = np.asarray(query, dtype=float)
                if point.ndim != 1 or point.shape[0] != self.vectors.shape[1]:
                    raise ValueError(
                        f"query vector must have shape ({self.vectors.shape[1]},), "
                        f"got {point.shape}"
                    )
            if session_id is None:
                session_id = uuid.uuid4().hex
            elif session_id in self.store:
                raise ValueError(f"session id {session_id!r} already exists")
            method = self._method_factory()
            session = ManagedSession(
                session_id=session_id,
                method=method,
                query=method.start(point),
                guard=SessionGuard(self.policy),
            )
            self.store.put(session)
            self.metrics.increment("sessions_created")
            span.set("session_id", session_id)
        return session_id

    def query(self, session_id: str, k: Optional[int] = None) -> ResultPage:
        """Current ranked result page for a session (cached)."""
        k = self._clamp_k(k)
        with activate(self.tracer), self.tracer.span(
            "query", session_id=session_id, k=k
        ):
            with self.store.lease(session_id) as session:
                with self.metrics.time("query"):
                    page = self._rank(session, k)
        self.metrics.increment("queries")
        return page

    def feedback(
        self,
        session_id: str,
        relevant_ids: Sequence[int],
        scores: Optional[Sequence[float]] = None,
        k: Optional[int] = None,
    ) -> ResultPage:
        """Absorb one round of judgments; returns the refreshed page.

        Args:
            relevant_ids: database ids the user marked relevant.
            scores: optional per-id relevance scores.
            k: page size for the refreshed ranking.
        """
        k = self._clamp_k(k)
        ids = [int(i) for i in relevant_ids]
        for image_id in ids:
            if not 0 <= image_id < self.size:
                raise IndexError(f"image id {image_id} out of range")
        with activate(self.tracer), self.tracer.span(
            "feedback", session_id=session_id, n_relevant=len(ids), k=k
        ) as span:
            with self.store.lease(session_id) as session:
                with self.metrics.time("feedback"):
                    if ids:
                        session.query = session.method.feedback(
                            self.vectors[ids], scores
                        )
                    session.iteration += 1
                    if session.guard is not None:
                        session.guard.reset_for_new_query()
                    self.cache.invalidate(session_id)
                with self.metrics.time("query"):
                    page = self._rank(session, k)
                span.set("iteration", session.iteration)
        self.metrics.increment("feedbacks")
        return page

    def close(self, session_id: str) -> None:
        """End a session, dropping its state, checkpoint and cache."""
        if not self.store.remove(session_id):
            raise SessionNotFound(session_id)
        self.cache.invalidate(session_id)
        self.metrics.increment("sessions_closed")

    def metrics_snapshot(self) -> dict:
        """Operational snapshot: counters, latencies, cache, store."""
        snapshot = self.metrics.snapshot()
        snapshot["store"] = {
            "live_sessions": len(self.store),
            "archived_sessions": len(self.store.archived_ids),
            "capacity": self.store.capacity,
        }
        snapshot["cache"] = {
            "pages": len(self.cache),
            "capacity": self.cache.capacity,
            "hit_rate": self.cache.hit_rate,
        }
        snapshot["kernels"] = default_kernel_cache().stats()
        return snapshot

    def prometheus_metrics(self) -> str:
        """The operational snapshot in Prometheus text format (v0.0.4).

        Includes span/event aggregates when the service was built with a
        recording tracer.
        """
        return prometheus_text(self.metrics_snapshot(), tracer=self.tracer)

    # ------------------------------------------------------------------
    # Ranking internals
    # ------------------------------------------------------------------

    def _clamp_k(self, k: Optional[int]) -> int:
        if k is None:
            return self.k
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        return min(k, self.size)

    def _rank(self, session: ManagedSession, k: int) -> ResultPage:
        key = fingerprint_query(session.query, k)
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.increment("cache_hits")
            add_event("result_cache", outcome="hit")
            ids, distances = cached
        else:
            self.metrics.increment("cache_misses")
            add_event("result_cache", outcome="miss")
            ids, distances = self._compute_rank(session, k)
            self.cache.put(key, ids, distances, owner=session.session_id)
        return ResultPage(ids=ids, distances=distances, iteration=session.iteration)

    def _kernel_cache_event(self, event: str) -> None:
        self.metrics.increment(f"kernel_cache_{event}")

    def _compute_rank(self, session: ManagedSession, k: int):
        # Compile the query's distance kernels exactly once per ranking
        # — the index path, every shard of the fallback scan, and any
        # later page fetch for this query all reuse the same compiled
        # evaluators (shared process-wide, content-addressed by cluster
        # state, so sessions asking the same question share them too).
        ensure_compiled(session.query, on_event=self._kernel_cache_event)
        guard = session.guard
        if self._tree is not None and (guard is None or not guard.active):
            if session.searcher is None:
                session.searcher = MultipointSearcher(self._tree)
            start = self._clock()
            with self.tracer.span("scan", path="index", k=k) as span:
                result = None
                try:
                    result = session.searcher.search(session.query, k)
                except Exception:
                    span.set("error", True)
                    self.metrics.increment("degraded_error")
                    if guard is not None:
                        guard.record_error()
            if result is not None:
                elapsed = self._clock() - start
                self.metrics.observe("index_search", elapsed)
                self.metrics.increment(
                    "index_node_accesses", result.cost.node_accesses
                )
                self.metrics.increment("index_io_accesses", result.cost.io_accesses)
                if result.cost.candidates_pruned:
                    self.metrics.increment(
                        "candidates_pruned", result.cost.candidates_pruned
                    )
                self.metrics.increment(
                    "candidates_refined", result.cost.distance_evaluations
                )
                if guard is not None and guard.record_elapsed(elapsed):
                    self.metrics.increment("degraded_deadline")
                return result.indices, result.distances
        with self.tracer.span(
            "scan", path="fallback", k=k, shards=self.n_shards
        ):
            with self.metrics.time("fallback_scan"):
                self.metrics.increment("fallback_scans")
                self.metrics.increment(
                    "fallback_node_accesses",
                    -(-self.size // page_capacity_for(self.vectors.shape[1])),
                )
                return self._sharded_scan(session.query, k)

    @staticmethod
    def _shard_topk(query: QueryLike, shard: np.ndarray, offset: int, k: int):
        """Exact per-shard top-``k``: ``(global ids, distances, pruned, refined)``.

        Routed through the progressive filter-and-refine scan when it
        applies (large shard, eligible query); the fallback computes
        every distance.  Either way the ids/distances returned are the
        shard's exact top-k under the ``(distance, id)`` order.
        """
        k = min(k, shard.shape[0])
        progressive = progressive_topk(shard, query, k)
        if progressive is not None:
            return (
                progressive.indices + offset,
                progressive.distances,
                progressive.stats.pruned,
                progressive.stats.refined,
            )
        distances = query.distances(shard)
        top = exact_top_k(distances, k)
        return top + offset, distances[top], 0, shard.shape[0]

    def _sharded_scan(self, query: QueryLike, k: int):
        """Exact top-``k`` by scanning all shards, in parallel when possible.

        Each row's aggregate distance depends on that row alone, so
        merging per-shard top-k candidates under the deterministic
        ``(distance, id)`` order equals the single-matrix scan exactly,
        regardless of thread timing (futures are gathered in shard
        order) and of how much each shard's progressive filter pruned.
        """
        if self._executor is None:
            parts = [self._shard_topk(query, self.vectors, 0, k)]
        else:
            # Each worker runs under a copy of the caller's context so
            # trace spans/events recorded on shard threads attach to
            # this request's scan span (a Context can only be entered
            # once, hence one copy per future).
            futures = [
                self._executor.submit(
                    contextvars.copy_context().run,
                    self._shard_topk,
                    query,
                    shard,
                    offset,
                    k,
                )
                for shard, offset in zip(self._shards, self._shard_offsets)
            ]
            parts = [future.result() for future in futures]
        ids = np.concatenate([part[0] for part in parts])
        distances = np.concatenate([part[1] for part in parts])
        pruned = sum(part[2] for part in parts)
        refined = sum(part[3] for part in parts)
        if pruned:
            self.metrics.increment("candidates_pruned", int(pruned))
        self.metrics.increment("candidates_refined", int(refined))
        top = exact_top_k(distances, min(k, ids.shape[0]), tie_break=ids)
        return ids[top], distances[top]
