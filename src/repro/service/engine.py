"""`RetrievalService` — the concurrent multi-session facade.

One service object fronts one indexed collection and serves many
relevance-feedback sessions at once:

* ``create_session`` / ``query`` / ``feedback`` / ``close`` mirror the
  paper's Figure 2 interaction, per session id;
* per-session access is serialized by the session's own lock while
  distinct sessions run fully in parallel (the store-level lock is held
  only for map lookups);
* ranking executes across database shards on a shared
  :class:`~concurrent.futures.ThreadPoolExecutor` — the quadratic-form
  hot path is NumPy ``matmul``/``einsum`` which releases the GIL, so
  shards genuinely overlap; a store-backed service can instead fan out
  to a :class:`~repro.parallel.ShardWorkerPool` of worker *processes*,
  each scanning its own read-only mmap of the
  :class:`~repro.store.FeatureStore` file with zero copies;
* repeated page fetches within an iteration are served by the
  content-addressed :class:`~repro.service.cache.ResultCache`;
* index failures and soft-deadline misses degrade gracefully to the
  exact sharded scan (see :mod:`repro.service.degrade`);
* transient failures are absorbed by the resilience machinery
  (:mod:`repro.service.resilience`): kernel compilation and per-shard
  scans retry with bounded backoff under a per-request deadline
  budget, straggler shards can be hedged to duplicate tasks, and any
  coverage actually lost is reported on the page's
  :class:`~repro.system.ResultQuality`;
* everything is observable through :meth:`metrics_snapshot`.

Results are bit-identical whether a session is served serially or
interleaved with others, through the index or the fallback scan, live
or restored from an eviction checkpoint — concurrency and degradation
change cost, never rankings.  The one exception is spelled out rather
than silent: a page whose quality is not exact (a shard dropped after
its retry budget, a session rebuilt from a corrupt checkpoint) carries
the reasons on ``page.quality``, and once such a page has influenced a
session's feedback the session stays marked.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.kernels import default_kernel_cache, ensure_compiled
from ..core.progressive import CoarseLevel0, exact_top_k
from ..datasets.matrix import assert_scan_ready
from ..faults import fault_point, register_site
from ..index.hybridtree import HybridTree
from ..index.linear import page_capacity_for
from ..index.multipoint import MultipointSearcher
from ..index.spill import SpillTree, SpillTreeConfig
from ..obs import (
    NULL_TRACER,
    SLOTracker,
    activate,
    add_event,
    current_span,
    prometheus_text,
)
from ..parallel.workers import (
    ShardWorkerPool,
    encode_query,
    scan_shard_topk,
    scan_shard_topk_batch,
    shard_coarse_level0,
)
from ..retrieval.database import FeatureDatabase
from ..retrieval.methods import FeedbackMethod, QclusterMethod, QueryLike
from ..store import FeatureStore, StoreBlockCorrupt
from ..system import EXACT_QUALITY, ResultPage, ResultQuality
from .batching import BatchingConfig, BatchingExecutor, BatchRequest, compatibility_key
from .cache import ResultCache, fingerprint_query
from .degrade import DegradationPolicy, SessionGuard
from .metrics import ServiceMetrics
from .resilience import DeadlineBudget, ResiliencePolicy, retry_call
from .sessions import ManagedSession, SessionNotFound, SessionStore

__all__ = ["RetrievalService"]

#: Below this many rows per shard, thread fan-out costs more than the
#: NumPy kernel it parallelizes.
_MIN_SHARD_ROWS = 1024

#: Chaos-injection site: fires per per-shard top-k task, keyed by the
#: shard's global row offset.  Errors here are retried with backoff; a
#: shard that exhausts its retries is dropped from the merge and the
#: page is marked ``shard_failed``.
_SITE_SHARD = register_site("shard.scan", "per-shard top-k scan task")

#: Reason tags that mean "deliberately approximate", not "coverage
#: lost".  A page whose reasons are drawn entirely from this set is
#: stamped ``approximate``; any other tag in the mix means real
#: degradation, which dominates.
_ANN_TAGS = frozenset(("ann", "ann_fallback"))

#: Estimated recall claimed for an ANN page when the tree was built
#: with calibration disabled — deliberately pessimistic, so turning
#: calibration off never inflates the contract.
_UNCALIBRATED_RECALL = 0.5


class RetrievalService:
    """Serve many concurrent feedback sessions over one collection.

    Args:
        database: a :class:`FeatureDatabase`, a raw ``(n, p)`` feature
            matrix, or an opened
            :class:`~repro.store.FeatureStore` — the store is served
            zero-copy from its mmap, shard partition and all, and its
            ``content_hash:epoch`` fingerprint is mixed into every
            result-cache and kernel-cache key.
        scan_backend: ``"threads"`` (default — the shared
            :class:`ThreadPoolExecutor`) or ``"processes"`` (a
            spawn-safe :class:`~repro.parallel.ShardWorkerPool`; store
            backed databases only).  Backends are interchangeable:
            per-shard results merge in shard order under the
            ``(distance, id)`` tie-break, so rankings are byte-identical
            across backends — only wall-clock cost changes.
        method_factory: feedback strategy per session (default
            Qcluster; only Qcluster-backed sessions are checkpointable).
        k: default result-page size.
        use_index: serve queries through the :class:`HybridTree` with
            per-session node caches; ``False`` always uses the exact
            sharded scan.
        n_shards: shards for the parallel scan path; default sizes
            shards to at least ``_MIN_SHARD_ROWS`` rows and at most the
            worker count.
        max_workers: threads in the shared ranking pool (default: CPU
            count, capped at 8).
        capacity: maximum in-memory sessions (LRU-evicted beyond).
        ttl_seconds: idle session lifetime before eviction.
        checkpoint_dir: where eviction checkpoints live; enables
            sessions to survive process restarts.
        cache_size: result-cache capacity in pages (0 disables).
        soft_deadline_s: per-query latency budget for the index path.
        deadline_trip: consecutive deadline misses before a session is
            pinned to the fallback scan.
        resilience: retry / request-deadline / hedging knobs (see
            :class:`~repro.service.resilience.ResiliencePolicy`); the
            default retries idempotent stages three times, with no
            request deadline and no hedging.
        metrics: share an external :class:`ServiceMetrics` if desired.
        tracer: a :class:`~repro.obs.Tracer` recording per-request span
            trees (classify/merge/compile/scan/refine stages with
            algorithmic events); default is the no-op
            :data:`~repro.obs.NULL_TRACER`, whose overhead is
            negligible (see ``benchmarks/test_obs_overhead.py``).
        batching: coalesce compatible concurrent fallback-scan queries
            into micro-batches that share one database pass (see
            :mod:`repro.service.batching`); ``True`` uses the default
            :class:`~repro.service.batching.BatchingConfig`, or pass a
            config directly.  Pages stay byte-identical to per-query
            execution; only wall-clock cost and throughput change.
        slo: a :class:`~repro.obs.SLOTracker` recording per-route /
            per-tenant / per-quality latency histograms and objective
            burn rates; one with the default objectives is built when
            omitted (SLO accounting is never sampled — an SLO computed
            over a sample is not an SLO).
        ann: build the approximate tier — a
            :class:`~repro.index.spill.SpillTree` searched defeatist
            (no backtracking) over the reached leaves only.  ``True``
            uses the default :class:`~repro.index.spill.SpillTreeConfig`
            (the committed recall contract), or pass a config directly.
            Exact search stays the default: the tier serves only
            requests that ask for it (``approximate=True`` on
            :meth:`query` / :meth:`feedback`), shed batching traffic,
            and — with ``prefer_ann`` — tripped sessions.  Every page
            it serves is stamped
            ``ResultQuality(approximate, estimated_recall=...)``.
        prefer_ann: when a session's guard trips (index errors or
            soft-deadline strikes), serve it from the ANN tier instead
            of the full exact fallback scan (requires ``ann``); the
            honest trade under pressure — cheap announced
            approximation over expensive exactness.
    """

    def __init__(
        self,
        database: Union[FeatureDatabase, FeatureStore, np.ndarray],
        *,
        method_factory: Callable[[], FeedbackMethod] = QclusterMethod,
        k: int = 20,
        use_index: bool = True,
        scan_backend: str = "threads",
        n_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        capacity: int = 256,
        ttl_seconds: Optional[float] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        cache_size: int = 128,
        soft_deadline_s: Optional[float] = None,
        deadline_trip: int = 1,
        resilience: Optional[ResiliencePolicy] = None,
        metrics: Optional[ServiceMetrics] = None,
        tracer=None,
        batching: Union[bool, BatchingConfig, None] = None,
        slo: Optional[SLOTracker] = None,
        ann: Union[bool, SpillTreeConfig, None] = None,
        prefer_ann: bool = False,
    ) -> None:
        if scan_backend not in ("threads", "processes"):
            raise ValueError(
                f"scan_backend must be 'threads' or 'processes', got {scan_backend!r}"
            )
        self._feature_store: Optional[FeatureStore] = None
        self._vectors: Optional[np.ndarray] = None
        if isinstance(database, FeatureStore):
            # Served straight from the mmap: shards stay float32 views
            # of the store file and are never copied or upcast on the
            # scan path (the kernels' float32→float64 promotion during
            # arithmetic is exact, so rankings match an in-memory scan
            # bit for bit).  The full matrix materializes lazily, only
            # for row access (query-by-id, feedback rows, the index).
            self._feature_store = database
            n_rows, dimension = database.n, database.dimension
            if n_shards is not None and n_shards != database.n_shards:
                raise ValueError(
                    f"n_shards={n_shards} conflicts with the store's "
                    f"{database.n_shards}-shard partition; rebuild the store "
                    "to re-shard"
                )
            bounds = np.asarray(database.row_offsets, dtype=int)
        else:
            if isinstance(database, FeatureDatabase):
                vectors = database.vectors
            else:
                vectors = np.atleast_2d(np.asarray(database, dtype=float))
            # Stored once, C-contiguous float64: shards are then
            # contiguous row views and the distance kernels never
            # re-convert or copy the database on the hot path.
            vectors = np.ascontiguousarray(vectors, dtype=float)
            if vectors.shape[0] == 0:
                raise ValueError("cannot serve an empty database")
            self._vectors = vectors
            n_rows, dimension = vectors.shape
            bounds = None
        if scan_backend == "processes" and self._feature_store is None:
            raise ValueError(
                "scan_backend='processes' requires a FeatureStore database "
                "(worker processes mmap the store file)"
            )
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self._n_rows = n_rows
        self._dimension = dimension
        self.scan_backend = scan_backend
        self._dataset_fingerprint: Optional[str] = (
            self._feature_store.fingerprint if self._feature_store is not None else None
        )
        self.k = min(k, n_rows)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if prefer_ann and not ann:
            raise ValueError("prefer_ann requires the ANN tier (pass ann=True)")
        self.policy = DegradationPolicy(
            soft_deadline_s=soft_deadline_s,
            trip_after=deadline_trip,
            prefer_ann=prefer_ann,
        )
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        self.store = SessionStore(
            capacity=capacity,
            ttl_seconds=ttl_seconds,
            checkpoint_dir=checkpoint_dir,
            method_factory=method_factory,
            metrics=self.metrics,
            retry=self.resilience.retry,
        )
        self.cache = ResultCache(cache_size)
        self._method_factory = method_factory
        self._tree = HybridTree(self.vectors) if use_index else None
        # The ANN tier shares the exact paths' feature matrix (a
        # store-backed service materializes it once, same as the index).
        self._spill: Optional[SpillTree] = None
        if ann:
            spill_config = ann if isinstance(ann, SpillTreeConfig) else None
            self._spill = SpillTree(self.vectors, spill_config)
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if self._feature_store is not None:
            # The store file *is* the shard partition: worker processes
            # (and the thread path) scan its blocks in place.
            n_shards = self._feature_store.n_shards
        elif n_shards is None:
            n_shards = max(1, min(max_workers, n_rows // _MIN_SHARD_ROWS))
        if n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {n_shards}")
        if bounds is None:
            bounds = np.linspace(0, n_rows, n_shards + 1, dtype=int)
        self._bounds = bounds
        self._n_shards = int(n_shards)
        # In-memory databases keep persistent row views so the
        # progressive scan's per-matrix contexts stay warm across
        # queries; store shards get the same id-stability from the
        # store's memoized block views.
        self._shards: Optional[List[np.ndarray]] = (
            [self._vectors[bounds[i] : bounds[i + 1]] for i in range(n_shards)]
            if self._feature_store is None
            else None
        )
        # Global row id of each shard's first row: per-shard top-k
        # results are translated back to database ids before merging.
        self._shard_offsets: List[int] = [int(b) for b in bounds[:-1]]
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pool: Optional[ShardWorkerPool] = None
        if scan_backend == "processes":
            assert self._feature_store is not None
            self._pool = ShardWorkerPool(
                self._feature_store.path,
                n_workers=min(max_workers, self._n_shards),
            )
        elif self._n_shards > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=min(max_workers, self._n_shards),
                thread_name_prefix="repro-rank",
            )
        self._clock = time.monotonic
        self.slo = slo if slo is not None else SLOTracker(clock=self._clock)
        # Per-session tenant labels (fair queueing on the batching
        # executor); sessions created without a tenant ride "default".
        self._session_tenants: Dict[str, str] = {}
        # Per-shard CoarseLevel0 working copies (store-backed scans on
        # the threads/inline path; worker processes keep their own).
        self._coarse_lock = threading.Lock()
        self._coarse_cache: Dict[int, Optional[CoarseLevel0]] = {}
        self._batching: Optional[BatchingExecutor] = None
        if batching:
            config = (
                batching if isinstance(batching, BatchingConfig) else BatchingConfig()
            )
            self._batching = BatchingExecutor(
                self._execute_batch,
                fallback=self._batch_fallback,
                shed_to=self._shed_to_ann if self._spill is not None else None,
                config=config,
                metrics=self.metrics,
                clock=self._clock,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of served database objects."""
        return self._n_rows

    @property
    def dimension(self) -> int:
        """Feature dimensionality of the served collection."""
        return self._dimension

    @property
    def n_shards(self) -> int:
        """Shards the parallel scan path fans out over."""
        return self._n_shards

    @property
    def vectors(self) -> np.ndarray:
        """The full feature matrix.

        In-memory databases hold it outright; a store-backed service
        materializes it lazily (one concatenating copy of the mmap'd
        shards) and only for *row* access — query-by-id, feedback rows,
        index construction.  The scan hot path never calls this: shards
        are served as zero-copy views straight from the store file.
        """
        if self._vectors is None:
            assert self._feature_store is not None
            self._vectors = self._feature_store.as_array()
        return self._vectors

    def __enter__(self) -> "RetrievalService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the ranking pools (sessions stay restorable)."""
        if self._batching is not None:
            # Drain queued micro-batches before the scan pools go away.
            self._batching.shutdown()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._pool is not None:
            self._pool.shutdown()

    @property
    def batching(self) -> Optional[BatchingExecutor]:
        """The batching executor, or ``None`` when batching is off."""
        return self._batching

    @property
    def ann_tree(self) -> Optional[SpillTree]:
        """The approximate tier's spill tree, or ``None`` without one."""
        return self._spill

    # ------------------------------------------------------------------
    # The service API
    # ------------------------------------------------------------------

    def create_session(
        self,
        query: Union[int, Sequence[float], np.ndarray],
        *,
        session_id: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> str:
        """Open a feedback session; returns its id.

        Args:
            query: a database row index (query-by-id) or an explicit
                feature vector (query-by-example).
            session_id: caller-chosen id; defaults to a fresh UUID hex.
            tenant: fair-queueing label for the batching executor
                (sessions of one tenant share one FIFO lane); only
                meaningful when the service batches.
        """
        with activate(self.tracer), self.tracer.span("create_session") as span, self.metrics.time("create"):
            if isinstance(query, (int, np.integer)):
                if not 0 <= int(query) < self.size:
                    raise IndexError(f"query id {query} out of range")
                point = self.vectors[int(query)]
            else:
                point = np.asarray(query, dtype=float)
                if point.ndim != 1 or point.shape[0] != self._dimension:
                    raise ValueError(
                        f"query vector must have shape ({self._dimension},), "
                        f"got {point.shape}"
                    )
            if session_id is None:
                session_id = uuid.uuid4().hex
            elif session_id in self.store:
                raise ValueError(f"session id {session_id!r} already exists")
            method = self._method_factory()
            session = ManagedSession(
                session_id=session_id,
                method=method,
                query=method.start(point),
                guard=SessionGuard(self.policy),
                genesis=np.array(point, dtype=float, copy=True),
            )
            self.store.put(session)
            if tenant is not None:
                self._session_tenants[session_id] = str(tenant)
            self.metrics.increment("sessions_created")
            span.set("session_id", session_id)
        return session_id

    def tenant_of(self, session_id: str) -> str:
        """The fair-queueing tenant label of a session (``"default"``
        when the session was opened without one)."""
        return self._session_tenants.get(session_id, "default")

    def query(
        self,
        session_id: str,
        k: Optional[int] = None,
        *,
        approximate: bool = False,
    ) -> ResultPage:
        """Current ranked result page for a session (cached).

        Args:
            k: page size override.
            approximate: serve this request from the ANN tier (requires
                the service to have one); the page comes back stamped
                ``approximate`` with its estimated recall.
        """
        k = self._clamp_k(k)
        if approximate and self._spill is None:
            raise ValueError("approximate serving requires the ANN tier (ann=True)")
        start = self._clock()
        with activate(self.tracer), self.tracer.span(
            "query", session_id=session_id, k=k
        ):
            try:
                budget = self.resilience.budget(clock=self._clock)
                with self.store.lease(session_id) as session:
                    with self.metrics.time("query"):
                        page = self._rank(session, k, budget, approximate=approximate)
            except BaseException:
                self.slo.observe(
                    "query",
                    self._clock() - start,
                    tenant=self.tenant_of(session_id),
                    error=True,
                )
                raise
        self.slo.observe(
            "query",
            self._clock() - start,
            tenant=self.tenant_of(session_id),
            exact=page.quality.is_exact,
        )
        self.metrics.increment("queries")
        return page

    def feedback(
        self,
        session_id: str,
        relevant_ids: Sequence[int],
        scores: Optional[Sequence[float]] = None,
        k: Optional[int] = None,
        *,
        approximate: bool = False,
    ) -> ResultPage:
        """Absorb one round of judgments; returns the refreshed page.

        Args:
            relevant_ids: database ids the user marked relevant.
            scores: optional per-id relevance scores.
            k: page size for the refreshed ranking.
            approximate: serve the refreshed page from the ANN tier
                (requires the service to have one).
        """
        k = self._clamp_k(k)
        if approximate and self._spill is None:
            raise ValueError("approximate serving requires the ANN tier (ann=True)")
        ids = [int(i) for i in relevant_ids]
        for image_id in ids:
            if not 0 <= image_id < self.size:
                raise IndexError(f"image id {image_id} out of range")
        start = self._clock()
        with activate(self.tracer), self.tracer.span(
            "feedback", session_id=session_id, n_relevant=len(ids), k=k
        ) as span:
            try:
                budget = self.resilience.budget(clock=self._clock)
                with self.store.lease(session_id) as session:
                    with self.metrics.time("feedback"):
                        if session.pending_reasons:
                            # These judgments were formed on a degraded page,
                            # so the feedback trajectory is now influenced by
                            # the lost coverage: the session stays marked
                            # from here on.
                            session.provenance = tuple(
                                dict.fromkeys(
                                    session.provenance + session.pending_reasons
                                )
                            )
                            session.pending_reasons = ()
                        if ids:
                            session.query = session.method.feedback(
                                self.vectors[ids], scores
                            )
                        session.iteration += 1
                        if session.guard is not None:
                            session.guard.reset_for_new_query()
                        self.cache.invalidate(session_id)
                    with self.metrics.time("query"):
                        page = self._rank(session, k, budget, approximate=approximate)
                    span.set("iteration", session.iteration)
            except BaseException:
                self.slo.observe(
                    "feedback",
                    self._clock() - start,
                    tenant=self.tenant_of(session_id),
                    error=True,
                )
                raise
        self.slo.observe(
            "feedback",
            self._clock() - start,
            tenant=self.tenant_of(session_id),
            exact=page.quality.is_exact,
        )
        self.metrics.increment("feedbacks")
        return page

    def close(self, session_id: str) -> None:
        """End a session, dropping its state, checkpoint and cache."""
        if not self.store.remove(session_id):
            raise SessionNotFound(session_id)
        self._session_tenants.pop(session_id, None)
        self.cache.invalidate(session_id)
        self.metrics.increment("sessions_closed")

    def metrics_snapshot(self) -> dict:
        """Operational snapshot: counters, latencies, cache, store."""
        snapshot = self.metrics.snapshot()
        snapshot["store"] = {
            "live_sessions": len(self.store),
            "archived_sessions": len(self.store.archived_ids),
            "capacity": self.store.capacity,
        }
        snapshot["cache"] = {
            "pages": len(self.cache),
            "capacity": self.cache.capacity,
            "hit_rate": self.cache.hit_rate,
            "corruptions": self.cache.corruptions,
        }
        snapshot["kernels"] = default_kernel_cache().stats()
        if self._feature_store is not None:
            feature = self._feature_store.stats()
            feature["fingerprint"] = self._feature_store.fingerprint
            snapshot["feature_store"] = feature
        if self._pool is not None:
            snapshot["worker_pool"] = self._pool.stats()
        if self._batching is not None:
            snapshot["batching"] = self._batching.stats()
        if self._spill is not None:
            snapshot["ann"] = self._spill.stats()
        snapshot["slo"] = self.slo.snapshot()
        return snapshot

    def prometheus_metrics(self) -> str:
        """The operational snapshot in Prometheus text format (v0.0.4).

        Includes span/event aggregates when the service was built with a
        recording tracer.
        """
        return prometheus_text(self.metrics_snapshot(), tracer=self.tracer)

    # ------------------------------------------------------------------
    # Ranking internals
    # ------------------------------------------------------------------

    def _clamp_k(self, k: Optional[int]) -> int:
        if k is None:
            return self.k
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        return min(k, self.size)

    def _rank(
        self,
        session: ManagedSession,
        k: int,
        budget: DeadlineBudget,
        approximate: bool = False,
    ) -> ResultPage:
        guard = session.guard
        use_ann = self._spill is not None and (
            approximate
            or (self.policy.prefer_ann and guard is not None and guard.active)
        )
        if use_ann:
            # The ANN path bypasses the result cache in both directions:
            # approximate pages are never stored (a later exact request
            # must not replay them), and an approximate request computes
            # fresh rather than borrowing a cached exact page — the
            # caller asked for the cheap tier's latency profile, and a
            # page's provenance should describe how it was produced.
            ids, distances, reasons = self._ann_scan(session.query, k, budget)
        else:
            key = fingerprint_query(session.query, k, scope=self._dataset_fingerprint)
            # The cache is an optimization: any failure inside it (including
            # an injected one) is just a miss, never a failed query.
            cached = None
            try:
                cached = self.cache.get(key)
            except Exception:
                self.metrics.increment("cache_errors")
                add_event("result_cache", outcome="error")
            if cached is not None:
                self.metrics.increment("cache_hits")
                add_event("result_cache", outcome="hit")
                ids, distances = cached
                reasons = ()
            else:
                self.metrics.increment("cache_misses")
                add_event("result_cache", outcome="miss")
                ids, distances, reasons = self._compute_rank(session, k, budget)
                if not reasons:
                    # Only exact pages are cached — a later hit must never
                    # replay a transient coverage loss.
                    try:
                        self.cache.put(key, ids, distances, owner=session.session_id)
                    except Exception:
                        self.metrics.increment("cache_errors")
        if reasons:
            session.pending_reasons = tuple(
                dict.fromkeys(session.pending_reasons + reasons)
            )
        quality = self._quality(session, reasons)
        if quality.is_exact:
            self.metrics.increment("results_exact")
        elif quality.is_approximate:
            self.metrics.increment("results_approximate")
            add_event(
                "result_quality",
                level=quality.level,
                reasons=",".join(quality.reasons),
                estimated_recall=quality.estimated_recall,
            )
        else:
            self.metrics.increment("results_degraded")
            for reason in quality.reasons:
                self.metrics.increment(f"degraded_reason_{reason}")
            add_event(
                "result_quality",
                level=quality.level,
                reasons=",".join(quality.reasons),
            )
        return ResultPage(
            ids=ids,
            distances=distances,
            iteration=session.iteration,
            quality=quality,
        )

    def _quality(
        self, session: ManagedSession, reasons: Tuple[str, ...] = ()
    ) -> ResultQuality:
        """The page's provenance: sticky session reasons plus this scan's.

        Reasons drawn entirely from the ANN tags stamp the page
        ``approximate`` with the tree's calibrated recall (1.0 for a
        pure ``ann_fallback`` — the content is exact, the stamp is the
        conservative claim).  Any non-ANN tag means coverage or state
        was actually lost, and degradation dominates: the page is
        ``degraded`` carrying every tag.
        """
        combined = tuple(dict.fromkeys(session.provenance + tuple(reasons)))
        if not combined:
            return EXACT_QUALITY
        if all(tag in _ANN_TAGS for tag in combined):
            if "ann" in combined:
                tree = self._spill
                recall = (
                    tree.calibrated_recall
                    if tree is not None and tree.calibrated_recall
                    else _UNCALIBRATED_RECALL
                )
            else:
                recall = 1.0
            return ResultQuality.approximate(recall, *combined)
        return ResultQuality.degraded(*combined)

    def _kernel_cache_event(self, event: str) -> None:
        self.metrics.increment(f"kernel_cache_{event}")

    def _compute_rank(self, session: ManagedSession, k: int, budget: DeadlineBudget):
        # Compile the query's distance kernels exactly once per ranking
        # — the index path, every shard of the fallback scan, and any
        # later page fetch for this query all reuse the same compiled
        # evaluators (shared process-wide, content-addressed by cluster
        # state, so sessions asking the same question share them too).
        # Compilation is a pure function of the cluster state, so
        # transient failures retry with backoff under the request budget.
        def on_compile_retry(attempt: int, error: BaseException) -> None:
            self.metrics.increment("compile_retries")
            add_event("retry", stage="compile", attempt=attempt, error=repr(error))

        retry_call(
            lambda: ensure_compiled(
                session.query,
                on_event=self._kernel_cache_event,
                scope=self._dataset_fingerprint,
            ),
            self.resilience.retry,
            deadline=budget,
            on_retry=on_compile_retry,
        )
        guard = session.guard
        if self._tree is not None and (guard is None or not guard.active):
            if session.searcher is None:
                session.searcher = MultipointSearcher(self._tree)
            start = self._clock()
            with self.tracer.span("scan", path="index", k=k) as span:
                result = None
                try:
                    result = session.searcher.search(session.query, k)
                except Exception:
                    span.set("error", True)
                    self.metrics.increment("degraded_error")
                    if guard is not None:
                        guard.record_error()
            if result is not None:
                elapsed = self._clock() - start
                self.metrics.observe("index_search", elapsed)
                self.metrics.increment(
                    "index_node_accesses", result.cost.node_accesses
                )
                self.metrics.increment("index_io_accesses", result.cost.io_accesses)
                if result.cost.candidates_pruned:
                    self.metrics.increment(
                        "candidates_pruned", result.cost.candidates_pruned
                    )
                self.metrics.increment(
                    "candidates_refined", result.cost.distance_evaluations
                )
                if guard is not None and guard.record_elapsed(elapsed):
                    self.metrics.increment("degraded_deadline")
                return result.indices, result.distances, ()
        path = "fallback" if self._batching is None else "batched"
        with self.tracer.span("scan", path=path, k=k, shards=self.n_shards):
            with self.metrics.time("fallback_scan"):
                self.metrics.increment("fallback_scans")
                self.metrics.increment(
                    "fallback_node_accesses",
                    -(-self.size // page_capacity_for(self._dimension)),
                )
                if self._batching is not None:
                    compiled = ensure_compiled(
                        session.query, scope=self._dataset_fingerprint
                    )
                    return self._batching.submit(
                        session.query,
                        compatibility_key(compiled, self._dataset_fingerprint),
                        k,
                        tenant=self._session_tenants.get(
                            session.session_id, "default"
                        ),
                        budget=budget,
                    )
                return self._sharded_scan(session.query, k, budget)

    def _shard_array(self, index: int) -> np.ndarray:
        """Shard ``index`` as a scan-ready C-contiguous matrix.

        In-memory: a persistent row view of the float64 matrix.  Store
        backed: the mmap'd float32 block view — CRC-verified on first
        access, and raising :class:`~repro.store.StoreBlockCorrupt` for
        a quarantined block.  Resolved *inside* the retried shard task
        so a corrupt block surfaces through the same failure path as a
        scan error (but, being permanent, skips the backoff).
        """
        if self._shards is not None:
            return self._shards[index]
        assert self._feature_store is not None
        shard = self._feature_store.shard(index)
        # The store hands out verified float32 views; a silent dtype or
        # layout change here would mean a hidden copy on the hot path.
        assert_scan_ready(shard, name=f"shard {index}")
        return shard

    def _shard_coarse(self, index: int) -> Optional[CoarseLevel0]:
        """Shard ``index``'s PCA-companion level-0 source, memoized.

        ``None`` for in-memory databases, stores built without coarse
        blocks, or companions that failed their CRC — the progressive
        scan then computes its own prefix transform (lossless fallback,
        byte-identical pages either way).
        """
        if self._feature_store is None:
            return None
        with self._coarse_lock:
            if index in self._coarse_cache:
                return self._coarse_cache[index]
        # Built outside the lock: construction reads (and CRC-verifies)
        # store blocks, and building twice under a race is idempotent.
        coarse = shard_coarse_level0(self._feature_store, index)
        with self._coarse_lock:
            return self._coarse_cache.setdefault(index, coarse)

    @staticmethod
    def _shard_topk(
        query: QueryLike,
        shard: np.ndarray,
        offset: int,
        k: int,
        coarse: Optional[CoarseLevel0] = None,
    ):
        """Exact per-shard top-``k``: ``(global ids, distances, pruned, refined)``.

        Delegates to :func:`~repro.parallel.workers.scan_shard_topk` —
        the same kernel worker processes run — after the ``shard.scan``
        fault point, so every backend shares one scan implementation.
        """
        fault_point(_SITE_SHARD, key=str(offset))
        return scan_shard_topk(query, shard, offset, k, coarse=coarse)

    def _run_shard(self, query: QueryLike, index: int, k: int, budget: DeadlineBudget):
        """One shard's exact top-``k`` with bounded retries.

        Scanning a read-only shard is idempotent, so transient failures
        (including injected ``shard.scan`` faults) are retried with
        backoff until the retry budget or the request deadline runs out;
        the final error propagates for :meth:`_sharded_scan` to absorb.
        Permanent errors (a CRC-quarantined store block) skip the
        backoff entirely and propagate at once.
        """
        offset = self._shard_offsets[index]

        def on_retry(attempt: int, error: BaseException) -> None:
            self.metrics.increment("shard_retries")
            add_event(
                "retry",
                stage="shard_scan",
                shard_offset=offset,
                attempt=attempt,
                error=repr(error),
            )

        return retry_call(
            lambda: self._shard_topk(
                query,
                self._shard_array(index),
                offset,
                k,
                coarse=self._shard_coarse(index),
            ),
            self.resilience.retry,
            deadline=budget,
            on_retry=on_retry,
        )

    @staticmethod
    def _race(futures: List["Future"]):
        """First successful result among duplicate shard tasks.

        Hedge copies compute byte-identical data from the same immutable
        shard, so whichever finishes first is *the* answer; losers are
        discarded when they eventually complete.  Returns ``(result,
        errors)`` with ``result=None`` when every copy raised.
        """
        errors: List[BaseException] = []
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    return future.result(), errors
                except Exception as error:  # noqa: PERF203 — per-copy verdict
                    errors.append(error)
        return None, errors

    def _thread_parts(self, query: QueryLike, k: int, budget: DeadlineBudget):
        """Per-shard results on the shared thread pool (inline when 1 shard).

        Returns ``(parts, failures)``: parts in shard order for the
        deterministic merge, failures the final error of every shard
        that exhausted its retries (hedge copies included).
        """
        failures: List[BaseException] = []
        parts = []
        if self._executor is None:
            for index in range(self._n_shards):
                try:
                    parts.append(self._run_shard(query, index, k, budget))
                except Exception as error:
                    failures.append(error)
                    self.metrics.increment("shard_failures")
                    add_event(
                        "shard_failed",
                        shard_offset=self._shard_offsets[index],
                        error=repr(error),
                    )
            return parts, failures

        # Each worker runs under a copy of the caller's context so
        # trace spans/events recorded on shard threads attach to
        # this request's scan span (a Context can only be entered
        # once, hence one copy per future).
        def submit(index: int) -> "Future":
            return self._executor.submit(
                contextvars.copy_context().run,
                self._run_shard,
                query,
                index,
                k,
                budget,
            )

        copies: List[List["Future"]] = [
            [submit(index)] for index in range(self._n_shards)
        ]
        hedge_after = self.resilience.hedge_after_s
        if hedge_after is not None:
            _, stragglers = wait(
                [entry[0] for entry in copies],
                timeout=min(hedge_after, budget.remaining)
                if budget.remaining != float("inf")
                else hedge_after,
            )
            if stragglers and not budget.expired:
                for index, entry in enumerate(copies):
                    if entry[0] in stragglers:
                        entry.append(submit(index))
                        self.metrics.increment("hedges")
                        add_event("hedge", shard_offset=self._shard_offsets[index])
        for index, entry in enumerate(copies):
            result, errors = self._race(entry)
            if result is None:
                self.metrics.increment("shard_failures")
                last = errors[-1] if errors else RuntimeError("shard task lost")
                failures.append(last)
                add_event(
                    "shard_failed",
                    shard_offset=self._shard_offsets[index],
                    error=repr(last),
                )
            else:
                parts.append(result)
        return parts, failures

    def _pool_trace(self) -> Optional[Dict[str, object]]:
        """The trace context to ship with worker-pool tasks, if any.

        ``None`` (the common case: no recording tracer, or an unsampled
        request) keeps the pool round-trip byte-identical to the
        pre-tracing wire shape; otherwise the ambient span becomes the
        worker-side root's remote parent.
        """
        span = current_span()
        if span is None or not self.tracer.enabled:
            return None
        return {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "sampled": True,
        }

    @staticmethod
    def _graft_worker_spans(spans) -> None:
        """Stitch piggybacked worker span dicts under the ambient span."""
        host = current_span()
        if host is not None and spans:
            host.add_foreign(spans)

    def _process_parts(self, query: QueryLike, k: int, budget: DeadlineBudget):
        """Per-shard results from the worker-process pool.

        Every shard is submitted up front; each worker scans its own
        read-only mmap of the store file with the shared
        :func:`~repro.parallel.workers.scan_shard_topk` kernel, so only
        the encoded query (a few small arrays) and the top-``k`` page
        cross the process boundary — the feature blocks never do.
        Results are consumed in shard order, preserving the
        deterministic merge.

        The parent-side ``shard.scan`` fault point and the retry /
        backoff discipline wrap each shard's future (a retry resubmits
        the shard to the pool), so process results obey the same
        resilience contract as threads.  A worker raising
        :class:`~repro.store.StoreBlockCorrupt` (pickled across the
        boundary) is permanent: no resubmission, immediate failure.
        """
        assert self._pool is not None
        payload = encode_query(query)
        pool = self._pool
        trace = self._pool_trace()
        pending: Dict[int, "Future"] = {
            index: pool.submit(index, payload, k, trace)
            for index in range(self._n_shards)
        }
        failures: List[BaseException] = []
        parts = []
        for index in range(self._n_shards):
            offset = self._shard_offsets[index]

            def attempt(index: int = index, offset: int = offset):
                fault_point(_SITE_SHARD, key=str(offset))
                future = pending.pop(index, None)
                if future is None:  # retry after a failed attempt
                    future = pool.submit(index, payload, k, trace)
                return future.result()

            def on_retry(
                attempt_no: int, error: BaseException, offset: int = offset
            ) -> None:
                self.metrics.increment("shard_retries")
                add_event(
                    "retry",
                    stage="shard_scan",
                    shard_offset=offset,
                    attempt=attempt_no,
                    error=repr(error),
                )

            try:
                result = retry_call(
                    attempt,
                    self.resilience.retry,
                    deadline=budget,
                    on_retry=on_retry,
                )
            except Exception as error:
                failures.append(error)
                self.metrics.increment("shard_failures")
                add_event("shard_failed", shard_offset=offset, error=repr(error))
                continue
            if trace is not None:
                self._graft_worker_spans(result[4])
                result = result[:4]
            parts.append(result)
            self.metrics.increment("store_block_reads_workers")
        return parts, failures

    def _sharded_scan(
        self, query: QueryLike, k: int, budget: Optional[DeadlineBudget] = None
    ):
        """Exact top-``k`` by scanning all shards, in parallel when possible.

        Each row's aggregate distance depends on that row alone, so
        merging per-shard top-k candidates under the deterministic
        ``(distance, id)`` order equals the single-matrix scan exactly,
        regardless of thread timing (futures are gathered in shard
        order) and of how much each shard's progressive filter pruned.

        Resilience: every shard task retries transient errors (see
        :meth:`_run_shard`); when hedging is enabled, shards still
        running after ``hedge_after_s`` are re-dispatched to a duplicate
        task and the copies race.  A shard that still fails is dropped
        from the merge — the remaining coverage is returned with
        ``("shard_failed", ...)`` reasons (``"store_block_corrupt"`` for
        a CRC-quarantined store block, plus ``"deadline"`` when the
        request budget had expired) for the caller to surface as
        :class:`~repro.system.ResultQuality`.  Only when *every* shard
        fails does the query itself fail.

        Returns:
            ``(ids, distances, reasons)`` — reasons empty for full
            coverage.
        """
        if budget is None:
            budget = DeadlineBudget(None, clock=self._clock)
        if self._pool is not None:
            parts, failures = self._process_parts(query, k, budget)
        else:
            parts, failures = self._thread_parts(query, k, budget)
        if not parts:
            # Zero coverage is a failed query, not a silently-empty page.
            assert failures
            raise failures[-1]
        reasons: Tuple[str, ...] = ()
        if failures:
            tags: List[str] = []
            if budget.expired:
                tags.append("deadline")
            if any(not isinstance(e, StoreBlockCorrupt) for e in failures):
                tags.append("shard_failed")
            if any(isinstance(e, StoreBlockCorrupt) for e in failures):
                tags.append("store_block_corrupt")
            reasons = tuple(tags)
        ids = np.concatenate([part[0] for part in parts])
        distances = np.concatenate([part[1] for part in parts])
        pruned = sum(part[2] for part in parts)
        refined = sum(part[3] for part in parts)
        if pruned:
            self.metrics.increment("candidates_pruned", int(pruned))
        self.metrics.increment("candidates_refined", int(refined))
        top = exact_top_k(distances, min(k, ids.shape[0]), tie_break=ids)
        return ids[top], distances[top], reasons

    # ------------------------------------------------------------------
    # The approximate tier
    # ------------------------------------------------------------------

    def _ann_scan(
        self, query: QueryLike, k: int, budget: Optional[DeadlineBudget] = None
    ):
        """Top-``k`` from the spill tree's defeatist search.

        Returns ``(ids, distances, reasons)`` like the exact scans.  A
        healthy descent yields ``("ann",)``.  When the tier itself
        fails (an injected ``index.descend`` fault, a broken node), the
        request is re-served by the exact sharded scan and tagged
        ``"ann_fallback"`` on top of whatever the rescue scan reports —
        the page content is then exact, but the stamp says the cheap
        tier misbehaved.
        """
        assert self._spill is not None

        def on_compile_retry(attempt: int, error: BaseException) -> None:
            self.metrics.increment("compile_retries")
            add_event("retry", stage="compile", attempt=attempt, error=repr(error))

        retry_call(
            lambda: ensure_compiled(
                query,
                on_event=self._kernel_cache_event,
                scope=self._dataset_fingerprint,
            ),
            self.resilience.retry,
            deadline=budget,
            on_retry=on_compile_retry,
        )
        self.metrics.increment("ann_scans")
        start = self._clock()
        with self.tracer.span("scan", path="ann", k=k) as span:
            try:
                result = self._spill.defeatist_search(query, k)
            except Exception as error:
                span.set("error", True)
                self.metrics.increment("ann_fallbacks")
                add_event("ann_fallback", error=repr(error))
                ids, distances, reasons = self._sharded_scan(query, k, budget)
                return ids, distances, tuple(reasons) + ("ann_fallback",)
            span.set("candidates", result.n_candidates)
        self.metrics.observe("ann_search", self._clock() - start)
        self.metrics.increment("ann_node_accesses", result.cost.node_accesses)
        self.metrics.increment("ann_candidates", result.n_candidates)
        if result.cost.candidates_pruned:
            self.metrics.increment(
                "candidates_pruned", result.cost.candidates_pruned
            )
        self.metrics.increment(
            "candidates_refined", result.cost.distance_evaluations
        )
        return result.indices, result.distances, ("ann",)

    def _shed_to_ann(self, request: BatchRequest):
        """Serve one load-shed batching request from the ANN tier.

        Runs on the submitter's own thread (the executor hands shed
        requests here instead of queueing them), so an overloaded queue
        sheds real work immediately rather than marking requests for a
        cheaper ride through the same congested dispatcher.
        """
        return self._ann_scan(request.payload, request.k, request.budget)

    # ------------------------------------------------------------------
    # Batched ranking (the micro-batch executor's scan backend)
    # ------------------------------------------------------------------

    def _batch_fallback(self, request: BatchRequest):
        """Serial per-query execution when the batch path fails.

        Lossless by construction: the classic sharded scan produces the
        byte-identical page, so a fault in the batching machinery costs
        amortization, never correctness.
        """
        return self._sharded_scan(request.payload, request.k, request.budget)

    def _execute_batch(self, requests: List[BatchRequest]):
        """Run one micro-batch (shared compatibility key) end to end."""
        queries = [request.payload for request in requests]
        ks = [request.k for request in requests]
        approximate = [request.approximate for request in requests]
        # The batch fights under the most permissive member budget:
        # retries for shared work should not be cut short by the one
        # stingiest request (its own deadline was already honoured at
        # the queueing cutoff).
        budget: Optional[DeadlineBudget] = None
        for request in requests:
            if request.budget is None or request.budget.remaining == float("inf"):
                budget = None
                break
            if budget is None or request.budget.remaining > budget.remaining:
                budget = request.budget
        if budget is None:
            budget = DeadlineBudget(None, clock=self._clock)
        return self._batch_scan(queries, ks, approximate, budget)

    def _batch_shard_topk(
        self,
        queries: Sequence[QueryLike],
        index: int,
        ks: Sequence[int],
        approximate: Sequence[bool],
        budget: DeadlineBudget,
    ):
        """One shard scanned once for the whole micro-batch, with retries.

        Same resilience contract as :meth:`_run_shard`: the
        ``shard.scan`` fault point fires per attempt, transient errors
        retry with backoff under the batch budget, and the final error
        propagates for :meth:`_batch_scan` to absorb as a dropped shard
        (degrading every page in the batch, never failing it).
        """
        offset = self._shard_offsets[index]

        def attempt():
            fault_point(_SITE_SHARD, key=str(offset))
            return scan_shard_topk_batch(
                queries,
                self._shard_array(index),
                offset,
                ks,
                coarse=self._shard_coarse(index),
                approximate=approximate,
            )

        def on_retry(attempt_no: int, error: BaseException) -> None:
            self.metrics.increment("shard_retries")
            add_event(
                "retry",
                stage="batch_shard_scan",
                shard_offset=offset,
                attempt=attempt_no,
                error=repr(error),
            )

        return retry_call(
            attempt, self.resilience.retry, deadline=budget, on_retry=on_retry
        )

    def _batch_scan(
        self,
        queries: Sequence[QueryLike],
        ks: Sequence[int],
        approximate: Sequence[bool],
        budget: DeadlineBudget,
    ):
        """Every query's top-k with each shard read once for the batch.

        Per-shard batched tasks fan out exactly like the solo scan
        (inline, thread pool, or ``submit_batch`` on the worker-process
        pool); per-query results then merge across shards in shard
        order under the ``(distance, id)`` tie-break, so each page is
        byte-identical to that query's solo :meth:`_sharded_scan`.

        Returns one ``(ids, distances, reasons)`` per query.  A shard
        dropped after its retries degrades every page in the batch with
        the same reason tags as the solo path; a query served
        approximately (load shedding) additionally carries
        ``"overload"``.
        """
        failures: List[BaseException] = []
        parts = []  # per surviving shard: one result-tuple list per query
        if self._pool is not None:
            payloads = [encode_query(query) for query in queries]
            pool = self._pool
            trace = self._pool_trace()
            pending: Dict[int, "Future"] = {
                index: pool.submit_batch(
                    index, payloads, list(ks), list(approximate), trace
                )
                for index in range(self._n_shards)
            }
            for index in range(self._n_shards):
                offset = self._shard_offsets[index]

                def attempt(index: int = index, offset: int = offset):
                    fault_point(_SITE_SHARD, key=str(offset))
                    future = pending.pop(index, None)
                    if future is None:  # retry after a failed attempt
                        future = pool.submit_batch(
                            index, payloads, list(ks), list(approximate), trace
                        )
                    return future.result()

                try:
                    result = retry_call(
                        attempt, self.resilience.retry, deadline=budget
                    )
                except Exception as error:
                    failures.append(error)
                    self.metrics.increment("shard_failures")
                    add_event(
                        "shard_failed", shard_offset=offset, error=repr(error)
                    )
                    continue
                if trace is not None:
                    result, spans = result
                    self._graft_worker_spans(spans)
                parts.append(result)
                self.metrics.increment("store_block_reads_workers")
        elif self._executor is None or self._n_shards == 1:
            for index in range(self._n_shards):
                try:
                    parts.append(
                        self._batch_shard_topk(
                            queries, index, ks, approximate, budget
                        )
                    )
                except Exception as error:
                    failures.append(error)
                    self.metrics.increment("shard_failures")
                    add_event(
                        "shard_failed",
                        shard_offset=self._shard_offsets[index],
                        error=repr(error),
                    )
        else:
            futures = [
                self._executor.submit(
                    contextvars.copy_context().run,
                    self._batch_shard_topk,
                    queries,
                    index,
                    ks,
                    approximate,
                    budget,
                )
                for index in range(self._n_shards)
            ]
            for index, future in enumerate(futures):
                try:
                    parts.append(future.result())
                except Exception as error:
                    failures.append(error)
                    self.metrics.increment("shard_failures")
                    add_event(
                        "shard_failed",
                        shard_offset=self._shard_offsets[index],
                        error=repr(error),
                    )
        if not parts:
            assert failures
            raise failures[-1]
        shard_tags: List[str] = []
        if failures:
            if budget.expired:
                shard_tags.append("deadline")
            if any(not isinstance(e, StoreBlockCorrupt) for e in failures):
                shard_tags.append("shard_failed")
            if any(isinstance(e, StoreBlockCorrupt) for e in failures):
                shard_tags.append("store_block_corrupt")
        results = []
        total_pruned = 0
        total_refined = 0
        for position, k in enumerate(ks):
            ids = np.concatenate([part[position][0] for part in parts])
            distances = np.concatenate([part[position][1] for part in parts])
            total_pruned += sum(part[position][2] for part in parts)
            total_refined += sum(part[position][3] for part in parts)
            exact = all(part[position][4] for part in parts)
            reasons = tuple(shard_tags) + (() if exact else ("overload",))
            top = exact_top_k(distances, min(k, ids.shape[0]), tie_break=ids)
            results.append((ids[top], distances[top], reasons))
        if total_pruned:
            self.metrics.increment("candidates_pruned", int(total_pruned))
        self.metrics.increment("candidates_refined", int(total_refined))
        return results

    def scan_batch(
        self,
        queries: Sequence[QueryLike],
        ks: Optional[Sequence[int]] = None,
        *,
        approximate: Optional[Sequence[bool]] = None,
    ):
        """Synchronously scan an explicit micro-batch (no queueing).

        The deterministic entry point for benchmarks and tests: the
        given queries form exactly one micro-batch regardless of the
        executor's timing knobs, running the same batched scan the
        executor dispatches.  Returns one ``(ids, distances, reasons)``
        tuple per query, each byte-identical to the query's solo
        sharded scan.
        """
        queries = list(queries)
        if ks is None:
            ks_list = [self.k] * len(queries)
        else:
            ks_list = [self._clamp_k(k) for k in ks]
        flags = (
            [False] * len(queries) if approximate is None else list(approximate)
        )
        for query in queries:
            ensure_compiled(query, scope=self._dataset_fingerprint)
        budget = self.resilience.budget(clock=self._clock)
        return self._batch_scan(queries, ks_list, flags, budget)
