"""`RetrievalService` — the concurrent multi-session facade.

One service object fronts one indexed collection and serves many
relevance-feedback sessions at once:

* ``create_session`` / ``query`` / ``feedback`` / ``close`` mirror the
  paper's Figure 2 interaction, per session id;
* per-session access is serialized by the session's own lock while
  distinct sessions run fully in parallel (the store-level lock is held
  only for map lookups);
* ranking executes across database shards on a shared
  :class:`~concurrent.futures.ThreadPoolExecutor` — the quadratic-form
  hot path is NumPy ``matmul``/``einsum`` which releases the GIL, so
  shards genuinely overlap;
* repeated page fetches within an iteration are served by the
  content-addressed :class:`~repro.service.cache.ResultCache`;
* index failures and soft-deadline misses degrade gracefully to the
  exact sharded scan (see :mod:`repro.service.degrade`);
* transient failures are absorbed by the resilience machinery
  (:mod:`repro.service.resilience`): kernel compilation and per-shard
  scans retry with bounded backoff under a per-request deadline
  budget, straggler shards can be hedged to duplicate tasks, and any
  coverage actually lost is reported on the page's
  :class:`~repro.system.ResultQuality`;
* everything is observable through :meth:`metrics_snapshot`.

Results are bit-identical whether a session is served serially or
interleaved with others, through the index or the fallback scan, live
or restored from an eviction checkpoint — concurrency and degradation
change cost, never rankings.  The one exception is spelled out rather
than silent: a page whose quality is not exact (a shard dropped after
its retry budget, a session rebuilt from a corrupt checkpoint) carries
the reasons on ``page.quality``, and once such a page has influenced a
session's feedback the session stays marked.
"""

from __future__ import annotations

import contextvars
import os
import time
import uuid
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.kernels import default_kernel_cache, ensure_compiled
from ..core.progressive import exact_top_k, progressive_topk
from ..faults import fault_point, register_site
from ..index.hybridtree import HybridTree
from ..index.linear import page_capacity_for
from ..index.multipoint import MultipointSearcher
from ..obs import NULL_TRACER, activate, add_event, prometheus_text
from ..retrieval.database import FeatureDatabase
from ..retrieval.methods import FeedbackMethod, QclusterMethod, QueryLike
from ..system import EXACT_QUALITY, ResultPage, ResultQuality
from .cache import ResultCache, fingerprint_query
from .degrade import DegradationPolicy, SessionGuard
from .metrics import ServiceMetrics
from .resilience import DeadlineBudget, ResiliencePolicy, retry_call
from .sessions import ManagedSession, SessionNotFound, SessionStore

__all__ = ["RetrievalService"]

#: Below this many rows per shard, thread fan-out costs more than the
#: NumPy kernel it parallelizes.
_MIN_SHARD_ROWS = 1024

#: Chaos-injection site: fires per per-shard top-k task, keyed by the
#: shard's global row offset.  Errors here are retried with backoff; a
#: shard that exhausts its retries is dropped from the merge and the
#: page is marked ``shard_failed``.
_SITE_SHARD = register_site("shard.scan", "per-shard top-k scan task")


class RetrievalService:
    """Serve many concurrent feedback sessions over one collection.

    Args:
        database: a :class:`FeatureDatabase` or a raw ``(n, p)`` feature
            matrix.
        method_factory: feedback strategy per session (default
            Qcluster; only Qcluster-backed sessions are checkpointable).
        k: default result-page size.
        use_index: serve queries through the :class:`HybridTree` with
            per-session node caches; ``False`` always uses the exact
            sharded scan.
        n_shards: shards for the parallel scan path; default sizes
            shards to at least ``_MIN_SHARD_ROWS`` rows and at most the
            worker count.
        max_workers: threads in the shared ranking pool (default: CPU
            count, capped at 8).
        capacity: maximum in-memory sessions (LRU-evicted beyond).
        ttl_seconds: idle session lifetime before eviction.
        checkpoint_dir: where eviction checkpoints live; enables
            sessions to survive process restarts.
        cache_size: result-cache capacity in pages (0 disables).
        soft_deadline_s: per-query latency budget for the index path.
        deadline_trip: consecutive deadline misses before a session is
            pinned to the fallback scan.
        resilience: retry / request-deadline / hedging knobs (see
            :class:`~repro.service.resilience.ResiliencePolicy`); the
            default retries idempotent stages three times, with no
            request deadline and no hedging.
        metrics: share an external :class:`ServiceMetrics` if desired.
        tracer: a :class:`~repro.obs.Tracer` recording per-request span
            trees (classify/merge/compile/scan/refine stages with
            algorithmic events); default is the no-op
            :data:`~repro.obs.NULL_TRACER`, whose overhead is
            negligible (see ``benchmarks/test_obs_overhead.py``).
    """

    def __init__(
        self,
        database: Union[FeatureDatabase, np.ndarray],
        *,
        method_factory: Callable[[], FeedbackMethod] = QclusterMethod,
        k: int = 20,
        use_index: bool = True,
        n_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        capacity: int = 256,
        ttl_seconds: Optional[float] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        cache_size: int = 128,
        soft_deadline_s: Optional[float] = None,
        deadline_trip: int = 1,
        resilience: Optional[ResiliencePolicy] = None,
        metrics: Optional[ServiceMetrics] = None,
        tracer=None,
    ) -> None:
        if isinstance(database, FeatureDatabase):
            vectors = database.vectors
        else:
            vectors = np.atleast_2d(np.asarray(database, dtype=float))
        # Stored once, C-contiguous float64: shards are then contiguous
        # row views and the distance kernels never re-convert or copy
        # the database on the hot path.
        vectors = np.ascontiguousarray(vectors, dtype=float)
        if vectors.shape[0] == 0:
            raise ValueError("cannot serve an empty database")
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.vectors = vectors
        self.k = min(k, vectors.shape[0])
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.policy = DegradationPolicy(
            soft_deadline_s=soft_deadline_s, trip_after=deadline_trip
        )
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        self.store = SessionStore(
            capacity=capacity,
            ttl_seconds=ttl_seconds,
            checkpoint_dir=checkpoint_dir,
            method_factory=method_factory,
            metrics=self.metrics,
            retry=self.resilience.retry,
        )
        self.cache = ResultCache(cache_size)
        self._method_factory = method_factory
        self._tree = HybridTree(vectors) if use_index else None
        if max_workers is None:
            max_workers = min(8, os.cpu_count() or 1)
        if n_shards is None:
            n_shards = max(1, min(max_workers, vectors.shape[0] // _MIN_SHARD_ROWS))
        if n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {n_shards}")
        bounds = np.linspace(0, vectors.shape[0], n_shards + 1, dtype=int)
        self._shards: List[np.ndarray] = [
            vectors[bounds[i] : bounds[i + 1]] for i in range(n_shards)
        ]
        # Global row id of each shard's first row: per-shard top-k
        # results are translated back to database ids before merging.
        self._shard_offsets: List[int] = [int(b) for b in bounds[:-1]]
        self._executor = (
            ThreadPoolExecutor(
                max_workers=min(max_workers, n_shards),
                thread_name_prefix="repro-rank",
            )
            if n_shards > 1
            else None
        )
        self._clock = time.monotonic

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of served database objects."""
        return self.vectors.shape[0]

    @property
    def n_shards(self) -> int:
        """Shards the parallel scan path fans out over."""
        return len(self._shards)

    def __enter__(self) -> "RetrievalService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the ranking thread pool (sessions stay restorable)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # The service API
    # ------------------------------------------------------------------

    def create_session(
        self,
        query: Union[int, Sequence[float], np.ndarray],
        *,
        session_id: Optional[str] = None,
    ) -> str:
        """Open a feedback session; returns its id.

        Args:
            query: a database row index (query-by-id) or an explicit
                feature vector (query-by-example).
            session_id: caller-chosen id; defaults to a fresh UUID hex.
        """
        with activate(self.tracer), self.tracer.span("create_session") as span, self.metrics.time("create"):
            if isinstance(query, (int, np.integer)):
                if not 0 <= int(query) < self.size:
                    raise IndexError(f"query id {query} out of range")
                point = self.vectors[int(query)]
            else:
                point = np.asarray(query, dtype=float)
                if point.ndim != 1 or point.shape[0] != self.vectors.shape[1]:
                    raise ValueError(
                        f"query vector must have shape ({self.vectors.shape[1]},), "
                        f"got {point.shape}"
                    )
            if session_id is None:
                session_id = uuid.uuid4().hex
            elif session_id in self.store:
                raise ValueError(f"session id {session_id!r} already exists")
            method = self._method_factory()
            session = ManagedSession(
                session_id=session_id,
                method=method,
                query=method.start(point),
                guard=SessionGuard(self.policy),
                genesis=np.array(point, dtype=float, copy=True),
            )
            self.store.put(session)
            self.metrics.increment("sessions_created")
            span.set("session_id", session_id)
        return session_id

    def query(self, session_id: str, k: Optional[int] = None) -> ResultPage:
        """Current ranked result page for a session (cached)."""
        k = self._clamp_k(k)
        with activate(self.tracer), self.tracer.span(
            "query", session_id=session_id, k=k
        ):
            budget = self.resilience.budget(clock=self._clock)
            with self.store.lease(session_id) as session:
                with self.metrics.time("query"):
                    page = self._rank(session, k, budget)
        self.metrics.increment("queries")
        return page

    def feedback(
        self,
        session_id: str,
        relevant_ids: Sequence[int],
        scores: Optional[Sequence[float]] = None,
        k: Optional[int] = None,
    ) -> ResultPage:
        """Absorb one round of judgments; returns the refreshed page.

        Args:
            relevant_ids: database ids the user marked relevant.
            scores: optional per-id relevance scores.
            k: page size for the refreshed ranking.
        """
        k = self._clamp_k(k)
        ids = [int(i) for i in relevant_ids]
        for image_id in ids:
            if not 0 <= image_id < self.size:
                raise IndexError(f"image id {image_id} out of range")
        with activate(self.tracer), self.tracer.span(
            "feedback", session_id=session_id, n_relevant=len(ids), k=k
        ) as span:
            budget = self.resilience.budget(clock=self._clock)
            with self.store.lease(session_id) as session:
                with self.metrics.time("feedback"):
                    if session.pending_reasons:
                        # These judgments were formed on a degraded page,
                        # so the feedback trajectory is now influenced by
                        # the lost coverage: the session stays marked
                        # from here on.
                        session.provenance = tuple(
                            dict.fromkeys(
                                session.provenance + session.pending_reasons
                            )
                        )
                        session.pending_reasons = ()
                    if ids:
                        session.query = session.method.feedback(
                            self.vectors[ids], scores
                        )
                    session.iteration += 1
                    if session.guard is not None:
                        session.guard.reset_for_new_query()
                    self.cache.invalidate(session_id)
                with self.metrics.time("query"):
                    page = self._rank(session, k, budget)
                span.set("iteration", session.iteration)
        self.metrics.increment("feedbacks")
        return page

    def close(self, session_id: str) -> None:
        """End a session, dropping its state, checkpoint and cache."""
        if not self.store.remove(session_id):
            raise SessionNotFound(session_id)
        self.cache.invalidate(session_id)
        self.metrics.increment("sessions_closed")

    def metrics_snapshot(self) -> dict:
        """Operational snapshot: counters, latencies, cache, store."""
        snapshot = self.metrics.snapshot()
        snapshot["store"] = {
            "live_sessions": len(self.store),
            "archived_sessions": len(self.store.archived_ids),
            "capacity": self.store.capacity,
        }
        snapshot["cache"] = {
            "pages": len(self.cache),
            "capacity": self.cache.capacity,
            "hit_rate": self.cache.hit_rate,
            "corruptions": self.cache.corruptions,
        }
        snapshot["kernels"] = default_kernel_cache().stats()
        return snapshot

    def prometheus_metrics(self) -> str:
        """The operational snapshot in Prometheus text format (v0.0.4).

        Includes span/event aggregates when the service was built with a
        recording tracer.
        """
        return prometheus_text(self.metrics_snapshot(), tracer=self.tracer)

    # ------------------------------------------------------------------
    # Ranking internals
    # ------------------------------------------------------------------

    def _clamp_k(self, k: Optional[int]) -> int:
        if k is None:
            return self.k
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        return min(k, self.size)

    def _rank(
        self, session: ManagedSession, k: int, budget: DeadlineBudget
    ) -> ResultPage:
        key = fingerprint_query(session.query, k)
        # The cache is an optimization: any failure inside it (including
        # an injected one) is just a miss, never a failed query.
        cached = None
        try:
            cached = self.cache.get(key)
        except Exception:
            self.metrics.increment("cache_errors")
            add_event("result_cache", outcome="error")
        if cached is not None:
            self.metrics.increment("cache_hits")
            add_event("result_cache", outcome="hit")
            ids, distances = cached
            reasons: Tuple[str, ...] = ()
        else:
            self.metrics.increment("cache_misses")
            add_event("result_cache", outcome="miss")
            ids, distances, reasons = self._compute_rank(session, k, budget)
            if not reasons:
                # Only exact pages are cached — a later hit must never
                # replay a transient coverage loss.
                try:
                    self.cache.put(key, ids, distances, owner=session.session_id)
                except Exception:
                    self.metrics.increment("cache_errors")
        if reasons:
            session.pending_reasons = tuple(
                dict.fromkeys(session.pending_reasons + reasons)
            )
        quality = self._quality(session, reasons)
        if quality.is_exact:
            self.metrics.increment("results_exact")
        else:
            self.metrics.increment("results_degraded")
            for reason in quality.reasons:
                self.metrics.increment(f"degraded_reason_{reason}")
            add_event(
                "result_quality",
                level=quality.level,
                reasons=",".join(quality.reasons),
            )
        return ResultPage(
            ids=ids,
            distances=distances,
            iteration=session.iteration,
            quality=quality,
        )

    @staticmethod
    def _quality(
        session: ManagedSession, reasons: Tuple[str, ...] = ()
    ) -> ResultQuality:
        """The page's provenance: sticky session reasons plus this scan's."""
        combined = session.provenance + tuple(reasons)
        if not combined:
            return EXACT_QUALITY
        return ResultQuality.degraded(*combined)

    def _kernel_cache_event(self, event: str) -> None:
        self.metrics.increment(f"kernel_cache_{event}")

    def _compute_rank(self, session: ManagedSession, k: int, budget: DeadlineBudget):
        # Compile the query's distance kernels exactly once per ranking
        # — the index path, every shard of the fallback scan, and any
        # later page fetch for this query all reuse the same compiled
        # evaluators (shared process-wide, content-addressed by cluster
        # state, so sessions asking the same question share them too).
        # Compilation is a pure function of the cluster state, so
        # transient failures retry with backoff under the request budget.
        def on_compile_retry(attempt: int, error: BaseException) -> None:
            self.metrics.increment("compile_retries")
            add_event("retry", stage="compile", attempt=attempt, error=repr(error))

        retry_call(
            lambda: ensure_compiled(session.query, on_event=self._kernel_cache_event),
            self.resilience.retry,
            deadline=budget,
            on_retry=on_compile_retry,
        )
        guard = session.guard
        if self._tree is not None and (guard is None or not guard.active):
            if session.searcher is None:
                session.searcher = MultipointSearcher(self._tree)
            start = self._clock()
            with self.tracer.span("scan", path="index", k=k) as span:
                result = None
                try:
                    result = session.searcher.search(session.query, k)
                except Exception:
                    span.set("error", True)
                    self.metrics.increment("degraded_error")
                    if guard is not None:
                        guard.record_error()
            if result is not None:
                elapsed = self._clock() - start
                self.metrics.observe("index_search", elapsed)
                self.metrics.increment(
                    "index_node_accesses", result.cost.node_accesses
                )
                self.metrics.increment("index_io_accesses", result.cost.io_accesses)
                if result.cost.candidates_pruned:
                    self.metrics.increment(
                        "candidates_pruned", result.cost.candidates_pruned
                    )
                self.metrics.increment(
                    "candidates_refined", result.cost.distance_evaluations
                )
                if guard is not None and guard.record_elapsed(elapsed):
                    self.metrics.increment("degraded_deadline")
                return result.indices, result.distances, ()
        with self.tracer.span(
            "scan", path="fallback", k=k, shards=self.n_shards
        ):
            with self.metrics.time("fallback_scan"):
                self.metrics.increment("fallback_scans")
                self.metrics.increment(
                    "fallback_node_accesses",
                    -(-self.size // page_capacity_for(self.vectors.shape[1])),
                )
                return self._sharded_scan(session.query, k, budget)

    @staticmethod
    def _shard_topk(query: QueryLike, shard: np.ndarray, offset: int, k: int):
        """Exact per-shard top-``k``: ``(global ids, distances, pruned, refined)``.

        Routed through the progressive filter-and-refine scan when it
        applies (large shard, eligible query); the fallback computes
        every distance.  Either way the ids/distances returned are the
        shard's exact top-k under the ``(distance, id)`` order.
        """
        fault_point(_SITE_SHARD, key=str(offset))
        k = min(k, shard.shape[0])
        progressive = progressive_topk(shard, query, k)
        if progressive is not None:
            return (
                progressive.indices + offset,
                progressive.distances,
                progressive.stats.pruned,
                progressive.stats.refined,
            )
        distances = query.distances(shard)
        top = exact_top_k(distances, k)
        return top + offset, distances[top], 0, shard.shape[0]

    def _run_shard(
        self,
        query: QueryLike,
        shard: np.ndarray,
        offset: int,
        k: int,
        budget: DeadlineBudget,
    ):
        """One shard's exact top-``k`` with bounded retries.

        Scanning a read-only shard is idempotent, so transient failures
        (including injected ``shard.scan`` faults) are retried with
        backoff until the retry budget or the request deadline runs out;
        the final error propagates for :meth:`_sharded_scan` to absorb.
        """

        def on_retry(attempt: int, error: BaseException) -> None:
            self.metrics.increment("shard_retries")
            add_event(
                "retry",
                stage="shard_scan",
                shard_offset=offset,
                attempt=attempt,
                error=repr(error),
            )

        return retry_call(
            lambda: self._shard_topk(query, shard, offset, k),
            self.resilience.retry,
            deadline=budget,
            on_retry=on_retry,
        )

    @staticmethod
    def _race(futures: List["Future"]):
        """First successful result among duplicate shard tasks.

        Hedge copies compute byte-identical data from the same immutable
        shard, so whichever finishes first is *the* answer; losers are
        discarded when they eventually complete.  Returns ``(result,
        errors)`` with ``result=None`` when every copy raised.
        """
        errors: List[BaseException] = []
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                try:
                    return future.result(), errors
                except Exception as error:  # noqa: PERF203 — per-copy verdict
                    errors.append(error)
        return None, errors

    def _sharded_scan(
        self, query: QueryLike, k: int, budget: Optional[DeadlineBudget] = None
    ):
        """Exact top-``k`` by scanning all shards, in parallel when possible.

        Each row's aggregate distance depends on that row alone, so
        merging per-shard top-k candidates under the deterministic
        ``(distance, id)`` order equals the single-matrix scan exactly,
        regardless of thread timing (futures are gathered in shard
        order) and of how much each shard's progressive filter pruned.

        Resilience: every shard task retries transient errors (see
        :meth:`_run_shard`); when hedging is enabled, shards still
        running after ``hedge_after_s`` are re-dispatched to a duplicate
        task and the copies race.  A shard that still fails is dropped
        from the merge — the remaining coverage is returned with
        ``("shard_failed", ...)`` reasons (plus ``"deadline"`` when the
        request budget had expired) for the caller to surface as
        :class:`~repro.system.ResultQuality`.  Only when *every* shard
        fails does the query itself fail.

        Returns:
            ``(ids, distances, reasons)`` — reasons empty for full
            coverage.
        """
        if budget is None:
            budget = DeadlineBudget(None, clock=self._clock)
        last_error: Optional[BaseException] = None
        failed = 0
        if self._executor is None:
            parts = [self._run_shard(query, self.vectors, 0, k, budget)]
        else:
            # Each worker runs under a copy of the caller's context so
            # trace spans/events recorded on shard threads attach to
            # this request's scan span (a Context can only be entered
            # once, hence one copy per future).
            def submit(shard: np.ndarray, offset: int) -> "Future":
                return self._executor.submit(
                    contextvars.copy_context().run,
                    self._run_shard,
                    query,
                    shard,
                    offset,
                    k,
                    budget,
                )

            copies: List[List["Future"]] = [
                [submit(shard, offset)]
                for shard, offset in zip(self._shards, self._shard_offsets)
            ]
            hedge_after = self.resilience.hedge_after_s
            if hedge_after is not None:
                _, stragglers = wait(
                    [entry[0] for entry in copies],
                    timeout=min(hedge_after, budget.remaining)
                    if budget.remaining != float("inf")
                    else hedge_after,
                )
                if stragglers and not budget.expired:
                    for entry, shard, offset in zip(
                        copies, self._shards, self._shard_offsets
                    ):
                        if entry[0] in stragglers:
                            entry.append(submit(shard, offset))
                            self.metrics.increment("hedges")
                            add_event("hedge", shard_offset=offset)
            parts = []
            for entry, offset in zip(copies, self._shard_offsets):
                result, errors = self._race(entry)
                if result is None:
                    failed += 1
                    self.metrics.increment("shard_failures")
                    if errors:
                        last_error = errors[-1]
                    add_event(
                        "shard_failed",
                        shard_offset=offset,
                        error=repr(last_error) if last_error else "",
                    )
                else:
                    parts.append(result)
        if not parts:
            # Zero coverage is a failed query, not a silently-empty page.
            assert last_error is not None
            raise last_error
        reasons: Tuple[str, ...] = ()
        if failed:
            reasons = ("shard_failed",)
            if budget.expired:
                reasons = ("deadline", "shard_failed")
        ids = np.concatenate([part[0] for part in parts])
        distances = np.concatenate([part[1] for part in parts])
        pruned = sum(part[2] for part in parts)
        refined = sum(part[3] for part in parts)
        if pruned:
            self.metrics.increment("candidates_pruned", int(pruned))
        self.metrics.increment("candidates_refined", int(refined))
        top = exact_top_k(distances, min(k, ids.shape[0]), tie_break=ids)
        return ids[top], distances[top], reasons
