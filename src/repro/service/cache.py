"""LRU result-page cache keyed by a fingerprint of the query state.

Within one feedback iteration a user (or a paging UI) fetches the same
ranked list repeatedly — page 1, page 2, a refresh — while the
disjunctive query does not change.  The ranking is a pure function of
the query's cluster statistics (means, ``S_i^{-1}``, relevance masses)
and ``k`` over a fixed database, so those repeated fetches can be
served from memory.

:func:`fingerprint_query` hashes exactly that state, which makes the
cache *content-addressed*: a feedback round changes the cluster
statistics, the fingerprint moves, and stale entries simply age out of
the LRU.  Entries are additionally tagged with the owning session id so
:meth:`ResultCache.invalidate` can drop a session's pages eagerly on
feedback or close.

A cache must never turn bit rot into a wrong answer: every stored page
carries a ``zlib.crc32`` over its arrays, verified on :meth:`get` — a
mismatch evicts the entry and reports a miss (counted in
:attr:`corruptions`), so a damaged entry costs one recomputation, not
one wrong page.  The ``cache.get`` / ``cache.put`` fault-injection
sites let the chaos suite provoke exactly that.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import zlib
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Set, Tuple

import numpy as np

from ..core.kernels import fingerprint_cluster_state
from ..faults import fault_point, register_site
from ..obs import add_event

__all__ = ["fingerprint_query", "ResultCache"]

_SITE_CACHE_GET = register_site("cache.get", "result-cache lookup")
_SITE_CACHE_PUT = register_site("cache.put", "result-page arrays on their way into the cache")


def _page_crc(ids: np.ndarray, distances: np.ndarray) -> int:
    """``zlib.crc32`` over both arrays' bytes and shapes."""
    crc = zlib.crc32(np.ascontiguousarray(ids).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(distances).tobytes(), crc)
    return zlib.crc32(struct.pack("<qq", ids.shape[0], distances.shape[0]), crc)


def fingerprint_query(query, k: int, scope: Optional[str] = None) -> str:
    """Digest of a disjunctive query's ranking-relevant state plus ``k``.

    Two queries with byte-identical cluster means, inverse covariance
    matrices and relevance masses (in order) and the same ``k`` produce
    the same fingerprint; any change to any of those produces a
    different one.

    The cluster-state part is the same
    :func:`~repro.core.kernels.fingerprint_cluster_state` digest that
    content-addresses compiled distance kernels, so a result-cache key
    and a kernel-cache key for the same query state derive from one
    hash of the underlying statistics.

    Args:
        scope: optional dataset identity mixed into the digest — the
            service passes the feature store's ``content_hash:epoch``
            fingerprint, so pages ranked over two stores (or two
            epochs of one store) can never alias.  ``None`` (the
            in-memory default) preserves the historical key.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(struct.pack("<q", int(k)))
    digest.update(fingerprint_cluster_state(query).encode("ascii"))
    if scope is not None:
        digest.update(b"|")
        digest.update(scope.encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """Thread-safe LRU cache of ranked result pages.

    Args:
        capacity: maximum number of cached pages; the least recently
            used entry is discarded on overflow.  ``0`` disables caching
            (every :meth:`get` misses).
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        # key -> (ids, distances, crc32-at-insert)
        self._pages: "OrderedDict[str, Tuple[np.ndarray, np.ndarray, int]]" = OrderedDict()
        self._owner_keys: Dict[Hashable, Set[str]] = {}
        self._key_owner: Dict[str, Hashable] = {}
        self.hits = 0
        self.misses = 0
        self.corruptions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)`` since construction (0 when cold)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, key: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(ids, distances)`` for ``key``, or ``None`` on a miss.

        Verifies the entry's insert-time checksum: a corrupt entry is
        evicted and reported as a miss (never served), so callers
        recompute instead of returning damaged rankings.  May raise
        when a ``cache.get`` error fault is armed — callers treat any
        cache exception as a miss.
        """
        fault_point(_SITE_CACHE_GET)
        with self._lock:
            entry = self._pages.get(key)
            if entry is None:
                self.misses += 1
                return None
            ids, distances, crc = entry
            if _page_crc(ids, distances) != crc:
                del self._pages[key]
                self._untag(key)
                self.corruptions += 1
                self.misses += 1
                add_event("cache_corruption", key=key)
                return None
            self._pages.move_to_end(key)
            self.hits += 1
            return ids, distances

    def put(
        self,
        key: str,
        ids: np.ndarray,
        distances: np.ndarray,
        owner: Optional[Hashable] = None,
    ) -> None:
        """Insert a page, tagging it with ``owner`` for invalidation.

        The checksum is computed over the *caller's* arrays before the
        ``cache.put`` fault site sees them — injected corruption lands
        in storage but is caught by :meth:`get`'s validation, exactly
        like post-insert bit rot.
        """
        if self.capacity == 0:
            return
        crc = _page_crc(ids, distances)
        stored = fault_point(_SITE_CACHE_PUT, payload=(ids, distances))
        if not isinstance(stored, tuple) or len(stored) != 2:
            return  # total corruption: nothing worth storing
        ids, distances = stored
        with self._lock:
            if key in self._pages:
                self._pages.move_to_end(key)
                self._pages[key] = (ids, distances, crc)
                return
            self._pages[key] = (ids, distances, crc)
            if owner is not None:
                self._owner_keys.setdefault(owner, set()).add(key)
                self._key_owner[key] = owner
            while len(self._pages) > self.capacity:
                evicted, _ = self._pages.popitem(last=False)
                self._untag(evicted)

    def invalidate(self, owner: Hashable) -> int:
        """Drop every page tagged with ``owner``; returns how many."""
        with self._lock:
            keys = self._owner_keys.pop(owner, set())
            for key in keys:
                self._pages.pop(key, None)
                self._key_owner.pop(key, None)
            return len(keys)

    def clear(self) -> None:
        """Drop every cached page (hit/miss counters are kept)."""
        with self._lock:
            self._pages.clear()
            self._owner_keys.clear()
            self._key_owner.clear()

    def _untag(self, key: str) -> None:
        owner = self._key_owner.pop(key, None)
        if owner is not None:
            remaining = self._owner_keys.get(owner)
            if remaining is not None:
                remaining.discard(key)
                if not remaining:
                    del self._owner_keys[owner]
