"""Thread-safe session store with TTL/LRU eviction and checkpoints.

Relevance feedback is stateful by construction: the whole point of the
paper's loop is per-user cluster state carried across rounds.  A
service therefore needs a place where many concurrent
:class:`~repro.core.qcluster.QclusterEngine`-backed sessions live,
bounded in memory, without ever *losing* a user's accumulated feedback.

:class:`SessionStore` provides that:

* sessions are keyed by id and handed out through :meth:`lease`, which
  pins the session (so the evictor skips it) and holds its per-session
  lock for the duration of the request — distinct sessions proceed in
  parallel, operations on one session serialize;
* capacity overflow evicts the least recently used unpinned session and
  idle sessions past their TTL are evicted on the next store operation;
* eviction is not deletion: the engine state is checkpointed through
  :mod:`repro.extensions.persistence` (to ``checkpoint_dir`` when
  given, else to an in-memory archive) and transparently restored on
  the next lease, so an evicted session resumes exactly where it left
  off — and with a ``checkpoint_dir`` it survives a process restart.

Sessions whose feedback method does not expose a checkpointable
``QclusterEngine`` (e.g. the baselines) are still stored and served;
they are simply dropped on eviction, counted as ``sessions_lost``.

Checkpoint files are written in a CRC-validated two-part format
(header line with a ``zlib.crc32`` of the payload plus the session's
*genesis* query, then the engine-state payload).  A damaged file never
surfaces as a raw ``json.JSONDecodeError``: restore quarantines it
(renamed ``<id>.json.corrupt`` for forensics) and either *rebuilds* a
fresh session from the still-readable genesis record — marked
``checkpoint_rebuilt`` on every subsequent response — or, when nothing
is salvageable, raises the typed :class:`CheckpointCorruption` so the
id becomes free for a clean re-create.  Checkpoint reads retry
transient errors with bounded backoff; a failed checkpoint *write*
falls back to the in-memory archive instead of losing feedback state.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.qcluster import QclusterEngine
from ..extensions.persistence import engine_from_dict, engine_to_dict
from ..faults import fault_point, register_site
from ..obs import add_event
from ..retrieval.methods import FeedbackMethod, QclusterMethod, QueryLike
from .degrade import SessionGuard
from .metrics import ServiceMetrics
from .resilience import RetryPolicy, retry_call

__all__ = [
    "SessionNotFound",
    "CheckpointCorruption",
    "ManagedSession",
    "SessionStore",
]

#: Checkpoint format written by this store (1 = legacy plain JSON).
CHECKPOINT_FORMAT = 2

_SITE_CHECKPOINT_SAVE = register_site(
    "checkpoint.save", "serialized checkpoint text on its way to disk"
)
_SITE_CHECKPOINT_RESTORE = register_site(
    "checkpoint.restore", "checkpoint file read during session restore"
)


class SessionNotFound(KeyError):
    """The session id is unknown, expired without a checkpoint, or closed."""


class CheckpointCorruption(SessionNotFound):
    """A checkpoint failed CRC or parse validation and was quarantined.

    Subclasses :class:`SessionNotFound` on purpose: callers that treat
    a missing session as "create a fresh one" keep working unchanged —
    the id is free again, because the damaged file was renamed to
    ``<id>.json.corrupt`` before this was raised.
    """

    def __init__(self, session_id: str, detail: str) -> None:
        self.session_id = session_id
        self.detail = detail
        super().__init__(f"{session_id}: corrupt checkpoint ({detail})")


@dataclass
class ManagedSession:
    """One live feedback session plus its service bookkeeping.

    Attributes:
        session_id: the store key.
        method: the feedback strategy owning the engine state.
        query: the current :class:`~repro.retrieval.methods.QueryLike`.
        iteration: feedback rounds completed (0 = initial query).
        searcher: per-session index searcher (node cache), if any.
        guard: degradation state machine, attached by the service.
        genesis: the session's initial query vector; duplicated into
            the checkpoint header so a corrupt payload can still be
            rebuilt into a fresh session instead of a dead id.
        provenance: sticky degradation reasons (``"checkpoint_rebuilt"``
            after a rebuild; the service adds scan-level reasons) —
            folded into every response's
            :class:`~repro.system.ResultQuality`.
        pending_reasons: reasons from degraded pages served since the
            last feedback round; promoted into :attr:`provenance` the
            moment the user judges one of those pages (and folded into
            checkpoints conservatively, since an evicted session cannot
            tell which page its eventual feedback judged).
        lock: serializes all operations on this session.
        pins: active leases; a pinned session is never evicted.
        last_access: store clock at the most recent lease.
        created: store clock at insertion.
    """

    session_id: str
    method: FeedbackMethod
    query: QueryLike
    iteration: int = 0
    searcher: Optional[object] = None
    guard: Optional[SessionGuard] = None
    genesis: Optional[np.ndarray] = None
    provenance: Tuple[str, ...] = ()
    pending_reasons: Tuple[str, ...] = ()
    lock: threading.RLock = field(default_factory=threading.RLock)
    pins: int = 0
    last_access: float = 0.0
    created: float = 0.0


class SessionStore:
    """Bounded, thread-safe home for many concurrent feedback sessions.

    Args:
        capacity: maximum number of *live* (in-memory) sessions; the
            least recently used unpinned session is evicted past this.
        ttl_seconds: idle time after which a session is evicted on the
            next store operation; ``None`` disables TTL eviction.
        checkpoint_dir: directory for eviction checkpoints.  When given,
            checkpoints are JSON files named ``<session_id>.json`` and
            restorable by a *new* store instance (process restart);
            when ``None`` an in-memory archive is used instead.
        method_factory: builds the method shell a checkpoint is
            restored into (its engine is then replaced wholesale).
        metrics: eviction/restore counters land here when provided.
        clock: monotonic time source (injectable for tests).
        retry: backoff policy for transient checkpoint-read errors
            (reads are idempotent; the default makes three attempts).
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_seconds: Optional[float] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        method_factory: Callable[[], FeedbackMethod] = QclusterMethod,
        metrics: Optional[ServiceMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._method_factory = method_factory
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        self._clock = clock
        self.retry = retry if retry is not None else RetryPolicy(base_delay_s=0.01)
        self._lock = threading.RLock()
        self._live: Dict[str, ManagedSession] = {}
        self._archive: Dict[str, Optional[dict]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._live)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return (
                session_id in self._live
                or session_id in self._archive
                or self._checkpoint_path(session_id) is not None
            )

    @property
    def live_ids(self) -> List[str]:
        """Ids of sessions currently resident in memory."""
        with self._lock:
            return list(self._live)

    @property
    def archived_ids(self) -> List[str]:
        """Ids of evicted sessions restorable from their checkpoint."""
        with self._lock:
            ids = {
                session_id
                for session_id, state in self._archive.items()
                if state is not None
            }
            if self.checkpoint_dir is not None:
                ids.update(path.stem for path in self.checkpoint_dir.glob("*.json"))
            return sorted(ids - set(self._live))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def put(self, session: ManagedSession) -> None:
        """Insert a freshly created session (evicting LRU on overflow)."""
        with self._lock:
            now = self._clock()
            session.created = now
            session.last_access = now
            self._live[session.session_id] = session
            self._archive.pop(session.session_id, None)
            self._sweep_expired()
            self._enforce_capacity()

    @contextmanager
    def lease(self, session_id: str) -> Iterator[ManagedSession]:
        """Borrow a session for one request.

        Restores from checkpoint when the session was evicted, pins it
        against eviction, and holds its per-session lock for the body.

        Raises:
            SessionNotFound: unknown id, or evicted without a
                checkpoint, or closed.
        """
        with self._lock:
            self._sweep_expired()
            session = self._live.get(session_id)
            if session is None:
                session = self._restore(session_id)
            # Pin BEFORE enforcing capacity: a freshly restored session
            # must not be chosen as its own eviction victim, or the
            # caller would mutate an orphaned object while the archive
            # keeps the stale checkpoint (a lost update).
            session.pins += 1
            session.last_access = self._clock()
            self._enforce_capacity()
        try:
            with session.lock:
                yield session
        finally:
            with self._lock:
                session.pins -= 1
                session.last_access = self._clock()

    def remove(self, session_id: str) -> bool:
        """Delete a session and its checkpoint; True if anything existed."""
        with self._lock:
            existed = self._live.pop(session_id, None) is not None
            existed = (self._archive.pop(session_id, None) is not None) or existed
            path = self._checkpoint_path(session_id)
            if path is not None:
                path.unlink()
                existed = True
            return existed

    def sweep(self) -> int:
        """Evict every idle-past-TTL session now; returns how many."""
        with self._lock:
            return self._sweep_expired()

    # ------------------------------------------------------------------
    # Eviction and checkpointing
    # ------------------------------------------------------------------

    def checkpoint_state(self, session: ManagedSession) -> Optional[dict]:
        """JSON-compatible snapshot of a session, or ``None``.

        Only methods carrying a :class:`QclusterEngine` (the service
        default) are checkpointable; everything the ranking depends on
        — cluster means, covariances, relevance masses, dedup state —
        round-trips through :mod:`repro.extensions.persistence`.
        """
        engine = getattr(session.method, "engine", None)
        if not isinstance(engine, QclusterEngine):
            return None
        genesis = session.genesis
        return {
            "engine": engine_to_dict(engine),
            "iteration": session.iteration,
            "genesis": None if genesis is None else [float(x) for x in genesis],
            # Pending (not yet judged) reasons are folded in: after a
            # round trip through eviction the session cannot tell which
            # page the user's eventual feedback judged, so it marks
            # itself conservatively.
            "provenance": list(
                dict.fromkeys(session.provenance + session.pending_reasons)
            ),
        }

    @staticmethod
    def encode_checkpoint(session_id: str, state: dict) -> str:
        """Serialize ``state`` in the CRC-validated two-part format.

        Line 1 is a small header carrying the payload's ``zlib.crc32``
        and length plus the genesis query; line 2 is the engine-state
        payload.  A torn (tail-truncated) write therefore loses the
        payload but keeps the header readable — exactly the record the
        rebuild path needs.
        """
        payload = json.dumps(state)
        header = json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "session_id": session_id,
                "iteration": state.get("iteration", 0),
                "genesis": state.get("genesis"),
                "provenance": state.get("provenance", []),
                "payload_crc32": zlib.crc32(payload.encode("utf-8")),
                "payload_len": len(payload),
            }
        )
        return header + "\n" + payload

    @staticmethod
    def decode_checkpoint(session_id: str, text: str) -> Tuple[str, dict]:
        """Validate and parse checkpoint ``text``.

        Returns:
            ``("full", state)`` when the payload passed CRC and parse
            validation (also accepts the legacy format-1 single-line
            JSON, which predates checksums); ``("genesis", header)``
            when the payload is damaged but the header's genesis record
            survives — the rebuild signal.

        Raises:
            CheckpointCorruption: nothing in the file is salvageable.
        """
        head, newline, payload = text.partition("\n")
        try:
            header = json.loads(head)
        except json.JSONDecodeError:
            raise CheckpointCorruption(session_id, "unparseable header") from None
        if not isinstance(header, dict):
            raise CheckpointCorruption(session_id, f"header is {type(header).__name__}")
        if header.get("format") != CHECKPOINT_FORMAT:
            # Legacy format 1: the whole text is the state dict, no CRC.
            if "engine" in header:
                return "full", header
            raise CheckpointCorruption(session_id, "unknown checkpoint format")
        intact = (
            bool(newline)
            and len(payload) == header.get("payload_len")
            and zlib.crc32(payload.encode("utf-8")) == header.get("payload_crc32")
        )
        if intact:
            try:
                state = json.loads(payload)
            except json.JSONDecodeError:
                intact = False
            else:
                return "full", state
        if header.get("genesis") is not None:
            return "genesis", header
        raise CheckpointCorruption(session_id, "payload damaged, no genesis record")

    def _evict(self, session: ManagedSession, reason: str) -> None:
        state = self.checkpoint_state(session)
        del self._live[session.session_id]
        if state is None:
            self._archive[session.session_id] = None
            self._metrics.increment("sessions_lost")
        elif self.checkpoint_dir is not None:
            try:
                text = self.encode_checkpoint(session.session_id, state)
                text = fault_point(
                    _SITE_CHECKPOINT_SAVE, key=session.session_id, payload=text
                )
                path = self.checkpoint_dir / f"{session.session_id}.json"
                path.write_text(text)
            except Exception:
                # A failed durable write must not lose feedback state:
                # degrade to the in-memory archive and say so.
                self._archive[session.session_id] = state
                self._metrics.increment("checkpoint_save_errors")
                add_event("checkpoint_save_failed", session_id=session.session_id)
        else:
            self._archive[session.session_id] = state
        self._metrics.increment("sessions_evicted")
        self._metrics.increment(f"sessions_evicted_{reason}")

    def _enforce_capacity(self) -> None:
        while len(self._live) > self.capacity:
            victims = sorted(
                (s for s in self._live.values() if s.pins == 0),
                key=lambda s: s.last_access,
            )
            if not victims:
                return  # everything is pinned; allow temporary overshoot
            self._evict(victims[0], reason="capacity")

    def _sweep_expired(self) -> int:
        if self.ttl_seconds is None:
            return 0
        cutoff = self._clock() - self.ttl_seconds
        expired = [
            s for s in self._live.values() if s.pins == 0 and s.last_access < cutoff
        ]
        for session in expired:
            self._evict(session, reason="ttl")
        return len(expired)

    def _checkpoint_path(self, session_id: str) -> Optional[Path]:
        if self.checkpoint_dir is None:
            return None
        path = self.checkpoint_dir / f"{session_id}.json"
        return path if path.exists() else None

    def _quarantine(self, path: Path, session_id: str, action: str) -> None:
        """Move a damaged checkpoint aside (``<id>.json.corrupt``).

        The original name is freed — the id can be re-created cleanly —
        while the damaged bytes stay on disk for forensics.
        """
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            path.unlink(missing_ok=True)
        self._metrics.increment("checkpoints_corrupt")
        self._metrics.increment("checkpoints_quarantined")
        add_event("checkpoint_corruption", session_id=session_id, action=action)

    def _read_checkpoint(self, path: Path, session_id: str) -> str:
        """Read the checkpoint file, retrying transient errors."""

        def read() -> str:
            fault_point(_SITE_CHECKPOINT_RESTORE, key=session_id)
            return path.read_text()

        def on_retry(attempt: int, error: BaseException) -> None:
            self._metrics.increment("restore_retries")
            add_event(
                "retry", stage="checkpoint_restore", attempt=attempt, error=repr(error)
            )

        return retry_call(read, self.retry, on_retry=on_retry)

    def _rebuild_from_genesis(self, session_id: str, header: dict) -> ManagedSession:
        """Fresh session from the checkpoint header's genesis query.

        Accumulated feedback is gone — the session restarts at
        iteration 0 and carries the sticky ``checkpoint_rebuilt``
        provenance so every subsequent response is explicitly degraded.
        """
        genesis = np.asarray(header["genesis"], dtype=float)
        method = self._method_factory()
        session = ManagedSession(
            session_id=session_id,
            method=method,
            query=method.start(genesis),
            iteration=0,
            genesis=genesis,
            provenance=("checkpoint_rebuilt",),
        )
        self._metrics.increment("sessions_rebuilt")
        return session

    def _restore(self, session_id: str) -> ManagedSession:
        if session_id in self._archive:
            state = self._archive.pop(session_id)
            if state is None:
                raise SessionNotFound(
                    f"{session_id}: evicted without a checkpoint "
                    "(its feedback method is not persistable)"
                )
            session = self._session_from_state(session_id, state)
        else:
            path = self._checkpoint_path(session_id)
            if path is None:
                raise SessionNotFound(session_id)
            text = self._read_checkpoint(path, session_id)
            try:
                mode, state = self.decode_checkpoint(session_id, text)
            except CheckpointCorruption:
                self._quarantine(path, session_id, action="quarantined")
                raise
            if mode == "genesis":
                self._quarantine(path, session_id, action="rebuilt")
                session = self._rebuild_from_genesis(session_id, state)
            else:
                path.unlink()
                session = self._session_from_state(session_id, state)
        now = self._clock()
        session.created = now
        session.last_access = now
        self._live[session_id] = session
        self._metrics.increment("sessions_restored")
        return session

    def _session_from_state(self, session_id: str, state: dict) -> ManagedSession:
        """Rehydrate a full (CRC-valid or in-memory) checkpoint state."""
        engine = engine_from_dict(state["engine"])
        method = self._method_factory()
        if not hasattr(method, "engine"):
            raise SessionNotFound(
                f"{session_id}: checkpoint exists but method factory "
                f"{self._method_factory!r} cannot host a restored engine"
            )
        method.engine = engine
        if hasattr(method, "config"):
            method.config = engine.config
        genesis = state.get("genesis")
        return ManagedSession(
            session_id=session_id,
            method=method,
            query=engine.current_query(),
            iteration=int(state["iteration"]),
            genesis=None if genesis is None else np.asarray(genesis, dtype=float),
            provenance=tuple(state.get("provenance", ())),
        )
