"""Graceful degradation policy for the query path.

The primary ranking path goes through the :class:`~repro.index.
hybridtree.HybridTree` best-first search with the cross-iteration node
cache — the fast path when it behaves.  Under load, with a corrupted
index, or with a query whose contours force the tree to open most of
its nodes, that path can blow its latency budget or raise outright.
The service never fails such a query: it falls back to the exact
sharded linear scan (identical results, predictable cost) and records
the downgrade.

:class:`DegradationPolicy` is the static configuration; one
:class:`SessionGuard` per session tracks consecutive soft-deadline
misses and trips the session onto the fallback path so a query mix
that is pathological for the tree stops paying for it every round.
Feedback resets the guard (a refined query has a new shape, so the
tree deserves another chance) unless the trip was caused by an error.

Degrading *paths* is lossless — the fallback scan is exact.  When the
service loses coverage or state instead (a shard dropped after its
retry budget, a session rebuilt from a corrupt checkpoint), the
response says so explicitly through the :class:`ResultQuality`
provenance re-exported here (it lives next to
:class:`~repro.system.ResultPage`, whose field it is); the retry /
deadline / hedging machinery itself is in
:mod:`repro.service.resilience`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..system import EXACT_QUALITY, ResultQuality

__all__ = ["DegradationPolicy", "SessionGuard", "ResultQuality", "EXACT_QUALITY"]


@dataclass(frozen=True)
class DegradationPolicy:
    """When and how the index path is abandoned.

    Attributes:
        soft_deadline_s: per-query latency budget for the index search;
            ``None`` disables deadline-based degradation.  The deadline
            is *soft*: an in-flight search is never cancelled, but a
            miss counts a strike against the session.
        trip_after: consecutive deadline strikes before the session is
            pinned to the linear-scan fallback.
        prefer_ann: where a tripped session lands.  ``False`` (default)
            keeps the lossless contract: the fallback is the exact
            sharded scan, identical results at predictable cost.
            ``True`` trades that exactness *honestly* — tripped
            sessions are served by the spill-tree ANN tier and their
            pages carry ``ResultQuality(approximate,
            estimated_recall=...)``.  Requires the service to have been
            built with its ANN tier.
    """

    soft_deadline_s: Optional[float] = None
    trip_after: int = 1
    prefer_ann: bool = False

    def __post_init__(self) -> None:
        if self.soft_deadline_s is not None and self.soft_deadline_s <= 0:
            raise ValueError(
                f"soft_deadline_s must be positive, got {self.soft_deadline_s}"
            )
        if self.trip_after < 1:
            raise ValueError(f"trip_after must be at least 1, got {self.trip_after}")


class SessionGuard:
    """Per-session degradation state machine.

    The guard is consulted before every ranking (:attr:`active` — use
    the fallback?) and informed after every index search
    (:meth:`record_elapsed` / :meth:`record_error`).
    """

    def __init__(self, policy: DegradationPolicy) -> None:
        self.policy = policy
        self.strikes = 0
        self._tripped_by: Optional[str] = None

    @property
    def active(self) -> bool:
        """True when the session should bypass the index entirely."""
        return self._tripped_by is not None

    @property
    def tripped_by(self) -> Optional[str]:
        """``"error"``, ``"deadline"`` or ``None`` (not tripped)."""
        return self._tripped_by

    def record_error(self) -> None:
        """The index search raised; pin the session to the fallback."""
        self._tripped_by = "error"

    def record_elapsed(self, seconds: float) -> bool:
        """Score one completed index search against the soft deadline.

        Returns:
            True when this observation was a deadline miss (the caller
            records the ``degraded_deadline`` metric exactly once per
            miss).
        """
        deadline = self.policy.soft_deadline_s
        if deadline is None or seconds <= deadline:
            self.strikes = 0
            return False
        self.strikes += 1
        if self.strikes >= self.policy.trip_after and self._tripped_by is None:
            self._tripped_by = "deadline"
        return True

    def reset_for_new_query(self) -> None:
        """Give the index another chance after feedback reshapes the query.

        An error trip is sticky — a broken index does not heal because
        the query moved.
        """
        if self._tripped_by == "deadline":
            self._tripped_by = None
        self.strikes = 0
