"""Cross-session micro-batching of compatible in-flight queries.

At millions of users, concurrent sessions hit the same dataset with
structurally similar compiled queries — yet each request scans alone,
re-reading the database from main memory once per query.  This module
adds the missing amortization axis: a :class:`BatchingExecutor`
coalesces compatible in-flight queries into one micro-batch, and the
batched scan (:func:`~repro.core.progressive.progressive_topk_batch` /
:func:`~repro.parallel.scan_shard_topk_batch`) reads each database
tile once per *batch* instead of once per *query*, turning a
memory-bound pass into a cache-hot stacked evaluation.

Compatibility is explicit and conservative: only requests sharing a
:func:`compatibility_key` — same store fingerprint/dataset scope, same
dimensionality, same covariance-scheme shape (the sorted kernel kinds
of the compiled query) — ride in one micro-batch, so the batch
executor never has to reconcile structurally different scans.

**Exactness contract.**  Batching changes *when* a query runs and what
else shares its database pass — never its result.  Exact distances are
always computed through each query's own compiled kernels (whose
row-subset evaluations are bitwise identical regardless of what else
is in the batch); cross-query work sharing happens only in the
slack-protected level-0 bounds.  Every page is therefore byte-identical
to per-query serial execution under the shared ``(distance, id)``
tie-break.

**Flow control.**  Three mechanisms keep the executor well-behaved
under overload, none of which drops a request:

* *admission/backpressure* — at most ``max_pending`` queued requests;
  further submitters block (which in the HTTP front-end translates to
  admission control at the socket);
* *deadline-aware cutoffs* — a micro-batch dispatches when it is full,
  when the oldest member has waited ``max_wait_s``, or when any
  member's :class:`~repro.service.resilience.DeadlineBudget` is about
  to spend its slack on queueing;
* *load shedding* — past ``shed_threshold`` queued requests, new
  arrivals are served cheaply instead of waiting.  With a ``shed_to``
  handler (the engine wires its spill-tree ANN tier), the shed request
  never enqueues at all: it is served immediately on the submitter's
  own thread by the defeatist approximate search, page stamped
  ``ResultQuality(approximate, estimated_recall=...)``.  Without one,
  the request rides the batch marked for an approximate scan (exact
  distances over a bound-selected candidate subset) and its page
  carries reason ``"overload"`` — degraded honestly, never dropped.

Per-tenant fairness is round-robin over tenant FIFO queues, so one
chatty tenant cannot starve the rest; within a tenant, order is
preserved.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.kernels import CompiledQuery
from ..faults.inject import fault_point, register_site
from ..obs import current_span, current_tracer
from .metrics import percentile
from .resilience import DeadlineBudget

__all__ = [
    "BatchingConfig",
    "BatchRequest",
    "BatchingExecutor",
    "compatibility_key",
]

_SITE_BATCH = register_site(
    "batch.execute", "one coalesced micro-batch scan on the batching executor"
)

#: Queue slack reserved for the scan itself: a request whose deadline
#: budget has less than this remaining is dispatched immediately rather
#: than waiting for more batch mates.
_DEADLINE_MARGIN_S = 0.005

#: Recent batch sizes feeding the stats percentiles.
_SIZE_RESERVOIR = 1024


def compatibility_key(compiled: CompiledQuery, scope: Optional[str] = None) -> Tuple:
    """The coalescing key of one compiled query.

    Two requests may share a micro-batch only when their keys are equal:
    same dataset scope (store fingerprint — batching across epochs would
    scan the wrong bytes for someone), same dimensionality, and the same
    covariance-scheme shape, expressed as the sorted multiset of
    compiled kernel kinds (e.g. all-Cholesky vs mixed diagonal).
    """
    kinds = tuple(sorted(type(kernel).__name__ for kernel in compiled.kernels))
    return (scope, compiled.dimension, kinds)


@dataclass(frozen=True)
class BatchingConfig:
    """Knobs of the batching executor.

    Attributes:
        max_batch: micro-batch size cap; a full batch dispatches
            immediately.
        max_wait_s: longest any request waits for batch mates.
        max_pending: admission-control bound on queued requests;
            further submitters block until the queue drains.
        shed_threshold: queue depth at which new arrivals are served
            approximately (``None`` disables shedding).
    """

    max_batch: int = 32
    max_wait_s: float = 0.002
    max_pending: int = 256
    shed_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be non-negative, got {self.max_wait_s}")
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be at least 1, got {self.max_pending}"
            )
        if self.shed_threshold is not None and self.shed_threshold < 1:
            raise ValueError(
                f"shed_threshold must be at least 1, got {self.shed_threshold}"
            )


@dataclass
class BatchRequest:
    """One in-flight query waiting on (or riding in) a micro-batch.

    The executor treats ``payload`` and the eventual ``result`` as
    opaque — the engine decides what a request carries and what a scan
    returns.  ``approximate`` is set by the executor when the request
    was admitted in shed mode; the scan honours it by serving a
    bound-selected subset exactly.
    """

    payload: Any
    key: Tuple
    k: int
    tenant: str = "default"
    budget: Optional[DeadlineBudget] = None
    approximate: bool = False
    arrival: float = 0.0
    deadline: float = float("inf")
    context: Optional[contextvars.Context] = None
    #: The submitter's open span (if any) — the batch span links back to
    #: it so a coalesced request's trace shows the shared database pass.
    origin: Any = None
    #: Enqueue-to-dispatch wait in seconds, stamped at collection time.
    queue_wait: float = 0.0
    result: Any = None
    error: Optional[BaseException] = None
    done: threading.Event = field(default_factory=threading.Event)


class BatchingExecutor:
    """Coalesces compatible requests into micro-batches on one dispatcher.

    Args:
        execute: ``(requests) -> results`` — runs one micro-batch (every
            request shares a compatibility key) and returns one result
            per request, in order.  Runs on the dispatcher thread under
            the *leader's* (oldest request's) submission context, so
            ambient tracing and fault activation flow through.
        fallback: ``(request) -> result`` — per-request serial execution
            used when the batch path fails; keeps faults in the batch
            machinery lossless (pages stay byte-identical, only slower).
        shed_to: ``(request) -> result`` — immediate service for
            requests arriving past ``shed_threshold``; runs on the
            submitter's thread, bypassing the queue entirely (the
            engine wires the ANN tier here).  ``None`` keeps the older
            behaviour: shed requests ride the batch flagged
            ``approximate`` for a bound-selected subset scan.
        config: the flow-control knobs.
        metrics: optional :class:`~repro.service.metrics.ServiceMetrics`
            receiving ``batches``/``batched_queries``/``batch_shed``/
            ``batch_fallbacks`` counters and the ``batch_wait`` stage.
        clock: injectable monotonic clock (tests drive cutoffs
            deterministically).

    The dispatcher is one daemon thread; it drains independently of any
    session lease or request thread, so a blocked submitter can never
    deadlock the queue it is waiting on.
    """

    def __init__(
        self,
        execute: Callable[[List[BatchRequest]], Sequence[Any]],
        *,
        fallback: Optional[Callable[[BatchRequest], Any]] = None,
        shed_to: Optional[Callable[[BatchRequest], Any]] = None,
        config: Optional[BatchingConfig] = None,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._execute = execute
        self._fallback = fallback
        self._shed_to = shed_to
        self.config = config or BatchingConfig()
        self._metrics = metrics
        self._clock = clock
        self._cond = threading.Condition()
        self._queues: "OrderedDict[str, Deque[BatchRequest]]" = OrderedDict()
        self._pending = 0
        self._last_tenant: Optional[str] = None
        self._closed = False
        # Stats (all under _cond's lock).
        self._submitted = 0
        self._batches = 0
        self._batched_queries = 0
        self._shed = 0
        self._fallbacks = 0
        self._peak_pending = 0
        self._served_by_tenant: Dict[str, int] = {}
        self._recent_sizes: Deque[int] = deque(maxlen=_SIZE_RESERVOIR)
        # Per-tenant enqueue->dispatch waits: lifetime count/sum plus a
        # recent reservoir for the summary quantiles.  A fairness
        # regression shows up here long before batch sizes move.
        self._wait_by_tenant: Dict[str, Dict[str, Any]] = {}
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-batcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------

    def submit(
        self,
        payload: Any,
        key: Tuple,
        k: int,
        *,
        tenant: str = "default",
        budget: Optional[DeadlineBudget] = None,
    ) -> Any:
        """Enqueue one request and block until its micro-batch served it.

        Raises whatever the scan raised for this request.  Blocks at
        admission while ``max_pending`` requests are already queued.
        A request arriving past ``shed_threshold`` with a ``shed_to``
        handler configured never enqueues: it is served by the handler
        on this thread and returns (or raises) immediately.
        """
        request = BatchRequest(payload=payload, key=key, k=int(k), tenant=tenant, budget=budget)
        request.context = contextvars.copy_context()
        request.origin = current_span()
        with self._cond:
            if self._closed:
                raise RuntimeError("BatchingExecutor is shut down")
            while self._pending >= self.config.max_pending:
                self._cond.wait()
                if self._closed:
                    raise RuntimeError("BatchingExecutor is shut down")
            now = self._clock()
            request.arrival = now
            if budget is not None and budget.remaining != float("inf"):
                request.deadline = now + max(
                    0.0, budget.remaining - _DEADLINE_MARGIN_S
                )
            threshold = self.config.shed_threshold
            shed_inline = False
            if threshold is not None and self._pending >= threshold:
                request.approximate = True
                self._shed += 1
                if self._metrics is not None:
                    self._metrics.increment("batch_shed")
                # With a shed_to handler the congested queue never sees
                # the request: it is served inline below, outside the
                # lock, on this thread.
                shed_inline = self._shed_to is not None
            if shed_inline:
                self._submitted += 1
            else:
                queue = self._queues.get(tenant)
                if queue is None:
                    queue = deque()
                    self._queues[tenant] = queue
                queue.append(request)
                self._pending += 1
                self._peak_pending = max(self._peak_pending, self._pending)
                self._submitted += 1
                self._cond.notify_all()
        if shed_inline:
            assert self._shed_to is not None
            request.done.set()
            return self._shed_to(request)
        request.done.wait()
        if self._metrics is not None:
            self._metrics.observe("batch_wait", max(0.0, self._clock() - request.arrival))
        if request.error is not None:
            raise request.error
        return request.result

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------

    def _oldest(self) -> Optional[BatchRequest]:
        oldest: Optional[BatchRequest] = None
        for queue in self._queues.values():
            if queue and (oldest is None or queue[0].arrival < oldest.arrival):
                oldest = queue[0]
        return oldest

    def _collect(self, key: Tuple) -> List[BatchRequest]:
        """Pop up to ``max_batch`` key-compatible requests, fairly.

        Round-robin over tenants starting after the last-served tenant;
        only queue *fronts* are eligible (per-tenant FIFO order is never
        reordered), so an incompatible front parks that tenant for this
        batch but costs it nothing later.
        """
        tenants = list(self._queues.keys())
        if not tenants:
            return []
        start = 0
        if self._last_tenant in tenants:
            start = (tenants.index(self._last_tenant) + 1) % len(tenants)
        rotation = tenants[start:] + tenants[:start]
        batch: List[BatchRequest] = []
        now = self._clock()
        progressed = True
        while progressed and len(batch) < self.config.max_batch:
            progressed = False
            for tenant in rotation:
                queue = self._queues.get(tenant)
                if not queue or queue[0].key != key:
                    continue
                request = queue.popleft()
                request.queue_wait = max(0.0, now - request.arrival)
                wait = self._wait_by_tenant.get(tenant)
                if wait is None:
                    wait = self._wait_by_tenant[tenant] = {
                        "count": 0,
                        "sum": 0.0,
                        "recent": deque(maxlen=_SIZE_RESERVOIR),
                    }
                wait["count"] += 1
                wait["sum"] += request.queue_wait
                wait["recent"].append(request.queue_wait)
                batch.append(request)
                self._last_tenant = tenant
                self._served_by_tenant[tenant] = (
                    self._served_by_tenant.get(tenant, 0) + 1
                )
                progressed = True
                if len(batch) >= self.config.max_batch:
                    break
        for tenant in [name for name, queue in self._queues.items() if not queue]:
            del self._queues[tenant]
        return batch

    def _cutoff(self, key: Tuple, oldest: BatchRequest) -> float:
        """The moment this key's pending batch must dispatch."""
        cutoff = oldest.arrival + self.config.max_wait_s
        for queue in self._queues.values():
            if queue and queue[0].key == key:
                cutoff = min(cutoff, queue[0].deadline)
        return cutoff

    def _eligible(self, key: Tuple) -> int:
        """How many queued requests :meth:`_collect` could take right now.

        Per tenant, that is the longest key-matching *prefix* of its
        FIFO queue (collection only ever pops fronts).
        """
        count = 0
        for queue in self._queues.values():
            for request in queue:
                if request.key != key:
                    break
                count += 1
        return count

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                oldest = self._oldest()
                assert oldest is not None
                key = oldest.key
                now = self._clock()
                cutoff = self._cutoff(key, oldest)
                full = self._eligible(key) >= self.config.max_batch
                if not full and not self._closed and now < cutoff:
                    self._cond.wait(timeout=cutoff - now)
                    continue
                batch = self._collect(key)
                self._pending -= len(batch)
                self._batches += 1
                self._batched_queries += len(batch)
                self._recent_sizes.append(len(batch))
                self._cond.notify_all()
            self._run_batch(batch)

    def _run_batch(self, batch: List[BatchRequest]) -> None:
        leader = batch[0]
        context = leader.context or contextvars.copy_context()
        try:
            context.run(self._run_batch_in_context, batch)
        finally:
            for request in batch:
                request.done.set()

    def _run_batch_in_context(self, batch: List[BatchRequest]) -> None:
        if self._metrics is not None:
            self._metrics.increment("batches")
            self._metrics.increment("batched_queries", len(batch))
        with current_tracer().span(
            "batch", size=len(batch), tenants=len({r.tenant for r in batch})
        ) as batch_span:
            # Cross-link every member with the shared pass: the batch
            # span lists who rode along (and how long each waited), and
            # each member's own span gets a link back to the batch — so
            # a coalesced request's trace shows both its wait and the
            # one database pass it shared.
            if getattr(batch_span, "span_id", None) is not None:
                for request in batch:
                    origin = request.origin
                    if origin is None:
                        continue
                    batch_span.event(
                        "batch_member",
                        tenant=request.tenant,
                        trace_id=origin.trace_id,
                        span_id=origin.span_id,
                        queue_wait_s=request.queue_wait,
                    )
                    origin.event(
                        "batch_link",
                        batch_trace_id=batch_span.trace_id,
                        batch_span_id=batch_span.span_id,
                        size=len(batch),
                        queue_wait_s=request.queue_wait,
                    )
            try:
                fault_point(_SITE_BATCH, key=str(len(batch)))
                results = self._execute(batch)
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"batch execute returned {len(results)} results "
                        f"for {len(batch)} requests"
                    )
                for request, result in zip(batch, results):
                    request.result = result
            except BaseException as error:
                self._recover(batch, error)

    def _recover(self, batch: List[BatchRequest], error: BaseException) -> None:
        """Lossless per-request fallback when the batch path fails."""
        with self._cond:
            self._fallbacks += len(batch)
        if self._metrics is not None:
            self._metrics.increment("batch_fallbacks", len(batch))
        if self._fallback is None:
            for request in batch:
                request.error = error
            return
        for request in batch:
            try:
                request.result = self._fallback(request)
                request.error = None
            except BaseException as request_error:
                request.error = request_error

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests currently queued (not yet dispatched)."""
        with self._cond:
            return self._pending

    def stats(self) -> Dict[str, Any]:
        """One consistent snapshot of the executor's counters.

        ``{submitted, batches, batched_queries, queue_depth,
        peak_queue_depth, shed, fallbacks, mean_batch_size,
        p50_batch_size, max_batch_size, tenants_served,
        queue_wait_by_tenant}`` — the last maps each tenant to its
        enqueue-to-dispatch wait ``{count, sum, p50, p95}`` (quantiles
        over a recent reservoir, sum/count over the lifetime).
        """
        with self._cond:
            sizes = list(self._recent_sizes)
            queue_wait = {
                tenant: {
                    "count": wait["count"],
                    "sum": wait["sum"],
                    "p50": percentile(list(wait["recent"]), 50.0)
                    if wait["recent"]
                    else 0.0,
                    "p95": percentile(list(wait["recent"]), 95.0)
                    if wait["recent"]
                    else 0.0,
                }
                for tenant, wait in sorted(self._wait_by_tenant.items())
            }
            return {
                "submitted": self._submitted,
                "batches": self._batches,
                "batched_queries": self._batched_queries,
                "queue_depth": self._pending,
                "peak_queue_depth": self._peak_pending,
                "shed": self._shed,
                "fallbacks": self._fallbacks,
                "mean_batch_size": sum(sizes) / len(sizes) if sizes else 0.0,
                "p50_batch_size": percentile(sizes, 50.0) if sizes else 0.0,
                "max_batch_size": float(max(sizes)) if sizes else 0.0,
                "tenants_served": dict(sorted(self._served_by_tenant.items())),
                "queue_wait_by_tenant": queue_wait,
            }

    def shutdown(self) -> None:
        """Drain the queue, stop the dispatcher, reject new submits."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join()

    def __enter__(self) -> "BatchingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
