"""Retry, deadline and hedging discipline for the service's hot paths.

Degradation (:mod:`repro.service.degrade`) decides *which path* serves
a query; this module decides *how hard each stage fights* before giving
up: bounded exponential-backoff retries for idempotent work (kernel
compilation, per-shard scans, checkpoint reads), a per-request
:class:`DeadlineBudget` that caps the total time spent fighting, and
hedged re-dispatch of straggler shards.

Everything retried here is a pure function of immutable inputs —
compiling a query, scanning a read-only shard, reading a checkpoint
file — so a retry can never double-apply an effect, and a hedge
duplicate computes byte-identical data (whichever copy wins, results
are unchanged).  Retrying non-idempotent stages (feedback absorption,
eviction) is deliberately *not* offered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

__all__ = [
    "RetryPolicy",
    "DeadlineBudget",
    "ResiliencePolicy",
    "retry_call",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for one idempotent stage.

    Attributes:
        max_attempts: total tries (1 = no retries).
        base_delay_s: sleep before the first retry.
        multiplier: backoff growth factor per retry.
        max_delay_s: backoff ceiling.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be non-negative, got {self.base_delay_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be at least 1, got {self.multiplier}")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be non-negative, got {self.max_delay_s}")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retrying after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)


class DeadlineBudget:
    """Wall-clock budget for one request's recovery machinery.

    The budget is consulted, never enforced mid-flight: in-progress work
    is not cancelled (results already computed are kept), but once the
    budget is spent no *further* retries or hedges are launched — the
    request finishes with whatever coverage it has, explicitly marked.

    ``seconds=None`` means unlimited (the default service behaviour).
    """

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline seconds must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._started = clock()

    @property
    def elapsed(self) -> float:
        """Seconds since the budget started."""
        return self._clock() - self._started

    @property
    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited; clamped at 0)."""
        if self.seconds is None:
            return float("inf")
        return max(0.0, self.seconds - self.elapsed)

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.seconds is not None and self.elapsed >= self.seconds


@dataclass(frozen=True)
class ResiliencePolicy:
    """The service-level knobs: one retry policy, deadlines, hedging.

    Attributes:
        retry: backoff policy shared by the idempotent stages (compile,
            shard scan; checkpoint restore uses the store's own copy).
        request_deadline_s: per-request budget for recovery work;
            ``None`` (default) never gives up early.
        hedge_after_s: re-dispatch shards still running after this many
            seconds to a duplicate task and race the copies; ``None``
            (default) disables hedging.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    request_deadline_s: Optional[float] = None
    hedge_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.request_deadline_s is not None and self.request_deadline_s <= 0:
            raise ValueError(
                f"request_deadline_s must be positive, got {self.request_deadline_s}"
            )
        if self.hedge_after_s is not None and self.hedge_after_s < 0:
            raise ValueError(f"hedge_after_s must be non-negative, got {self.hedge_after_s}")

    def budget(self, clock: Callable[[], float] = time.monotonic) -> DeadlineBudget:
        """A fresh per-request budget under this policy."""
        return DeadlineBudget(self.request_deadline_s, clock=clock)


def retry_call(
    fn: Callable[[], object],
    policy: RetryPolicy,
    *,
    deadline: Optional[DeadlineBudget] = None,
    retryable: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Call ``fn`` with bounded exponential-backoff retries.

    Only for idempotent ``fn``.  Gives up — re-raising the last error —
    when attempts are exhausted or the deadline budget is spent; the
    backoff sleep itself is clamped to the remaining budget so a retry
    never waits past the deadline.

    Args:
        fn: zero-argument callable to (re)try.
        policy: the backoff schedule.
        deadline: optional per-request budget; expiry stops retrying.
        retryable: exception types worth another attempt (anything else
            propagates immediately).  An error carrying a truthy
            ``permanent`` attribute (e.g.
            :class:`~repro.store.StoreBlockCorrupt`) also propagates
            immediately — retrying it cannot succeed, so the backoff
            budget is not spent on it.
        sleep: injectable sleep (tests replay backoff instantly).
        on_retry: ``(attempt, error)`` callback fired before each retry
            (metrics/trace hook).
    """
    attempt = 1
    while True:
        try:
            return fn()
        except retryable as error:
            if getattr(error, "permanent", False):
                raise
            if attempt >= policy.max_attempts or (deadline is not None and deadline.expired):
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            delay = policy.delay_for(attempt)
            if deadline is not None:
                delay = min(delay, deadline.remaining)
            if delay > 0:
                sleep(delay)
            attempt += 1
