"""Service layer: concurrent multi-session retrieval at scale.

Everything below this package exists to make the faithful core
*deployable*: many users, each running the paper's stateful feedback
loop, against one shared collection — without unbounded memory, without
losing feedback state, and without a slow index taking the whole
service down.

* :mod:`~repro.service.engine` — :class:`RetrievalService`, the
  ``create_session / query / feedback / close`` facade with sharded
  parallel ranking.
* :mod:`~repro.service.sessions` — thread-safe :class:`SessionStore`
  with TTL + LRU eviction and persistence-backed checkpoints.
* :mod:`~repro.service.cache` — content-addressed LRU
  :class:`ResultCache` over ranked pages.
* :mod:`~repro.service.degrade` — :class:`DegradationPolicy` /
  :class:`SessionGuard`, falling back to the exact scan on index
  failure or soft-deadline misses.
* :mod:`~repro.service.metrics` — :class:`ServiceMetrics` counters and
  latency percentiles behind a plain-dict snapshot.
* :mod:`~repro.service.resilience` — :class:`ResiliencePolicy` retry /
  deadline / hedging discipline for the idempotent stages, with
  :class:`~repro.system.ResultQuality` provenance on every page.
* :mod:`~repro.service.batching` — :class:`BatchingExecutor`, coalescing
  compatible in-flight queries into micro-batches that share one
  database pass, with per-tenant fair queueing, deadline-aware cutoffs
  and honest load shedding.
* :mod:`~repro.service.server` — :class:`RetrievalServer`, the asyncio
  HTTP front-end with admission control, plus the
  :func:`closed_loop_load` generator.

See ``docs/SERVICE.md`` for the architecture and policies,
``docs/SERVING.md`` for the batching executor and HTTP front-end, and
``docs/RESILIENCE.md`` for the failure model.
"""

from .batching import BatchingConfig, BatchingExecutor, compatibility_key
from .cache import ResultCache, fingerprint_query
from .degrade import EXACT_QUALITY, DegradationPolicy, ResultQuality, SessionGuard
from .engine import RetrievalService
from .metrics import LatencyStage, ServiceMetrics, percentile
from .resilience import DeadlineBudget, ResiliencePolicy, RetryPolicy, retry_call
from .server import RetrievalServer, closed_loop_load
from .sessions import (
    CheckpointCorruption,
    ManagedSession,
    SessionNotFound,
    SessionStore,
)

__all__ = [
    "RetrievalService",
    "RetrievalServer",
    "closed_loop_load",
    "BatchingConfig",
    "BatchingExecutor",
    "compatibility_key",
    "SessionStore",
    "ManagedSession",
    "SessionNotFound",
    "CheckpointCorruption",
    "ResultCache",
    "fingerprint_query",
    "DegradationPolicy",
    "SessionGuard",
    "ResultQuality",
    "EXACT_QUALITY",
    "ResiliencePolicy",
    "RetryPolicy",
    "DeadlineBudget",
    "retry_call",
    "ServiceMetrics",
    "LatencyStage",
    "percentile",
]
