"""Asyncio HTTP front-end for the retrieval service.

A deliberately small, dependency-free (stdlib ``asyncio``) HTTP/1.1
server exposing the :class:`~repro.service.engine.RetrievalService`
session API to network clients:

============================   =========================================
``POST /sessions``             open a session; JSON body ``{"query":
                               <row id | feature list>, "session_id"?,
                               "k"?}``; the ``X-Tenant`` header labels
                               the session's fair-queueing lane.
``GET /sessions/{id}/page``    current ranked page (``?k=`` override;
                               ``?approximate=1`` serves from the ANN
                               tier when the service has one, the page
                               stamped with its estimated recall).
``POST /sessions/{id}/feedback``  absorb judgments ``{"relevant_ids":
                               [...], "scores"?, "k"?,
                               "approximate"?}``; returns the
                               refreshed page.
``DELETE /sessions/{id}``      close the session.
``GET /healthz``               liveness probe.
``GET /stats``                 the metrics snapshot as JSON (plus the
                               server's recent-error ring).
``GET /metrics``               Prometheus text exposition.
``GET /debug/slo``             SLO histograms, objectives and
                               error-budget burn rates as JSON.
============================   =========================================

**Distributed tracing.**  Every request is assigned (or joins) a
:class:`~repro.obs.TraceContext`: a well-formed ``traceparent`` header
wins, a sane ``X-Request-Id`` is adopted, and garbage in either
degrades to a fresh context — never an error.  Every response echoes
``X-Request-Id`` (the client's id when sane, the trace id otherwise)
and a ``traceparent`` carrying the server-side span, and error payloads
include the ``request_id`` so client logs join server traces.  The
service call runs under an ``http_request`` root span that adopts the
inbound context, so the whole request tree — HTTP span, engine spans,
batch span, worker-process scan spans — shares one trace id.

**Admission control.**  At most ``max_concurrent`` requests execute at
once (an :class:`asyncio.Semaphore`); excess connections queue at the
semaphore rather than stampeding the scan path.  The service calls
themselves are blocking (they may wait on a micro-batch), so they run
on a dedicated thread pool sized to the admission limit — the event
loop never blocks, and backpressure composes: socket accept → admission
semaphore → batching executor queue → micro-batch.

Pages serialize losslessly: JSON float round-trips are exact for IEEE
doubles, so a page read over HTTP compares bit-for-bit with the same
page served in-process.

The module also ships a **closed-loop load generator**
(:func:`closed_loop_load`): N simulated users, each running the
create → (page → judge → feedback) × rounds loop over its own
keep-alive connection, measuring queries/sec and latency percentiles —
the workload behind ``BENCH_batching.json`` and ``cli serve
--self-test``.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs import TraceContext, activate, with_trace_context
from ..obs.distributed import sanitize_request_id
from .engine import RetrievalService
from .metrics import percentile
from .sessions import SessionNotFound

__all__ = ["RetrievalServer", "closed_loop_load"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Recent error payloads kept for the /stats "server" section.
_ERROR_RING = 32
_REASON = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _page_payload(page) -> Dict[str, Any]:
    quality = page.quality
    quality_payload: Dict[str, Any] = {
        "level": quality.level,
        "reasons": list(quality.reasons),
        "exact": quality.is_exact,
    }
    if quality.estimated_recall is not None:
        quality_payload["estimated_recall"] = float(quality.estimated_recall)
    return {
        "ids": [int(i) for i in page.ids],
        "distances": [float(d) for d in page.distances],
        "iteration": int(page.iteration),
        "quality": quality_payload,
    }


class RetrievalServer:
    """Serve one :class:`RetrievalService` over HTTP.

    Args:
        service: the engine to front (its lifecycle is the caller's —
            stopping the server does not shut the service down).
        host: bind address.
        port: bind port (0 picks a free one; see :attr:`address`).
        max_concurrent: admission-control limit on in-flight requests.

    Use either as an async context (``await server.start()`` /
    ``await server.stop()``) inside an existing event loop, via
    :meth:`serve_forever` from synchronous code (the CLI), or via
    :meth:`start_in_background` / :meth:`stop_background` to run the
    event loop on a daemon thread (tests, load generation).
    """

    def __init__(
        self,
        service: RetrievalService,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        max_concurrent: int = 64,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be at least 1, got {max_concurrent}"
            )
        self.service = service
        self.host = host
        self.port = port
        self.max_concurrent = max_concurrent
        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        # Service calls block (micro-batch waits, shard scans), so they
        # run off-loop on a pool wide enough for every admitted request.
        self._workers = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="repro-http"
        )
        self.address: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Appended on the event loop, read (as a copy) from /stats.
        self._recent_errors: Deque[Dict[str, Any]] = deque(maxlen=_ERROR_RING)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._semaphore = asyncio.Semaphore(self.max_concurrent)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        name = sockets[0].getsockname()
        self.address = (name[0], name[1])
        return self.address

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._workers.shutdown(wait=True)

    def serve_forever(self) -> None:
        """Blocking entry point for synchronous callers (the CLI)."""

        async def _run() -> None:
            await self.start()
            assert self._server is not None
            async with self._server:
                await self._server.serve_forever()

        asyncio.run(_run())

    def start_in_background(self) -> Tuple[str, int]:
        """Run the event loop on a daemon thread; returns ``(host, port)``.

        Blocks until the listening socket is bound, so ``port=0``
        callers can read :attr:`address` immediately.  Pair with
        :meth:`stop_background`.
        """
        if self._thread is not None:
            raise RuntimeError("server already started")
        bound: "queue.Queue[object]" = queue.Queue(maxsize=1)

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                try:
                    address = loop.run_until_complete(self.start())
                except BaseException as error:  # surfaced to the caller
                    bound.put(error)
                    return
                bound.put(address)
                loop.run_forever()
                loop.run_until_complete(self.stop())
                # Keep-alive connections may still have handler tasks
                # parked on a read; cancel them before closing the loop.
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-http-loop", daemon=True
        )
        self._thread.start()
        result = bound.get()
        if isinstance(result, BaseException):
            self._thread.join()
            self._thread = None
            raise result
        host, port = result  # type: ignore[misc]
        return host, port

    def stop_background(self) -> None:
        """Stop a :meth:`start_in_background` server and join its thread."""
        if self._thread is None:
            return
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None
        self._loop = None

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                context = TraceContext.from_headers(headers)
                request_id = (
                    sanitize_request_id(headers.get("x-request-id"))
                    or context.trace_id
                )
                assert self._semaphore is not None
                async with self._semaphore:
                    status, payload, span_id = await self._dispatch(
                        method, path, headers, body, context, request_id
                    )
                echo = context.child(span_id) if span_id is not None else context
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(
                    writer,
                    status,
                    payload,
                    keep_alive,
                    extra_headers=echo.headers(request_id=request_id),
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return method, target, headers, b"__too_large__"
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if isinstance(payload, bytes):
            body = payload
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif payload is None:
            body = b""
            content_type = "application/json"
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        lines = [
            f"HTTP/1.1 {status} {_REASON.get(status, 'OK')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        context: TraceContext,
        request_id: str,
    ) -> Tuple[int, Any, Optional[str]]:
        split = urlsplit(target)
        path = [part for part in split.path.split("/") if part]
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        # Service calls run off-loop; the wrapper adopts the inbound
        # trace context on the worker thread, so the engine's own root
        # span nests under this request's http_request span and keeps
        # the propagated trace id.  The holder carries the server span
        # id back for the response's traceparent.
        holder: Dict[str, str] = {}
        tracer = self.service.tracer
        route_name = "/" + "/".join(path)
        loop = asyncio.get_running_loop()

        def traced(fn: Callable[[], Any]) -> Callable[[], Any]:
            def run() -> Any:
                with activate(tracer), with_trace_context(context):
                    with tracer.span(
                        "http_request",
                        method=method,
                        route=route_name,
                        request_id=request_id,
                    ) as span:
                        span_id = getattr(span, "span_id", None)
                        if span_id is not None:
                            holder["span_id"] = span_id
                        try:
                            return fn()
                        except BaseException:
                            span.set("error", True)
                            raise

            return run

        call = lambda fn: loop.run_in_executor(self._workers, traced(fn))  # noqa: E731
        try:
            if body == b"__too_large__":
                status, payload = 413, {"error": "request body too large"}
            else:
                status, payload = await self._route(
                    method, path, query, headers, body, call
                )
        except SessionNotFound as error:
            status, payload = 404, {"error": str(error)}
        except (ValueError, IndexError, KeyError, json.JSONDecodeError) as error:
            status, payload = 400, {"error": f"{type(error).__name__}: {error}"}
        except Exception as error:  # pragma: no cover - defensive 500
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        if status >= 400 and isinstance(payload, dict):
            payload = {**payload, "request_id": request_id}
            self._recent_errors.append(
                {
                    "request_id": request_id,
                    "status": status,
                    "route": route_name,
                    "error": str(payload.get("error", "")),
                }
            )
        return status, payload, holder.get("span_id")

    async def _route(
        self,
        method: str,
        path: List[str],
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
        call: Callable[[Callable[[], Any]], Any],
    ) -> Tuple[int, Any]:

        if path == ["healthz"] and method == "GET":
            return 200, {"status": "ok", "sessions": len(self.service.store)}
        if path == ["stats"] and method == "GET":
            snapshot = await call(self.service.metrics_snapshot)
            snapshot["server"] = {"recent_errors": list(self._recent_errors)}
            return 200, snapshot
        if path == ["metrics"] and method == "GET":
            text = await call(self.service.prometheus_metrics)
            return 200, text.encode("utf-8")
        if path == ["debug", "slo"] and method == "GET":
            return 200, await call(self.service.slo.snapshot)
        if path == ["sessions"] and method == "POST":
            payload = json.loads(body.decode("utf-8") or "{}")
            if "query" not in payload:
                return 400, {"error": "body must carry a 'query'"}
            raw = payload["query"]
            if isinstance(raw, bool):
                return 400, {"error": "'query' must be a row id or a vector"}
            spec = int(raw) if isinstance(raw, (int, float)) else raw
            tenant = headers.get("x-tenant")
            session_id = await call(
                lambda: self.service.create_session(
                    spec,
                    session_id=payload.get("session_id"),
                    tenant=tenant,
                )
            )
            return 201, {"session_id": session_id}
        if len(path) == 3 and path[0] == "sessions" and path[2] == "page":
            if method != "GET":
                return 405, {"error": "page is GET-only"}
            session_id = path[1]
            k = int(query["k"]) if "k" in query else None
            approximate = query.get("approximate", "").lower() in ("1", "true", "yes")

            def fetch_page():
                # The "page" route gets its own SLO observation: it is
                # the latency the *client* saw at this edge, distinct
                # from the engine's internal "query" accounting.
                start = time.monotonic()
                tenant = self.service.tenant_of(session_id)
                try:
                    page = self.service.query(session_id, k, approximate=approximate)
                except BaseException:
                    self.service.slo.observe(
                        "page", time.monotonic() - start, tenant=tenant, error=True
                    )
                    raise
                self.service.slo.observe(
                    "page",
                    time.monotonic() - start,
                    tenant=tenant,
                    exact=page.quality.is_exact,
                )
                return page

            page = await call(fetch_page)
            return 200, _page_payload(page)
        if len(path) == 3 and path[0] == "sessions" and path[2] == "feedback":
            if method != "POST":
                return 405, {"error": "feedback is POST-only"}
            session_id = path[1]
            payload = json.loads(body.decode("utf-8") or "{}")
            relevant = payload.get("relevant_ids", [])
            scores = payload.get("scores")
            k = payload.get("k")
            approximate = bool(payload.get("approximate", False))
            page = await call(
                lambda: self.service.feedback(
                    session_id, relevant, scores, k, approximate=approximate
                )
            )
            return 200, _page_payload(page)
        if len(path) == 2 and path[0] == "sessions" and method == "DELETE":
            await call(lambda: self.service.close(path[1]))
            return 204, None
        return 404, {"error": f"no route for {method} /{'/'.join(path)}"}


# ----------------------------------------------------------------------
# Closed-loop load generator
# ----------------------------------------------------------------------


class _Connection:
    """One keep-alive HTTP/1.1 client connection (stdlib asyncio)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "_Connection":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def __aexit__(self, *exc_info) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any]:
        assert self._reader is not None and self._writer is not None
        encoded = json.dumps(body).encode("utf-8") if body is not None else b""
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(encoded)}",
            "Content-Type: application/json",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        self._writer.write(head + encoded)
        await self._writer.drain()
        status_line = await self._reader.readline()
        status = int(status_line.split()[1])
        response_headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0") or "0")
        raw = await self._reader.readexactly(length) if length else b""
        if response_headers.get("content-type", "").startswith("application/json"):
            return status, (json.loads(raw.decode("utf-8")) if raw else None)
        return status, raw


def closed_loop_load(
    host: str,
    port: int,
    *,
    sessions: int = 64,
    rounds: int = 3,
    k: int = 10,
    query_ids: Optional[Sequence[int]] = None,
    tenants: int = 1,
    judge: Optional[Callable[[List[int], int], List[int]]] = None,
) -> Dict[str, Any]:
    """Drive a running server with N closed-loop feedback sessions.

    Each simulated user owns one keep-alive connection and runs the
    interactive loop — create session, then ``rounds`` iterations of
    fetch page → judge → send feedback — as fast as its responses come
    back (closed loop: concurrency is exactly ``sessions``).

    Args:
        host, port: the server to load.
        sessions: concurrent simulated users.
        rounds: feedback iterations per user.
        k: page size.
        query_ids: per-session seed row ids (default: session index).
        tenants: spread sessions round-robin over this many tenant
            labels.
        judge: ``(page_ids, session_index) -> relevant_ids`` (default:
            the first three ids).

    Returns:
        ``{qps, wall_s, queries, p50_s, p95_s, errors, pages}`` —
        ``pages`` maps ``(session_index, round)`` to the returned
        ``(ids, distances)`` tuples so callers can assert determinism
        across runs, and ``qps`` counts ranked pages (initial page +
        one per feedback round) per wall-clock second.
    """
    if judge is None:
        judge = lambda ids, index: ids[:3]  # noqa: E731
    latencies: List[float] = []
    errors: List[str] = []
    pages: Dict[Tuple[int, int], Tuple[Tuple[int, ...], Tuple[float, ...]]] = {}
    lock = threading.Lock()

    async def one_session(index: int) -> None:
        query_id = (
            int(query_ids[index % len(query_ids)])
            if query_ids is not None
            else index
        )
        headers = {"X-Tenant": f"tenant-{index % max(1, tenants)}"}
        async with _Connection(host, port) as conn:
            status, created = await conn.request(
                "POST", "/sessions", {"query": query_id}, headers
            )
            if status != 201:
                with lock:
                    errors.append(f"create failed: {status} {created}")
                return
            session_id = created["session_id"]
            start = time.perf_counter()
            status, page = await conn.request(
                "GET", f"/sessions/{session_id}/page?k={k}"
            )
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
            if status != 200:
                with lock:
                    errors.append(f"page failed: {status} {page}")
                return
            pages[(index, 0)] = (
                tuple(page["ids"]),
                tuple(page["distances"]),
            )
            for round_index in range(1, rounds + 1):
                relevant = judge(list(page["ids"]), index)
                start = time.perf_counter()
                status, page = await conn.request(
                    "POST",
                    f"/sessions/{session_id}/feedback",
                    {"relevant_ids": relevant, "k": k},
                )
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                if status != 200:
                    with lock:
                        errors.append(f"feedback failed: {status} {page}")
                    return
                pages[(index, round_index)] = (
                    tuple(page["ids"]),
                    tuple(page["distances"]),
                )
            await conn.request("DELETE", f"/sessions/{session_id}")

    async def drive() -> float:
        start = time.perf_counter()
        await asyncio.gather(*(one_session(i) for i in range(sessions)))
        return time.perf_counter() - start

    wall = asyncio.run(drive())
    queries = len(latencies)
    return {
        "qps": queries / wall if wall > 0 else 0.0,
        "wall_s": wall,
        "queries": queries,
        "p50_s": percentile(latencies, 50.0) if latencies else 0.0,
        "p95_s": percentile(latencies, 95.0) if latencies else 0.0,
        "errors": errors,
        "pages": pages,
    }
