"""Operational metrics for the retrieval service.

A production retrieval deployment is judged by counters (sessions
created/evicted, cache hits, degradations) and latency distributions
(per-stage p50/p95), not by precision/recall alone.  This module keeps
both behind one thread-safe object with a plain-dict :meth:`snapshot`
so the CLI, benchmarks and external scrapers need no special client.

Everything is in-process and allocation-light: counters are plain
integers under a lock, and each latency stage keeps a bounded ring
buffer of recent observations (old samples age out, so percentiles
track current behaviour rather than cold-start transients).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, Sequence

__all__ = ["percentile", "LatencyStage", "ServiceMetrics"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    The nearest-rank method never interpolates, so the reported value is
    always an observed latency — the convention operators expect from a
    monitoring system.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must lie in [0, 100], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of an empty sequence is undefined")
    # Nearest rank is ceil(n*q/100), 1-based; the ceiling must see the
    # exact product (truncating n*q to int first deflates ranks — e.g.
    # n=601, q=0.5 gave rank 3 instead of 4).
    rank = max(1, math.ceil(len(ordered) * q / 100.0))
    return float(ordered[rank - 1])


class LatencyStage:
    """Bounded reservoir of latency observations for one pipeline stage.

    Args:
        reservoir_size: how many recent observations feed the
            percentiles; the count and sum cover *all* observations.
    """

    def __init__(self, reservoir_size: int = 4096) -> None:
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be at least 1, got {reservoir_size}")
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._recent: Deque[float] = deque(maxlen=reservoir_size)

    def observe(self, seconds: float) -> None:
        """Record one observation (in seconds)."""
        if seconds < 0:
            raise ValueError(f"latency must be non-negative, got {seconds}")
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        self._recent.append(seconds)

    def summary(self) -> Dict[str, float]:
        """``{count, mean, p50, p95, max}`` over the stage so far."""
        recent = list(self._recent)
        return {
            "count": self.count,
            "mean": self.total / self.count if self.count else 0.0,
            "p50": percentile(recent, 50.0) if recent else 0.0,
            "p95": percentile(recent, 95.0) if recent else 0.0,
            "max": self.max,
        }


class ServiceMetrics:
    """Thread-safe counters plus per-stage latency histograms.

    All mutating methods may be called concurrently from request
    threads; :meth:`snapshot` returns an isolated plain dict safe to
    serialize or print.
    """

    def __init__(self, reservoir_size: int = 4096, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._stages: Dict[str, LatencyStage] = {}
        self._reservoir_size = reservoir_size
        self._clock = clock
        self._started = clock()

    @property
    def uptime_seconds(self) -> float:
        """Seconds since construction (or the last :meth:`reset`)."""
        return self._clock() - self._started

    def reset(self) -> None:
        """Drop all counters and latency stages; restart the uptime clock.

        Lets a long-lived service start a fresh measurement window (e.g.
        between benchmark phases) without rebuilding the object shared
        with its :class:`~repro.service.sessions.SessionStore`.
        """
        with self._lock:
            self._counters.clear()
            self._stages.clear()
            self._started = self._clock()

    def increment(self, counter: str, amount: int = 1) -> None:
        """Add ``amount`` to a named counter (created on first use)."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, stage: str, seconds: float) -> None:
        """Record one latency observation for ``stage``."""
        with self._lock:
            if stage not in self._stages:
                self._stages[stage] = LatencyStage(self._reservoir_size)
            self._stages[stage].observe(seconds)

    @contextmanager
    def time(self, stage: str) -> Iterator[None]:
        """Context manager timing its body into ``stage``."""
        start = self._clock()
        try:
            yield
        finally:
            self.observe(stage, self._clock() - start)

    @property
    def cache_hit_rate(self) -> float:
        """``hits / (hits + misses)`` over the result cache (0 when cold)."""
        with self._lock:
            hits = self._counters.get("cache_hits", 0)
            misses = self._counters.get("cache_misses", 0)
        total = hits + misses
        return hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Plain-dict view: counters, latency summaries, derived rates."""
        with self._lock:
            counters = dict(self._counters)
            latency = {name: stage.summary() for name, stage in self._stages.items()}
        hits = counters.get("cache_hits", 0)
        misses = counters.get("cache_misses", 0)
        total = hits + misses
        kernel_hits = counters.get("kernel_cache_hits", 0)
        kernel_misses = counters.get("kernel_cache_misses", 0)
        kernel_total = kernel_hits + kernel_misses
        pruned = counters.get("candidates_pruned", 0)
        refined = counters.get("candidates_refined", 0)
        touched = pruned + refined
        exact = counters.get("results_exact", 0)
        degraded = counters.get("results_degraded", 0)
        results = exact + degraded
        reason_prefix = "degraded_reason_"
        return {
            "counters": counters,
            "latency": latency,
            "uptime_seconds": self.uptime_seconds,
            "cache_hit_rate": hits / total if total else 0.0,
            "kernel_cache_hit_rate": kernel_hits / kernel_total if kernel_total else 0.0,
            # Progressive-scan effectiveness: the exactly-refined share
            # of all ranking candidates (1.0 = no pruning anywhere).
            "refine_fraction": refined / touched if touched else 1.0,
            "candidates_pruned": pruned,
            "degradations": counters.get("degraded_error", 0)
            + counters.get("degraded_deadline", 0),
            # Result-quality provenance: pages served with an explicit
            # coverage/state loss (distinct from path degradations
            # above, which are lossless fallbacks).
            "result_quality": {
                "exact": exact,
                "degraded": degraded,
                "degraded_fraction": degraded / results if results else 0.0,
                "reasons": {
                    name[len(reason_prefix):]: value
                    for name, value in sorted(counters.items())
                    if name.startswith(reason_prefix)
                },
            },
        }
