"""Extensions beyond the paper's core evaluation.

* negative feedback (Rocchio's negative term; a kernel penalty around
  non-relevant examples, in the spirit of Ashwin et al. [1]),
* retrieval-time PCA reduction (Section 4.4 as a deployment feature),
* engine persistence (pause/resume feedback sessions).
"""

from .negative import (
    NegativePenaltyQuery,
    RocchioQueryPointMovement,
    SimulatedUserWithNegatives,
)
from .persistence import engine_from_dict, engine_to_dict, load_engine, save_engine
from .reduced import PCAReducedMethod, ReducedSpaceQuery
from .session import NegativeFeedbackSession

__all__ = [
    "NegativeFeedbackSession",
    "NegativePenaltyQuery",
    "RocchioQueryPointMovement",
    "SimulatedUserWithNegatives",
    "engine_from_dict",
    "engine_to_dict",
    "load_engine",
    "save_engine",
    "PCAReducedMethod",
    "ReducedSpaceQuery",
]
