"""Retrieval-time PCA reduction (Section 4.4 as a deployment feature).

The paper reduces descriptor dimensionality offline (color 9→3,
texture 16→4) and proves (Theorem 1 / Equations 17-19) that the
quadratic measures are preserved in the principal-component basis.
This module turns that into a runtime wrapper: fit a PCA on the raw
feature database once, then run *any* feedback method entirely in the
reduced space, transforming queries and feedback points transparently.

With ``n_components = p`` (no truncation) and the full-inverse scheme,
results are identical to the unreduced run — Theorem 1 end-to-end.
Truncation trades a controlled quality loss (the discarded variance)
for cheaper distance evaluations.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.pca import PCA
from ..retrieval.methods import FeedbackMethod

__all__ = ["ReducedSpaceQuery", "PCAReducedMethod"]


class ReducedSpaceQuery:
    """Evaluate a reduced-space query against raw-space database rows."""

    def __init__(self, inner, pca: PCA) -> None:
        self._inner = inner
        self._pca = pca

    def distances(self, database: np.ndarray) -> np.ndarray:
        """Project rows into the PC basis, then delegate."""
        return self._inner.distances(self._pca.transform(database))

    @property
    def inner(self):
        """The wrapped reduced-space query (for introspection)."""
        return self._inner


class PCAReducedMethod(FeedbackMethod):
    """Run a feedback method in a PCA-reduced feature space.

    Args:
        method_factory: builds the inner method (e.g. ``QclusterMethod``).
        pca: a fitted :class:`~repro.core.pca.PCA`; alternatively pass
            ``training_data`` and ``n_components`` to fit one here.
        training_data: raw vectors to fit the PCA on (typically the
            whole database).
        n_components: components to keep when fitting internally.
    """

    name = "pca-reduced"

    def __init__(
        self,
        method_factory: Callable[[], FeedbackMethod],
        pca: Optional[PCA] = None,
        training_data: Optional[np.ndarray] = None,
        n_components: Optional[int] = None,
    ) -> None:
        if pca is None:
            if training_data is None:
                raise ValueError("provide either a fitted pca or training_data")
            pca = PCA(n_components=n_components).fit(np.asarray(training_data, dtype=float))
        elif pca.components_ is None:
            raise ValueError("the provided PCA has not been fitted")
        self.pca = pca
        self.method = method_factory()

    def _project_one(self, point: np.ndarray) -> np.ndarray:
        return self.pca.transform(np.asarray(point, dtype=float)[None, :])[0]

    def start(self, query_point: np.ndarray) -> ReducedSpaceQuery:
        return ReducedSpaceQuery(self.method.start(self._project_one(query_point)), self.pca)

    def feedback(
        self,
        relevant_points: np.ndarray,
        scores: Optional[Sequence[float]] = None,
    ) -> ReducedSpaceQuery:
        projected = self.pca.transform(np.atleast_2d(np.asarray(relevant_points, dtype=float)))
        return ReducedSpaceQuery(self.method.feedback(projected, scores), self.pca)
