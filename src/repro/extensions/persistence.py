"""Serialization of engine state — pause and resume feedback sessions.

A production retrieval system keeps feedback sessions alive across
requests; this module round-trips a :class:`~repro.core.qcluster.
QclusterEngine` (its configuration, clusters, relevance masses, merge
history and dedup state) through a plain JSON-compatible dict, and
through files via :func:`save_engine` / :func:`load_engine`.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from ..core.cluster import Cluster
from ..core.config import QclusterConfig
from ..core.merging import MergeRecord
from ..core.qcluster import QclusterEngine

__all__ = ["engine_to_dict", "engine_from_dict", "save_engine", "load_engine"]

_CONFIG_FIELDS = (
    "scheme",
    "discriminant",
    "significance_level",
    "merge_significance_level",
    "max_clusters",
    "min_merge_alpha",
    "alpha_relax_factor",
    "regularization",
    "initial_method",
    "initial_linkage",
    "initial_clusters",
    "deduplicate",
    "batch_classification",
)


def engine_to_dict(engine: QclusterEngine) -> dict:
    """Snapshot an engine into a JSON-serializable dict."""
    state = {
        "config": {field: getattr(engine.config, field) for field in _CONFIG_FIELDS},
        "iteration": engine.iteration,
        "initial_point": (
            engine._initial_point.tolist() if engine._initial_point is not None else None
        ),
        "clusters": [
            {"points": cluster.points.tolist(), "scores": cluster.scores.tolist()}
            for cluster in engine.clusters
        ],
        "merge_history": [asdict(record) for record in engine.merge_history],
    }
    return state


def engine_from_dict(state: dict) -> QclusterEngine:
    """Rebuild an engine from :func:`engine_to_dict` output.

    The deduplication set is reconstructed from the stored cluster
    members, so re-feeding an already-absorbed point is still a no-op
    after a round trip.
    """
    config = QclusterConfig(**state["config"])
    engine = QclusterEngine(config)
    engine.iteration = int(state["iteration"])
    if state["initial_point"] is not None:
        engine._initial_point = np.asarray(state["initial_point"], dtype=float)
    engine.clusters = [
        Cluster(np.asarray(entry["points"], dtype=float), entry["scores"])
        for entry in state["clusters"]
    ]
    engine.merge_history = [MergeRecord(**record) for record in state["merge_history"]]
    if config.deduplicate:
        engine._seen = {
            np.asarray(point, dtype=float).tobytes()
            for entry in state["clusters"]
            for point in entry["points"]
        }
    return engine


def save_engine(engine: QclusterEngine, path: Union[str, Path]) -> None:
    """Write the engine snapshot as JSON."""
    path = Path(path)
    path.write_text(json.dumps(engine_to_dict(engine)))


def load_engine(path: Union[str, Path]) -> QclusterEngine:
    """Read an engine snapshot written by :func:`save_engine`."""
    return engine_from_dict(json.loads(Path(path).read_text()))
