"""Feedback sessions that also exploit non-relevant judgments.

Combines the pieces of :mod:`repro.extensions.negative` into a session
runner with the same recording behaviour as
:class:`~repro.retrieval.session.FeedbackSession`: after each round the
results the simulated user did *not* mark relevant are collected and
the next query is wrapped in a :class:`NegativePenaltyQuery`, so the
regions the user has implicitly rejected are demoted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..retrieval.database import FeatureDatabase
from ..retrieval.methods import FeedbackMethod
from ..retrieval.metrics import precision_recall_curve
from ..retrieval.session import IterationRecord, SessionResult
from .negative import NegativePenaltyQuery, SimulatedUserWithNegatives

__all__ = ["NegativeFeedbackSession"]


class NegativeFeedbackSession:
    """Session runner that feeds negatives into a penalty re-ranker.

    Args:
        database: the collection with ground truth.
        method: any positive-feedback method (Qcluster, QPM, ...).
        k: result-list size.
        gamma: peak penalty multiplier around negatives.
        sigma: penalty kernel bandwidth; ``None`` picks the median
            pairwise distance heuristic from a database sample.
    """

    def __init__(
        self,
        database: FeatureDatabase,
        method: FeedbackMethod,
        k: int = 100,
        gamma: float = 1.0,
        sigma: Optional[float] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.database = database
        self.method = method
        self.k = min(k, database.size)
        self.gamma = gamma
        if sigma is None:
            sigma = self._median_distance_heuristic()
        self.sigma = sigma

    def _median_distance_heuristic(self) -> float:
        rng = np.random.default_rng(0)
        sample_size = min(200, self.database.size)
        sample = self.database.vectors[
            rng.choice(self.database.size, sample_size, replace=False)
        ]
        deltas = sample[:, None, :] - sample[None, :, :]
        distances = np.sqrt(np.einsum("ijk,ijk->ij", deltas, deltas))
        positive = distances[distances > 0]
        # A fraction of the median keeps the penalty local.
        return float(np.median(positive)) * 0.25 if positive.size else 1.0

    def run(
        self,
        query_index: int,
        n_iterations: int = 5,
        user: Optional[SimulatedUserWithNegatives] = None,
    ) -> SessionResult:
        """Run the session; negatives accumulate across rounds."""
        if not 0 <= query_index < self.database.size:
            raise IndexError(f"query_index {query_index} out of range")
        if user is None:
            user = SimulatedUserWithNegatives(
                self.database, self.database.category_of(query_index)
            )
        result = SessionResult()
        negatives: list = []
        query = self.method.start(self.database.vectors[query_index])
        for iteration in range(n_iterations + 1):
            if negatives:
                effective = NegativePenaltyQuery(
                    query,
                    np.vstack(negatives),
                    gamma=self.gamma,
                    sigma=self.sigma,
                )
            else:
                effective = query
            distances = effective.distances(self.database.vectors)
            top = np.argpartition(distances, self.k - 1)[: self.k]
            ranked = top[np.argsort(distances[top], kind="stable")]
            mask, total_relevant = user.relevance_mask(ranked)
            judgment = user.judge(ranked)
            result.records.append(
                IterationRecord(
                    iteration=iteration,
                    precision=float(mask.mean()),
                    recall=float(mask.sum()) / total_relevant if total_relevant else 0.0,
                    curve=precision_recall_curve(mask, total_relevant),
                    n_marked=judgment.count,
                    result_indices=ranked,
                )
            )
            if iteration == n_iterations:
                break
            for index in user.non_relevant(ranked):
                negatives.append(self.database.vectors[index])
            if judgment.count > 0:
                query = self.method.feedback(
                    self.database.vectors[judgment.relevant_indices],
                    judgment.scores,
                )
        return result
