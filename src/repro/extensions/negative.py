"""Non-relevant (negative) feedback — an extension the paper points at.

The paper's protocol uses only positive judgments, but its related work
highlights both Rocchio's negative term [14] and "adaptable similarity
search using non-relevant information" (Ashwin et al. [1]).  This
module supplies both flavours on top of the existing machinery:

* :class:`RocchioQueryPointMovement` — the classic three-term Rocchio
  update ``q' = a q + b mean(relevant) - c mean(non-relevant)`` on the
  QPM baseline;
* :class:`NegativePenaltyQuery` — a method-agnostic wrapper that
  re-ranks any query's output by inflating the distance of database
  points close to marked non-relevant examples (a Gaussian-kernel
  penalty, in the spirit of [1]'s non-relevant dissimilarity), and
* :class:`SimulatedUserWithNegatives` — extends the category oracle to
  also report the non-relevant results of a round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..baselines.base import PowerMeanQuery, diagonal_inverse_from_points
from ..baselines.qpm import QueryPointMovement
from ..retrieval.database import FeatureDatabase
from ..retrieval.user import SimulatedUser
from ..stats.descriptive import weighted_mean

__all__ = [
    "NegativePenaltyQuery",
    "RocchioQueryPointMovement",
    "SimulatedUserWithNegatives",
]


@dataclass(frozen=True)
class NegativePenaltyQuery:
    """Wrap any query with a repulsion term around non-relevant points.

    The effective dissimilarity is

        d'(x) = d(x) * (1 + gamma * max_n exp(-||x - n||^2 / (2 sigma^2)))

    so points sitting on top of a marked non-relevant example have their
    distance inflated by ``(1 + gamma)`` and the penalty decays smoothly
    with the kernel bandwidth ``sigma``.

    Attributes:
        base: the positive-feedback query being wrapped (anything with
            ``distances``).
        negatives: ``(m, p)`` marked non-relevant feature vectors; an
            empty array makes the wrapper a no-op.
        gamma: peak multiplicative penalty.
        sigma: kernel bandwidth in feature-space units.
    """

    base: object
    negatives: np.ndarray
    gamma: float = 1.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        negatives = np.atleast_2d(np.asarray(self.negatives, dtype=float))
        if negatives.size == 0:
            negatives = negatives.reshape(0, 0)
        object.__setattr__(self, "negatives", negatives)
        if self.gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {self.gamma}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    def distances(self, database: np.ndarray) -> np.ndarray:
        """Base distances inflated near the non-relevant examples."""
        database = np.atleast_2d(np.asarray(database, dtype=float))
        base_distances = self.base.distances(database)
        if self.negatives.size == 0:
            return base_distances
        # Squared Euclidean distance of every database point to its
        # nearest negative example.
        deltas = database[:, None, :] - self.negatives[None, :, :]
        squared = np.einsum("ijk,ijk->ij", deltas, deltas)
        nearest = squared.min(axis=1)
        penalty = 1.0 + self.gamma * np.exp(-nearest / (2.0 * self.sigma**2))
        return base_distances * penalty


class RocchioQueryPointMovement(QueryPointMovement):
    """QPM with the full three-term Rocchio update.

    ``q' = (a q + b x̄_rel - c x̄_nonrel) / (a + b)`` — the negative term
    pushes the query point away from the non-relevant mean (the ``c``
    coefficient is conventionally small; Rocchio's own experiments used
    b : c of roughly 4 : 1).

    Non-relevant points accumulate across rounds, like relevant ones.
    """

    name = "qpm+neg"

    def __init__(
        self,
        query_weight: float = 0.3,
        relevant_weight: float = 0.7,
        nonrelevant_weight: float = 0.15,
        regularization: float = 1e-6,
    ) -> None:
        super().__init__(query_weight, relevant_weight, regularization)
        if nonrelevant_weight < 0:
            raise ValueError(
                f"nonrelevant_weight must be non-negative, got {nonrelevant_weight}"
            )
        self.nonrelevant_weight = nonrelevant_weight
        self._negatives: list = []

    def start(self, query_point: np.ndarray):
        self._negatives = []
        return super().start(query_point)

    def add_negatives(self, points: np.ndarray) -> None:
        """Record one round's non-relevant examples."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        for point in points:
            self._negatives.append(point)

    def build_query(self, points: np.ndarray, scores: np.ndarray) -> PowerMeanQuery:
        relevant_mean = weighted_mean(points, scores)
        moved = self.query_weight * self.initial_point + self.relevant_weight * relevant_mean
        if self._negatives:
            negative_mean = np.mean(np.vstack(self._negatives), axis=0)
            moved = moved - self.nonrelevant_weight * negative_mean
        moved = moved / (self.query_weight + self.relevant_weight)
        inverse = diagonal_inverse_from_points(points, scores, self.regularization)
        return PowerMeanQuery(
            centers=moved[None, :],
            inverses=(inverse,),
            weights=np.ones(1),
            alpha=1.0,
        )


class SimulatedUserWithNegatives(SimulatedUser):
    """Category oracle that also reports non-relevant results.

    ``non_relevant`` returns the result-list members that are neither in
    the target category nor in a related one — what a real user's
    unchecked thumbnails imply.  ``max_negatives`` caps how many the
    user bothers to mark.
    """

    def __init__(
        self,
        database: FeatureDatabase,
        target_category: int,
        max_negatives: Optional[int] = 10,
        **kwargs,
    ) -> None:
        super().__init__(database, target_category, **kwargs)
        if max_negatives is not None and max_negatives < 1:
            raise ValueError(f"max_negatives must be at least 1, got {max_negatives}")
        self.max_negatives = max_negatives

    def non_relevant(self, result_indices: Sequence[int]) -> np.ndarray:
        """Indices of the results the user would mark non-relevant."""
        negatives = []
        for index in result_indices:
            if not self.database.is_relevant(int(index), self.target_category):
                negatives.append(int(index))
            if self.max_negatives is not None and len(negatives) >= self.max_negatives:
                break
        return np.asarray(negatives, dtype=int)
