"""Memory-mapped, content-addressed feature store (see ``docs/STORE.md``).

The store decouples feature *production* (datasets, extraction
pipelines) from feature *serving*: a builder writes float32
C-contiguous shard blocks — plus optional PCA-prefix coarse companions
— under an epoch header with per-block CRCs, and any number of
processes mmap the file read-only and scan shards with zero copies.
``content_hash:epoch`` fingerprints the store for the service's
content-addressed caches.
"""

from .builder import build_store, shard_bounds
from .format import (
    ALIGNMENT,
    FORMAT_VERSION,
    MAGIC,
    BlockEntry,
    StoreFormatError,
    StoreHeader,
)
from .reader import FeatureStore, StoreBlockCorrupt

__all__ = [
    "ALIGNMENT",
    "FORMAT_VERSION",
    "MAGIC",
    "BlockEntry",
    "StoreHeader",
    "StoreFormatError",
    "FeatureStore",
    "StoreBlockCorrupt",
    "build_store",
    "shard_bounds",
]
