"""Read side of the feature store: mmap, verify-on-first-access, quarantine.

:class:`FeatureStore` opens a store file read-only via ``np.memmap`` and
hands out zero-copy float32 views of its blocks.  Integrity is enforced
lazily but strictly:

* the preamble and header are validated at :meth:`FeatureStore.open`
  (fault site ``store.open``);
* each block's ``zlib.crc32`` is checked the *first* time the block is
  accessed (fault site ``store.block_read``, keyed by block name) and
  the verdict memoized — subsequent reads of a clean block cost one
  set lookup;
* a block that fails its CRC (or suffers an injected torn read) is
  *quarantined*: the failure is sticky and every later access raises
  :class:`StoreBlockCorrupt` immediately, so a damaged shard degrades
  exactly one scan region per request instead of crashing the service
  or being retried forever — ``StoreBlockCorrupt.permanent`` tells the
  retry machinery not to bother.

The class is deliberately safe to share across threads (all mutable
state behind one lock) and cheap to open per *process*: worker
processes each open their own ``FeatureStore`` over the same file and
the OS page cache shares the physical memory between them.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

import numpy as np

from ..faults import fault_point, register_site
from .format import BlockEntry, StoreFormatError, StoreHeader, block_crc, read_preamble

__all__ = ["FeatureStore", "StoreBlockCorrupt", "StoreFormatError"]

#: Chaos-injection site: fires once per :meth:`FeatureStore.open`, keyed
#: by the file name.  Errors model a missing/unreadable store file.
_SITE_OPEN = register_site("store.open", "feature-store open/mmap")

#: Chaos-injection site: fires on every block access, keyed by the block
#: name.  A ``corrupt`` fire models a torn read — the block is
#: quarantined and raises :class:`StoreBlockCorrupt`; an ``error`` fire
#: models transient I/O and is retryable.
_SITE_BLOCK = register_site("store.block_read", "feature-store block read")


class StoreBlockCorrupt(RuntimeError):
    """A block failed its CRC (or a torn read was injected).

    Attributes:
        path: the store file.
        block: the offending block name.
        reason: short machine-readable cause (``crc_mismatch`` /
            ``torn_read``).
        permanent: always ``True`` — re-reading a quarantined block
            cannot succeed, so retry layers skip their backoff budget.
    """

    permanent = True

    def __init__(self, path: str, block: str, reason: str = "crc_mismatch") -> None:
        self.path = str(path)
        self.block = block
        self.reason = reason
        super().__init__(f"store block {block!r} corrupt ({reason}) in {self.path}")

    def __reduce__(self):  # exceptions must survive the process boundary
        return (StoreBlockCorrupt, (self.path, self.block, self.reason))


class FeatureStore:
    """A read-only, integrity-checked view over one store file.

    Use :meth:`open` rather than the constructor; the constructor
    assumes an already-parsed header.
    """

    def __init__(self, path: Path, header: StoreHeader, data_start: int) -> None:
        self.path = Path(path)
        self.header = header
        self._data_start = data_start
        self._mmap = np.memmap(self.path, dtype=np.uint8, mode="r")
        self._lock = threading.Lock()
        self._verified: Set[str] = set()
        # One view object per verified block: repeated reads return the
        # *same* ndarray, so downstream identity-keyed caches (the
        # progressive scan contexts) stay warm across scans.
        self._views: Dict[str, np.ndarray] = {}
        self._quarantined: Dict[str, str] = {}
        self._block_reads = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, Path]) -> "FeatureStore":
        """Open and validate the store at ``path`` (header only).

        Raises :class:`StoreFormatError` on anything that is not a
        well-formed store, and whatever the ``store.open`` fault site
        injects.
        """
        path = Path(path)
        fault_point(_SITE_OPEN, key=path.name)
        try:
            with open(path, "rb") as handle:
                head = handle.read(1 << 20)
            file_size = path.stat().st_size
        except OSError as error:
            raise StoreFormatError(f"cannot open store at {path}: {error}") from error
        header, data_start = read_preamble(head)
        last = max(entry.offset + entry.nbytes for entry in header.blocks)
        if data_start + last > file_size:
            raise StoreFormatError(
                f"store at {path} is truncated: needs {data_start + last} bytes, "
                f"file has {file_size}"
            )
        return cls(path, header, data_start)

    # ------------------------------------------------------------------
    # Identity and geometry
    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """``content_hash:epoch`` — salt for content-addressed caches."""
        return self.header.fingerprint

    @property
    def epoch(self) -> int:
        return self.header.epoch

    @property
    def n(self) -> int:
        """Total feature rows."""
        return self.header.n

    @property
    def dimension(self) -> int:
        return self.header.dimension

    @property
    def n_shards(self) -> int:
        return self.header.n_shards

    @property
    def row_offsets(self) -> List[int]:
        """Global row id of each shard's first row (plus the final ``n``)."""
        return list(self.header.row_offsets)

    @property
    def coarse_dims(self) -> int:
        return self.header.coarse_dims

    @property
    def block_reads(self) -> int:
        """Successful block accesses served by this handle."""
        with self._lock:
            return self._block_reads

    @property
    def quarantined(self) -> Dict[str, str]:
        """``{block: reason}`` for every quarantined block."""
        with self._lock:
            return dict(self._quarantined)

    # ------------------------------------------------------------------
    # Block access
    # ------------------------------------------------------------------

    def _raw_view(self, entry: BlockEntry) -> np.ndarray:
        start = self._data_start + entry.offset
        view = self._mmap[start : start + entry.nbytes].view(entry.dtype)
        return view.reshape(entry.shape)

    def block(self, name: str) -> np.ndarray:
        """Zero-copy read-only view of the named block.

        The CRC is verified on the first access and memoized; the
        ``store.block_read`` fault site fires on *every* access, so an
        injected torn read can strike a block that was clean so far.
        Once a block is quarantined every access raises
        :class:`StoreBlockCorrupt` (sticky — quarantine survives
        retries by design).
        """
        entry = self.header.block(name)
        with self._lock:
            reason = self._quarantined.get(name)
        if reason is not None:
            raise StoreBlockCorrupt(self.path, name, reason)
        token = fault_point(_SITE_BLOCK, key=name, payload=True)
        if token is not True:
            # The injection layer garbled the read itself: treat it as
            # a torn block exactly like real bit rot.
            self._quarantine(name, "torn_read")
            raise StoreBlockCorrupt(self.path, name, "torn_read")
        with self._lock:
            view = self._views.get(name)
        if view is None:
            view = self._raw_view(entry)
            if block_crc(view.tobytes()) != entry.crc32:
                self._quarantine(name, "crc_mismatch")
                raise StoreBlockCorrupt(self.path, name, "crc_mismatch")
            with self._lock:
                self._verified.add(name)
                view = self._views.setdefault(name, view)
        with self._lock:
            self._block_reads += 1
        return view

    def _quarantine(self, name: str, reason: str) -> None:
        with self._lock:
            self._quarantined.setdefault(name, reason)

    def shard(self, index: int) -> np.ndarray:
        """Feature shard ``index`` as a ``(rows, p)`` float32 view."""
        if not 0 <= index < self.n_shards:
            raise IndexError(f"shard {index} out of range (n_shards={self.n_shards})")
        return self.block(f"shard/{index:04d}")

    def coarse(self, index: int) -> np.ndarray:
        """PCA-prefix companion of shard ``index`` (requires coarse blocks)."""
        if not self.coarse_dims:
            raise KeyError("store was built without coarse blocks")
        if not 0 <= index < self.n_shards:
            raise IndexError(f"shard {index} out of range (n_shards={self.n_shards})")
        return self.block(f"coarse/{index:04d}")

    def coarse_projection(self):
        """``(mean, components)`` of the coarse PCA basis."""
        if not self.coarse_dims:
            raise KeyError("store was built without coarse blocks")
        return self.block("coarse/mean"), self.block("coarse/components")

    def labels(self) -> Optional[np.ndarray]:
        """The per-row labels block, or ``None`` if absent."""
        if not self.header.has_block("labels"):
            return None
        return self.block("labels")

    def as_array(self) -> np.ndarray:
        """The full ``(n, p)`` float32 matrix, materialized (one copy).

        For consumers that need random row access (query-by-id, index
        construction); the scan path never calls this.
        """
        parts = [np.asarray(self.shard(i)) for i in range(self.n_shards)]
        return np.ascontiguousarray(np.concatenate(parts, axis=0))

    # ------------------------------------------------------------------
    # Maintenance surface
    # ------------------------------------------------------------------

    def verify(self) -> Dict[str, str]:
        """Re-check every block's CRC; returns ``{block: "ok" | reason}``.

        Unlike :meth:`block`, verification does not consult or extend
        the first-access memo — it always re-reads the bytes — but a
        failure quarantines the block for every other consumer.
        """
        report: Dict[str, str] = {}
        for entry in self.header.blocks:
            with self._lock:
                reason = self._quarantined.get(entry.name)
            if reason is not None:
                report[entry.name] = reason
                continue
            if block_crc(self._raw_view(entry).tobytes()) != entry.crc32:
                self._quarantine(entry.name, "crc_mismatch")
                report[entry.name] = "crc_mismatch"
            else:
                report[entry.name] = "ok"
        return report

    def describe(self) -> Dict[str, object]:
        """Inspector payload: identity, geometry and the block table."""
        return {
            "path": str(self.path),
            "epoch": self.epoch,
            "content_hash": self.header.content_hash,
            "fingerprint": self.fingerprint,
            "n": self.n,
            "dimension": self.dimension,
            "dtype": self.header.dtype,
            "n_shards": self.n_shards,
            "row_offsets": self.row_offsets,
            "coarse_dims": self.coarse_dims,
            "file_bytes": int(self.path.stat().st_size),
            "blocks": [entry.to_dict() for entry in self.header.blocks],
        }

    def stats(self) -> Dict[str, object]:
        """Operational counters for the metrics snapshot."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "n": self.n,
                "dimension": self.dimension,
                "n_shards": self.n_shards,
                "blocks": len(self.header.blocks),
                "block_reads": self._block_reads,
                "quarantined_blocks": len(self._quarantined),
            }

    def __repr__(self) -> str:
        return (
            f"FeatureStore({self.path.name!r}, n={self.n}, p={self.dimension}, "
            f"shards={self.n_shards}, epoch={self.epoch})"
        )
