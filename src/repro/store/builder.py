"""Build a feature store from any :mod:`repro.datasets` dataset.

The builder is the *only* place features are converted: whatever the
source (raw array, ``FeatureDatabase``, ``GaussianSample``), the
vectors pass through :func:`~repro.datasets.matrix.as_feature_matrix`
exactly once and land on disk as float32 C-contiguous shard blocks.
Optional PCA-prefix coarse companions (``coarse_dims`` leading
principal components per shard, plus the projection itself) support
coarse-before-fine refinement without a second pass over the file.

Writes are atomic: the store is assembled in a ``.tmp`` sibling and
renamed into place, so a crashed build never leaves a half-written
store where a reader expects one.  Rebuilding over an existing store
bumps the on-disk ``epoch`` (unless the caller pins one), which moves
the store fingerprint and with it every derived cache key.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..core.pca import PCA
from ..datasets.matrix import FEATURE_DTYPE, as_feature_matrix
from .format import (
    BlockEntry,
    StoreHeader,
    align_up,
    block_crc,
    content_hash_of,
    pack_preamble,
    read_preamble,
)

__all__ = ["build_store", "shard_bounds"]

#: Default shard sizing floor — matches the service's thread-scan floor
#: so one shard maps to one worker task of useful size.
_MIN_SHARD_ROWS = 1024


def shard_bounds(n: int, n_shards: int) -> List[int]:
    """Equal-split global-row bounds (length ``n_shards + 1``)."""
    if n_shards < 1:
        raise ValueError(f"n_shards must be at least 1, got {n_shards}")
    if n_shards > n:
        raise ValueError(f"cannot cut {n} rows into {n_shards} shards")
    return [int(b) for b in np.linspace(0, n, n_shards + 1, dtype=int)]


def _existing_epoch(path: Path) -> int:
    """The epoch of the store currently at ``path`` (-1 if none)."""
    try:
        with open(path, "rb") as handle:
            head = handle.read(1 << 20)
        header, _ = read_preamble(head)
    except (OSError, ValueError):
        return -1
    return header.epoch


def build_store(
    source,
    path: Union[str, Path],
    *,
    n_shards: Optional[int] = None,
    coarse_dims: int = 0,
    labels=None,
    epoch: Optional[int] = None,
) -> Path:
    """Write ``source``'s features to a store file at ``path``.

    Args:
        source: a raw ``(n, p)`` array, a ``FeatureDatabase`` or a
            ``GaussianSample`` — anything
            :func:`~repro.datasets.matrix.as_feature_matrix` accepts.
        path: target file; written atomically via a ``.tmp`` sibling.
        n_shards: shard count; default sizes shards to at least 1024
            rows, capped at 8.
        coarse_dims: width of the PCA-prefix companion blocks
            (0 disables them).
        labels: optional per-row integer labels; defaults to the
            source's own ``labels`` attribute when it has one.
        epoch: pin the store epoch; default is one past the epoch of
            any store already at ``path`` (0 for a fresh path), so a
            rebuild always moves the fingerprint.

    Returns:
        The path written.
    """
    path = Path(path)
    matrix = as_feature_matrix(source)
    n, dimension = matrix.shape
    if n_shards is None:
        n_shards = max(1, min(8, n // _MIN_SHARD_ROWS))
    bounds = shard_bounds(n, n_shards)
    if labels is None:
        labels = getattr(source, "labels", None)
    if epoch is None:
        epoch = _existing_epoch(path) + 1
    if epoch < 0:
        raise ValueError(f"epoch must be non-negative, got {epoch}")
    if coarse_dims < 0 or coarse_dims > dimension:
        raise ValueError(f"coarse_dims {coarse_dims} out of range for p={dimension}")

    arrays = []  # (name, C-contiguous array) in on-disk order
    for i in range(n_shards):
        arrays.append((f"shard/{i:04d}", matrix[bounds[i] : bounds[i + 1]]))
    if coarse_dims:
        pca = PCA(n_components=coarse_dims).fit(matrix)
        projected = np.ascontiguousarray(pca.transform(matrix), dtype=FEATURE_DTYPE)
        for i in range(n_shards):
            arrays.append((f"coarse/{i:04d}", projected[bounds[i] : bounds[i + 1]]))
        arrays.append(
            ("coarse/mean", np.ascontiguousarray(pca.mean_, dtype=FEATURE_DTYPE))
        )
        arrays.append(
            (
                "coarse/components",
                np.ascontiguousarray(pca.components_, dtype=FEATURE_DTYPE),
            )
        )
    if labels is not None:
        label_array = np.ascontiguousarray(np.asarray(labels), dtype="<i8")
        if label_array.shape != (n,):
            raise ValueError(
                f"labels must have shape ({n},), got {label_array.shape}"
            )
        arrays.append(("labels", label_array))

    entries = []
    block_bytes = []
    offset = 0
    for name, array in arrays:
        data = array.tobytes()  # C-order snapshot of exactly this block
        entries.append(
            BlockEntry(
                name=name,
                dtype=array.dtype.newbyteorder("<").str,
                shape=tuple(int(s) for s in array.shape),
                offset=offset,
                nbytes=len(data),
                crc32=block_crc(data),
            )
        )
        block_bytes.append(data)
        offset = align_up(offset + len(data))

    header = StoreHeader(
        epoch=int(epoch),
        n=n,
        dimension=dimension,
        dtype=FEATURE_DTYPE.str,
        row_offsets=tuple(bounds),
        coarse_dims=int(coarse_dims),
        blocks=tuple(entries),
        content_hash=content_hash_of(block_bytes),
    )
    header.validate()

    tmp = path.with_suffix(path.suffix + ".tmp")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(tmp, "wb") as handle:
        handle.write(pack_preamble(header.to_json()))
        position = 0
        for entry, data in zip(entries, block_bytes):
            if entry.offset > position:
                handle.write(b"\x00" * (entry.offset - position))
            handle.write(data)
            position = entry.offset + entry.nbytes
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path
