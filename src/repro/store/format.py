"""The on-disk layout of a Qcluster feature store.

A store file is, in order:

1. a fixed 16-byte preamble: the 8-byte magic ``b"QCSTORE1"``, a
   ``<I`` format version, and the ``<I`` byte length of the JSON
   header that follows;
2. the UTF-8 JSON header (padded with spaces to a 64-byte boundary)
   describing the dataset (``n``, ``dimension``, ``dtype``, ``epoch``),
   the shard partition, and a *block table*;
3. the data blocks themselves, each 64-byte aligned.

Every block-table entry records the block's name, shape, byte length,
byte offset **relative to the first data byte** (so the header's own
length never feeds back into the offsets it describes), and a
``zlib.crc32`` over the block's raw bytes — the same per-payload CRC
discipline the session checkpoints use, so torn writes and bit rot are
caught at read time, block by block.  The header additionally carries a
``content_hash``: a blake2b digest over every block's bytes in table
order.  ``content_hash:epoch`` is the store's *fingerprint* — the salt
the service mixes into result-cache and kernel-cache keys so two
stores (or two epochs of one store) can never alias each other's
cached pages.

Block names are paths in a tiny namespace:

* ``shard/0000`` … — the float32 C-contiguous ``(rows, p)`` feature
  shards, in row order (shard ``i`` holds global rows
  ``[row_offsets[i], row_offsets[i+1])``);
* ``coarse/0000`` … — optional float32 ``(rows, d)`` PCA-prefix
  companions of each shard (coarse-before-fine refinement);
* ``coarse/mean``, ``coarse/components`` — the PCA projection that
  produced them (so a reader can project queries into the same basis);
* ``labels`` — optional int64 category labels.

Integrity checks are *verify-on-first-access*: opening a store reads
only the preamble and header; a block's CRC is checked the first time
that block is handed out (and by ``verify()``, which walks all of
them).
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "ALIGNMENT",
    "StoreFormatError",
    "BlockEntry",
    "StoreHeader",
    "block_crc",
    "content_hash_of",
    "pack_preamble",
    "read_preamble",
    "align_up",
]

#: File magic: 8 bytes at offset 0.
MAGIC = b"QCSTORE1"

#: On-disk format version (bump on any incompatible layout change).
FORMAT_VERSION = 1

#: Every data block starts on a multiple of this many bytes, so mmap'd
#: float32 views are safely (over-)aligned for vectorized kernels.
ALIGNMENT = 64

_PREAMBLE = struct.Struct("<8sII")  # magic, version, header byte length


class StoreFormatError(ValueError):
    """The file is not a store, or its header is malformed/corrupt."""


def align_up(offset: int) -> int:
    """``offset`` rounded up to the next :data:`ALIGNMENT` boundary."""
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def block_crc(data: bytes) -> int:
    """``zlib.crc32`` of a block's raw bytes (unsigned)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def content_hash_of(block_bytes: List[bytes]) -> str:
    """Blake2b digest over every block's bytes, in block-table order."""
    digest = hashlib.blake2b(digest_size=16)
    for data in block_bytes:
        digest.update(data)
    return digest.hexdigest()


@dataclass(frozen=True)
class BlockEntry:
    """One data block in the table.

    Attributes:
        name: namespace path (``shard/0000``, ``coarse/mean``, ...).
        dtype: NumPy dtype string (``"<f4"``, ``"<i8"``).
        shape: the array shape the bytes reassemble into.
        offset: byte offset of the block **relative to data_start**.
        nbytes: exact byte length of the block.
        crc32: ``zlib.crc32`` over the block's bytes.
    """

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int
    crc32: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
            "nbytes": self.nbytes,
            "crc32": self.crc32,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BlockEntry":
        try:
            return cls(
                name=str(data["name"]),
                dtype=str(data["dtype"]),
                shape=tuple(int(s) for s in data["shape"]),
                offset=int(data["offset"]),
                nbytes=int(data["nbytes"]),
                crc32=int(data["crc32"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreFormatError(f"malformed block entry: {data!r}") from error


@dataclass(frozen=True)
class StoreHeader:
    """The JSON header: dataset identity plus the block table.

    Attributes:
        epoch: monotonically bumped by rebuilds of the same logical
            dataset; part of the store fingerprint.
        n: total rows across all shards.
        dimension: feature dimensionality ``p``.
        dtype: element type of the feature shards (``"<f4"``).
        row_offsets: length ``n_shards + 1`` global-row bounds; shard
            ``i`` holds rows ``[row_offsets[i], row_offsets[i+1])``.
        coarse_dims: PCA-prefix width of the coarse blocks (0 = none).
        blocks: the block table, in on-disk order.
        content_hash: blake2b over all block bytes in table order.
    """

    epoch: int
    n: int
    dimension: int
    dtype: str
    row_offsets: Tuple[int, ...]
    coarse_dims: int
    blocks: Tuple[BlockEntry, ...]
    content_hash: str

    @property
    def n_shards(self) -> int:
        return len(self.row_offsets) - 1

    @property
    def fingerprint(self) -> str:
        """``content_hash:epoch`` — the cache-salt identity of this store."""
        return f"{self.content_hash}:{self.epoch}"

    def block(self, name: str) -> BlockEntry:
        for entry in self.blocks:
            if entry.name == name:
                return entry
        raise KeyError(name)

    def has_block(self, name: str) -> bool:
        return any(entry.name == name for entry in self.blocks)

    def to_json(self) -> bytes:
        payload = {
            "epoch": self.epoch,
            "n": self.n,
            "dimension": self.dimension,
            "dtype": self.dtype,
            "row_offsets": list(self.row_offsets),
            "coarse_dims": self.coarse_dims,
            "content_hash": self.content_hash,
            "blocks": [entry.to_dict() for entry in self.blocks],
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def from_json(cls, data: bytes) -> "StoreHeader":
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise StoreFormatError("store header is not valid JSON") from error
        try:
            header = cls(
                epoch=int(payload["epoch"]),
                n=int(payload["n"]),
                dimension=int(payload["dimension"]),
                dtype=str(payload["dtype"]),
                row_offsets=tuple(int(b) for b in payload["row_offsets"]),
                coarse_dims=int(payload["coarse_dims"]),
                blocks=tuple(
                    BlockEntry.from_dict(entry) for entry in payload["blocks"]
                ),
                content_hash=str(payload["content_hash"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            if isinstance(error, StoreFormatError):
                raise
            raise StoreFormatError("store header is missing required fields") from error
        header.validate()
        return header

    def validate(self) -> None:
        """Structural sanity: bounds, shapes and offsets must cohere."""
        if self.n < 1 or self.dimension < 1:
            raise StoreFormatError(
                f"store must be non-empty, got n={self.n}, p={self.dimension}"
            )
        if len(self.row_offsets) < 2 or self.row_offsets[0] != 0 or self.row_offsets[-1] != self.n:
            raise StoreFormatError(f"bad row offsets {self.row_offsets} for n={self.n}")
        if any(b > a for a, b in zip(self.row_offsets[1:], self.row_offsets)):
            raise StoreFormatError(f"row offsets must be non-decreasing: {self.row_offsets}")
        if self.coarse_dims < 0 or self.coarse_dims > self.dimension:
            raise StoreFormatError(
                f"coarse_dims {self.coarse_dims} out of range for p={self.dimension}"
            )
        for i in range(self.n_shards):
            rows = self.row_offsets[i + 1] - self.row_offsets[i]
            entry = self.block(f"shard/{i:04d}")
            expected = (rows, self.dimension)
            if entry.shape != expected:
                raise StoreFormatError(
                    f"block {entry.name} shape {entry.shape} != expected {expected}"
                )
            size = int(np.prod(entry.shape)) * np.dtype(entry.dtype).itemsize
            if size != entry.nbytes:
                raise StoreFormatError(
                    f"block {entry.name} nbytes {entry.nbytes} != shape size {size}"
                )
        for entry in self.blocks:
            if entry.offset % ALIGNMENT:
                raise StoreFormatError(
                    f"block {entry.name} offset {entry.offset} is not "
                    f"{ALIGNMENT}-byte aligned"
                )


def pack_preamble(header_json: bytes) -> bytes:
    """The fixed preamble plus the space-padded JSON header.

    The returned bytes end exactly at ``data_start`` — the first
    64-byte boundary after the header — so block offsets (relative to
    ``data_start``) can be computed before the header is serialized.
    """
    raw = _PREAMBLE.pack(MAGIC, FORMAT_VERSION, len(header_json)) + header_json
    return raw + b" " * (align_up(len(raw)) - len(raw))


def read_preamble(data: bytes) -> Tuple[StoreHeader, int]:
    """Parse ``(header, data_start)`` from the head of a store file."""
    if len(data) < _PREAMBLE.size:
        raise StoreFormatError("file too short to be a feature store")
    magic, version, header_len = _PREAMBLE.unpack_from(data, 0)
    if magic != MAGIC:
        raise StoreFormatError(f"bad magic {magic!r}; not a feature store")
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"unsupported store format version {version} (expected {FORMAT_VERSION})"
        )
    end = _PREAMBLE.size + header_len
    if len(data) < end:
        raise StoreFormatError("store header is truncated")
    header = StoreHeader.from_json(data[_PREAMBLE.size : end])
    return header, align_up(end)
