"""The builtin chaos plans the CI matrix replays on every PR.

Seeded scenarios, each aimed at a distinct recovery mechanism:

* ``worker-crash`` — shard-pool tasks and index node reads raise;
  exercised paths: bounded-backoff shard retries, the
  :class:`~repro.service.degrade.SessionGuard` error trip onto the
  exact fallback scan, and explicit ``shard_failed`` degradation when
  retries run dry.
* ``slow-shard`` — shard tasks and node reads stall; exercised paths:
  soft-deadline degradation and hedged re-dispatch of stragglers.
  Latency never changes data, so every response must stay exact.
* ``corrupt-checkpoint`` — checkpoint writes are torn, cache entries
  rot, restores hiccup once; exercised paths: CRC validation with
  quarantine-and-rebuild, result-cache integrity checksums, and
  restore retries.
* ``torn-block`` — one feature-store block suffers a torn read (plus
  transient block I/O and a slow open); exercised paths: the store's
  CRC quarantine, permanent-error fast-fail in the retry layer, and
  explicit ``store_block_corrupt`` degradation of the affected scans
  while every other shard keeps serving.  Replay store-backed
  (``chaos --plan torn-block --store``) to arm the store sites.
* ``batch-abort`` — micro-batch executions abort or stall mid-flight;
  exercised paths: the batching executor's lossless per-request serial
  fallback (a failed batch must not fail any query in it) and
  deadline-aware cutoffs under injected batch latency.  Replay with
  batching on (``chaos --plan batch-abort --batching``) to arm the
  ``batch.execute`` site.
* ``ann-descend`` — spill-tree node reads fail mid-descent; exercised
  paths: the ANN tier's rescue by the exact sharded scan (pages
  stamped ``ann_fallback``, never an error), with surviving descents
  staying deterministic.  Replay with the tier on (``chaos --plan
  ann-descend --ann``) to arm the ``index.descend`` site.

Plans are plain :class:`~repro.faults.plan.FaultPlan` values — replay
one with ``python -m repro.cli chaos --plan <name>`` or dump it with
``--save-plan`` to version a regression scenario.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .plan import FaultPlan, FaultSpec

__all__ = ["BUILTIN_PLAN_NAMES", "builtin_plan"]


def _worker_crash(seed: int) -> Tuple[FaultSpec, ...]:
    return (
        # Half the shard-task attempts die; with 3 retry attempts most
        # shards recover (byte-identical results), a few exhaust the
        # budget and surface as explicitly degraded pages.
        FaultSpec("shard.scan", "error", probability=0.5, message="worker crashed"),
        # Rare node-read failures abort the index search, tripping the
        # session guard onto the exact fallback scan.
        FaultSpec("tree.node", "error", probability=0.02, max_fires=4, message="node read failed"),
    )


def _slow_shard(seed: int) -> Tuple[FaultSpec, ...]:
    return (
        # Straggling shards: the hedged re-dispatch should win the race.
        FaultSpec("shard.scan", "latency", probability=0.5, latency_s=0.05),
        # Occasional slow node reads blow the soft deadline on the
        # index path without corrupting anything.
        FaultSpec("tree.node", "latency", probability=0.01, latency_s=0.01, max_fires=16),
    )


def _corrupt_checkpoint(seed: int) -> Tuple[FaultSpec, ...]:
    return (
        # Every second checkpoint write per session is torn mid-file.
        FaultSpec("checkpoint.save", "corrupt", every=2, message="torn write"),
        # The first restore read per session fails once (transient I/O);
        # the store's retry must absorb it.
        FaultSpec("checkpoint.restore", "error", at=(1,), message="transient read error"),
        # Result-cache rot: every third stored page is corrupted in
        # place; integrity checksums must catch it on read.
        FaultSpec("cache.put", "corrupt", every=3),
        # And sometimes the cache backend just errors outright.
        FaultSpec("cache.get", "error", every=7, message="cache backend error"),
    )


def _torn_block(seed: int) -> Tuple[FaultSpec, ...]:
    return (
        # The third read of one feature block is torn mid-page (late
        # enough that at least one scan completes clean first): the
        # store quarantines it permanently and every scan needing that
        # shard degrades to the surviving coverage, explicitly tagged
        # ``store_block_corrupt`` (the retry layer must *not* burn its
        # backoff budget on it).
        FaultSpec(
            "store.block_read",
            "corrupt",
            key="shard/0001",
            at=(3,),
            message="torn block read",
        ),
        # Transient I/O on other block reads: absorbed by the shard
        # retry, so affected responses stay exact.
        FaultSpec(
            "store.block_read",
            "error",
            probability=0.05,
            max_fires=4,
            message="transient block I/O",
        ),
        # A cold page cache makes the open itself sluggish once or twice.
        FaultSpec("store.open", "latency", probability=0.5, latency_s=0.01, max_fires=2),
    )


def _batch_abort(seed: int) -> Tuple[FaultSpec, ...]:
    return (
        # A large fraction of micro-batch executions abort outright.
        # Every member of an aborted batch must be re-served by the
        # per-request serial fallback, byte-identical to the fault-free
        # run — the executor is lossless under batch failure.
        FaultSpec(
            "batch.execute",
            "error",
            probability=0.4,
            message="batch executor aborted",
        ),
        # Straggling batches: injected latency stretches the collection
        # window without changing any data, so responses stay exact.
        FaultSpec(
            "batch.execute",
            "latency",
            probability=0.2,
            latency_s=0.02,
            max_fires=8,
        ),
    )


def _ann_descend(seed: int) -> Tuple[FaultSpec, ...]:
    return (
        # A good fraction of defeatist descents hit a bad node read and
        # abort; the engine must re-serve each one through the exact
        # sharded scan, stamped ``ann_fallback`` — announced rescue,
        # never a failed or silently-exact page.
        # Per *node* probability: a defeatist request touches dozens of
        # nodes across its representatives, so this yields a healthy
        # minority of per-request aborts, not a blanket outage.
        FaultSpec(
            "index.descend",
            "error",
            probability=0.04,
            message="spill node read failed",
        ),
        # Slow node reads on the surviving descents: latency only, so
        # the reached leaves — and therefore the pages — are unchanged.
        FaultSpec(
            "index.descend",
            "latency",
            probability=0.02,
            latency_s=0.002,
            max_fires=16,
        ),
    )


_BUILDERS = {
    "worker-crash": _worker_crash,
    "slow-shard": _slow_shard,
    "corrupt-checkpoint": _corrupt_checkpoint,
    "torn-block": _torn_block,
    "batch-abort": _batch_abort,
    "ann-descend": _ann_descend,
}

#: The plan names the CI chaos matrix iterates.
BUILTIN_PLAN_NAMES: Tuple[str, ...] = tuple(sorted(_BUILDERS))


def builtin_plan(name: str, seed: int = 0) -> FaultPlan:
    """The named builtin plan, seeded (raises ``KeyError`` on a typo)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin plan {name!r}; available: {list(BUILTIN_PLAN_NAMES)}"
        ) from None
    return FaultPlan(specs=builder(seed), seed=seed, name=name)


def builtin_plans(seed: int = 0) -> Dict[str, FaultPlan]:
    """All builtin plans keyed by name (one seed for the whole set)."""
    return {name: builtin_plan(name, seed) for name in BUILTIN_PLAN_NAMES}
