"""Deterministic fault injection for the retrieval service.

A serving system's failure paths are code too — and untested code is
broken code.  This package makes failures *provokable on demand and
replayable bit-for-bit*:

* :mod:`~repro.faults.plan` — :class:`FaultSpec` / :class:`FaultPlan`
  (seeded, JSON-serializable fault rules) and the :class:`FaultClock`
  of per-``(site, key)`` invocation counters that makes every firing
  decision a pure function of the plan;
* :mod:`~repro.faults.inject` — the ambient-contextvars activation
  (:func:`activate_faults`) and the :func:`fault_point` hook
  instrumented modules plant at named sites, mirroring
  :mod:`repro.obs`'s tracer plumbing (and sharing its disabled-cost
  budget);
* :mod:`~repro.faults.plans` — the builtin ``worker-crash`` /
  ``slow-shard`` / ``corrupt-checkpoint`` scenarios the CI chaos job
  replays on every PR.

Disabled by default: with no plan armed, every injection point costs
one context-variable read.  See ``docs/RESILIENCE.md`` for the site
catalogue and the recovery semantics each plan exercises.
"""

from .inject import (
    ActiveFaults,
    activate_faults,
    active_faults,
    fault_point,
    faults_active,
    register_site,
    registered_sites,
)
from .plan import (
    FAULT_KINDS,
    FaultClock,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_payload,
)
from .plans import BUILTIN_PLAN_NAMES, builtin_plan, builtin_plans

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultClock",
    "InjectedFault",
    "corrupt_payload",
    "ActiveFaults",
    "activate_faults",
    "active_faults",
    "faults_active",
    "fault_point",
    "register_site",
    "registered_sites",
    "BUILTIN_PLAN_NAMES",
    "builtin_plan",
    "builtin_plans",
]
