"""Seeded fault plans: *what* breaks, *where*, and *when* — deterministically.

Chaos testing is only useful when a failure found on Tuesday can be
replayed on Wednesday.  Everything here is therefore a pure function of
the plan: a :class:`FaultSpec` names an injection site and a trigger
(fixed invocation numbers, a modulus, or a seeded pseudo-random
probability), and the firing decision for the *n*-th invocation of a
``(site, key)`` pair depends only on ``(seed, site, key, n)`` — never
on wall-clock time, thread ids, or :mod:`random` state.  Two runs of
the same single-driver workload under the same plan inject exactly the
same faults; the CI chaos job and ``cli chaos`` both rely on that.

A :class:`FaultClock` carries the per-``(site, key)`` invocation
counters (the only runtime state), and :class:`FaultPlan` is the static,
JSON-serializable configuration that ``cli chaos --save-plan`` writes
and ``--plan-file`` replays.

Three fault kinds cover the failure modes a retrieval service meets:

* ``"error"`` — raise :class:`InjectedFault` at the site (worker crash,
  I/O error, kernel compilation failure);
* ``"latency"`` — sleep ``latency_s`` before continuing (slow shard,
  cold storage, noisy neighbour);
* ``"corrupt"`` — deterministically garble the payload offered at the
  site (bit rot in a cache entry, a torn checkpoint write).
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultClock",
    "corrupt_payload",
]

#: The fault kinds a spec may request.
FAULT_KINDS = ("error", "latency", "corrupt")


class InjectedFault(RuntimeError):
    """An exception raised on purpose by the fault-injection layer.

    Carries the site so recovery tests can assert *where* the failure
    originated; otherwise indistinguishable from a real fault, which is
    the point — resilience code must not special-case it.
    """

    def __init__(self, site: str, key: Optional[str], count: int, message: str = "") -> None:
        self.site = site
        self.key = key
        self.count = count
        detail = message or "injected fault"
        super().__init__(f"{detail} at {site!r} (key={key!r}, invocation {count})")


def corrupt_payload(payload: Any) -> Any:
    """Deterministically garble ``payload`` (same input, same damage).

    * ``str``/``bytes`` are truncated to two thirds and given a garbage
      tail — a torn write: the head parses, the tail does not;
    * numeric arrays get their first element perturbed (sign flip plus
      one) on a copy — single-bit rot that any checksum catches;
    * ``(ids, distances)``-style tuples/lists have their last array
      corrupted;
    * anything else is replaced by ``None`` (total loss).
    """
    if isinstance(payload, str):
        return payload[: max(1, (2 * len(payload)) // 3)] + "\x00garbled"
    if isinstance(payload, bytes):
        return payload[: max(1, (2 * len(payload)) // 3)] + b"\x00garbled"
    if isinstance(payload, np.ndarray):
        corrupted = payload.copy()
        if corrupted.size:
            flat = corrupted.reshape(-1)
            flat[0] = -(flat[0] + 1)
        return corrupted
    if isinstance(payload, (tuple, list)):
        items = list(payload)
        for position in range(len(items) - 1, -1, -1):
            if isinstance(items[position], np.ndarray):
                items[position] = corrupt_payload(items[position])
                break
        else:
            return None
        return tuple(items) if isinstance(payload, tuple) else items
    return None


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault rule bound to a named injection site.

    Exactly one trigger must be set: ``at`` (fire on those 1-based
    invocation counts of the matching ``(site, key)`` pair), ``every``
    (fire on every n-th invocation), or ``probability`` (a seeded
    pseudo-random draw — deterministic per ``(seed, spec, site, key,
    count)``, so it replays bit-for-bit).

    Attributes:
        site: registered injection-site name (e.g. ``"shard.scan"``).
        kind: ``"error"``, ``"latency"`` or ``"corrupt"``.
        at: 1-based invocation counts to fire on.
        every: fire when ``count % every == 0``.
        probability: seeded firing probability in ``(0, 1]``.
        key: only fire for invocations carrying this operation key
            (``None`` matches any key).
        latency_s: injected delay for ``"latency"`` faults.
        max_fires: cap on total fires of this spec per activation
            (``None`` = unlimited).
        message: human-readable tag carried by :class:`InjectedFault`.
    """

    site: str
    kind: str
    at: Tuple[int, ...] = ()
    every: int = 0
    probability: float = 0.0
    key: Optional[str] = None
    latency_s: float = 0.0
    max_fires: Optional[int] = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        triggers = sum((bool(self.at), self.every > 0, self.probability > 0))
        if triggers != 1:
            raise ValueError(
                "exactly one trigger (at / every / probability) must be set, "
                f"got at={self.at!r}, every={self.every}, probability={self.probability}"
            )
        if self.at and any(count < 1 for count in self.at):
            raise ValueError(f"'at' counts are 1-based, got {self.at}")
        if self.every < 0:
            raise ValueError(f"every must be non-negative, got {self.every}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {self.probability}")
        if self.kind == "latency" and self.latency_s <= 0:
            raise ValueError(f"latency faults need latency_s > 0, got {self.latency_s}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be non-negative, got {self.latency_s}")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be at least 1, got {self.max_fires}")
        # Normalize (tuple-ness matters for JSON round trips and hashing).
        object.__setattr__(self, "at", tuple(int(count) for count in self.at))

    def matches(self, seed: int, index: int, key: Optional[str], count: int) -> bool:
        """Whether this spec fires on the ``count``-th matching invocation.

        Pure: depends only on the arguments (``index`` is the spec's
        position in its plan, so two probability specs on one site draw
        independently).
        """
        if self.key is not None and self.key != key:
            return False
        if self.at:
            return count in self.at
        if self.every:
            return count % self.every == 0
        return _unit_draw(seed, index, self.site, key, count) < self.probability

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (``at`` becomes a list)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "at": list(self.at),
            "every": self.every,
            "probability": self.probability,
            "key": self.key,
            "latency_s": self.latency_s,
            "max_fires": self.max_fires,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        payload = dict(data)
        if "at" in payload:
            payload["at"] = tuple(payload["at"])
        return cls(**payload)


def _unit_draw(seed: int, index: int, site: str, key: Optional[str], count: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for a probability spec."""
    material = f"{seed}|{index}|{site}|{key}|{count}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class FaultClock:
    """Thread-safe per-``(site, key)`` invocation counters.

    The clock is the *only* mutable state of an activation: logical
    invocation counts, never wall time.  Counts are monotonically
    increasing per pair, so a sequential workload ticks each pair in a
    reproducible order and the plan's decisions replay exactly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[Tuple[str, Optional[str]], int] = {}

    def tick(self, site: str, key: Optional[str]) -> int:
        """Increment and return the 1-based count for ``(site, key)``."""
        with self._lock:
            count = self._counts.get((site, key), 0) + 1
            self._counts[(site, key)] = count
            return count

    def count(self, site: str, key: Optional[str] = None) -> int:
        """Invocations seen so far for ``(site, key)`` (0 if never)."""
        with self._lock:
            return self._counts.get((site, key), 0)

    def snapshot(self) -> Dict[str, int]:
        """``{"site|key": count}`` view for diagnostics."""
        with self._lock:
            return {
                f"{site}|{key if key is not None else '*'}": count
                for (site, key), count in sorted(self._counts.items(), key=str)
            }


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded set of fault specs — the replayable artifact.

    Attributes:
        specs: the fault rules, in order (order is part of the identity:
            probability draws mix in each spec's index).
        seed: the seed for all pseudo-random triggers.
        name: optional label (builtin plans set it; shows up in stats).
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"specs must be FaultSpec instances, got {type(spec)!r}")

    def specs_for(self, site: str) -> List[Tuple[int, FaultSpec]]:
        """``(index, spec)`` pairs registered against ``site``."""
        return [
            (index, spec) for index, spec in enumerate(self.specs) if spec.site == site
        ]

    @property
    def sites(self) -> Tuple[str, ...]:
        """The distinct sites this plan can touch, sorted."""
        return tuple(sorted({spec.site for spec in self.specs}))

    def validate_sites(self, registered: Sequence[str]) -> None:
        """Raise if any spec names a site nobody registered (typo guard)."""
        unknown = [site for site in self.sites if site not in registered]
        if unknown:
            raise ValueError(
                f"fault plan {self.name or '<unnamed>'} targets unregistered "
                f"sites {unknown}; registered: {sorted(registered)}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form."""
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialized plan, the ``cli chaos --save-plan`` format."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            specs=tuple(FaultSpec.from_dict(spec) for spec in data.get("specs", ())),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan previously written by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
