"""Ambient fault activation and the :func:`fault_point` hook.

The plumbing mirrors :mod:`repro.obs.tracer` exactly: a context
variable carries the active :class:`ActiveFaults` (default ``None`` —
disabled), instrumented modules call :func:`fault_point` at named
sites without holding any object, and
``contextvars.copy_context().run(...)`` ships the activation into
shard-pool worker threads alongside the tracer.

**Disabled cost.**  With no plan active, :func:`fault_point` is one
context-variable read and a ``None`` check — the same budget discipline
as the null tracer, and measured by the same benchmark
(``benchmarks/test_obs_overhead.py``).  Library hot paths therefore
keep their injection points compiled in unconditionally.

**Sites** are registered at import time by the instrumented module
(:func:`register_site`), giving plans a typo guard
(:meth:`~repro.faults.plan.FaultPlan.validate_sites`) and operators a
discoverable catalogue (``registered_sites()``; see
``docs/RESILIENCE.md`` for the full table).
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

from ..obs import add_event
from .plan import FaultClock, FaultPlan, InjectedFault, corrupt_payload

__all__ = [
    "register_site",
    "registered_sites",
    "ActiveFaults",
    "activate_faults",
    "active_faults",
    "faults_active",
    "fault_point",
]

#: Sentinel distinguishing "no payload offered" from ``payload=None``.
_NO_PAYLOAD = object()

_REGISTRY_LOCK = threading.Lock()
_SITES: Dict[str, str] = {}

#: The ambient activation. ``None`` = fault injection fully disabled.
_ACTIVE_FAULTS: "contextvars.ContextVar[Optional[ActiveFaults]]" = contextvars.ContextVar(
    "repro_active_faults", default=None
)


def register_site(name: str, description: str) -> str:
    """Declare a named injection point (idempotent; import-time).

    Returns the name so modules can bind it to a constant::

        _SITE_SCAN = register_site("shard.scan", "per-shard top-k task")
    """
    with _REGISTRY_LOCK:
        _SITES[name] = description
    return name


def registered_sites() -> Dict[str, str]:
    """``{site: description}`` for every registered injection point."""
    with _REGISTRY_LOCK:
        return dict(sorted(_SITES.items()))


class ActiveFaults:
    """One activation of a :class:`FaultPlan`: plan + clock + fire stats.

    The plan is immutable configuration; this object owns the runtime
    state — invocation counters (:class:`FaultClock`), per-spec fire
    counts (for ``max_fires`` and reporting), and the sleep function
    used for latency faults (injectable so tests replay latency plans
    instantly).
    """

    def __init__(
        self,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.plan = plan
        self.clock = FaultClock()
        self._sleep = sleep
        self._lock = threading.Lock()
        self._fires_by_spec: Dict[int, int] = {}
        self._fires_by_site: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def total_fires(self) -> int:
        """Faults injected so far under this activation."""
        with self._lock:
            return sum(self._fires_by_spec.values())

    def stats(self) -> Dict[str, Any]:
        """``{plan, seed, total_fires, by_site, invocations}`` summary."""
        with self._lock:
            by_site = {
                site: dict(kinds) for site, kinds in sorted(self._fires_by_site.items())
            }
            total = sum(self._fires_by_spec.values())
        return {
            "plan": self.plan.name or "<unnamed>",
            "seed": self.plan.seed,
            "total_fires": total,
            "by_site": by_site,
            "invocations": self.clock.snapshot(),
        }

    def _record_fire(self, index: int, site: str, kind: str) -> None:
        with self._lock:
            self._fires_by_spec[index] = self._fires_by_spec.get(index, 0) + 1
            kinds = self._fires_by_site.setdefault(site, {})
            kinds[kind] = kinds.get(kind, 0) + 1

    def _fires_of(self, index: int) -> int:
        with self._lock:
            return self._fires_by_spec.get(index, 0)

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------

    def check(self, site: str, key: Optional[str], payload: Any) -> Any:
        """Tick the clock for ``(site, key)`` and apply any firing specs.

        Latency fires sleep first; a corrupt fire transforms the
        offered payload; an error fire raises :class:`InjectedFault`
        last (after any injected delay, like a slow call that then
        dies).  Returns the (possibly corrupted) payload.
        """
        count = self.clock.tick(site, key)
        error: Optional[InjectedFault] = None
        for index, spec in self.plan.specs_for(site):
            if spec.max_fires is not None and self._fires_of(index) >= spec.max_fires:
                continue
            if not spec.matches(self.plan.seed, index, key, count):
                continue
            self._record_fire(index, site, spec.kind)
            add_event("fault_injected", site=site, key=key, kind=spec.kind, count=count)
            if spec.kind == "latency":
                self._sleep(spec.latency_s)
            elif spec.kind == "corrupt":
                if payload is not _NO_PAYLOAD:
                    payload = corrupt_payload(payload)
            else:  # error
                error = InjectedFault(site, key, count, spec.message)
        if error is not None:
            raise error
        return payload


@contextmanager
def activate_faults(
    plan: FaultPlan,
    *,
    sleep: Callable[[float], None] = time.sleep,
    validate: bool = True,
) -> Iterator[ActiveFaults]:
    """Arm ``plan`` for the ``with`` body; yields the live activation.

    The binding is a context variable, so it follows
    ``contextvars.copy_context()`` into worker threads and never leaks
    across concurrent requests.  ``validate`` checks every spec against
    the registered sites (disable only when instrumented modules are
    deliberately not imported).
    """
    if validate:
        plan.validate_sites(list(registered_sites()))
    active = ActiveFaults(plan, sleep=sleep)
    token = _ACTIVE_FAULTS.set(active)
    try:
        yield active
    finally:
        _ACTIVE_FAULTS.reset(token)


def active_faults() -> Optional[ActiveFaults]:
    """The ambient activation, or ``None`` when injection is disabled."""
    return _ACTIVE_FAULTS.get()


def faults_active() -> bool:
    """Whether a fault plan is currently armed in this context."""
    return _ACTIVE_FAULTS.get() is not None


def fault_point(site: str, key: Optional[str] = None, payload: Any = _NO_PAYLOAD) -> Any:
    """The injection hook library code plants at a named site.

    Disabled (the default): one context-variable read and a ``None``
    check; the payload (if offered) is returned untouched.  Armed: the
    active plan may sleep, corrupt the payload, or raise
    :class:`InjectedFault` — exactly as configured, deterministically.

    Args:
        site: registered site name.
        key: operation key scoping the invocation counter (shard
            offset, session id, node id...); ``None`` uses the site's
            global counter.
        payload: value offered for corruption (pass-through contract:
            callers must use the return value).
    """
    active = _ACTIVE_FAULTS.get()
    if active is None:
        return None if payload is _NO_PAYLOAD else payload
    result = active.check(site, key, payload)
    return None if result is _NO_PAYLOAD else result
