"""The relevance-feedback method interface and the Qcluster adapter.

Every approach in the paper's comparison — Qcluster, query-point
movement (QPM), query expansion (QEX), FALCON — fits one contract:
start from an example point, then repeatedly absorb relevance judgments
and emit a refined query whose ``distances`` rank the database.
:class:`FeedbackMethod` fixes that contract; the baselines in
:mod:`repro.baselines` and the :class:`QclusterMethod` wrapper here
implement it, so the session runner treats them interchangeably.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.config import QclusterConfig
from ..core.distance import DisjunctiveQuery
from ..core.qcluster import QclusterEngine

__all__ = ["QueryLike", "FeedbackMethod", "QclusterMethod"]


@runtime_checkable
class QueryLike(Protocol):
    """Anything that can rank a database: exposes ``distances``."""

    def distances(self, database: np.ndarray) -> np.ndarray:
        """Length-``N`` dissimilarities for the rows of ``database``."""
        ...


class FeedbackMethod(ABC):
    """One relevance-feedback strategy in the comparative evaluation."""

    #: Identifier used in benchmark tables/legends.
    name: str = "abstract"

    @abstractmethod
    def start(self, query_point: np.ndarray) -> QueryLike:
        """Begin a session from an example feature vector."""

    @abstractmethod
    def feedback(
        self,
        relevant_points: np.ndarray,
        scores: Optional[Sequence[float]] = None,
    ) -> QueryLike:
        """Absorb one round of judgments; return the refined query."""


class QclusterMethod(FeedbackMethod):
    """The paper's method, exposed through the common interface."""

    name = "qcluster"

    def __init__(self, config: Optional[QclusterConfig] = None) -> None:
        self.config = config if config is not None else QclusterConfig()
        self.engine = QclusterEngine(self.config)

    def start(self, query_point: np.ndarray) -> DisjunctiveQuery:
        return self.engine.start(query_point)

    def feedback(
        self,
        relevant_points: np.ndarray,
        scores: Optional[Sequence[float]] = None,
    ) -> DisjunctiveQuery:
        return self.engine.feedback(relevant_points, scores)

    @property
    def n_clusters(self) -> int:
        """Current cluster count (exposed for instrumentation)."""
        return self.engine.n_clusters
