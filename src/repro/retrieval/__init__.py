"""Retrieval layer: database, simulated user, sessions, metrics, runners."""

from .database import FeatureDatabase
from .methods import FeedbackMethod, QclusterMethod
from .metrics import (
    PrecisionRecallCurve,
    average_curves,
    average_precision,
    f1_score,
    precision,
    precision_recall_curve,
    r_precision,
    recall,
)
from .runners import BatchResult, compare_methods, run_batch, sample_query_indices
from .session import FeedbackSession, IterationRecord, SessionResult
from .user import Judgment, SimulatedUser

__all__ = [
    "FeatureDatabase",
    "FeedbackMethod",
    "QclusterMethod",
    "PrecisionRecallCurve",
    "average_curves",
    "average_precision",
    "f1_score",
    "precision",
    "precision_recall_curve",
    "r_precision",
    "recall",
    "BatchResult",
    "compare_methods",
    "run_batch",
    "sample_query_indices",
    "FeedbackSession",
    "IterationRecord",
    "SessionResult",
    "Judgment",
    "SimulatedUser",
]
