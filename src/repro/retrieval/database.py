"""Feature database with category ground truth (paper Section 5 protocol).

The paper evaluates against high-level category labels assigned by
domain professionals: "images from the same category are considered
most relevant and images from related categories ... are considered
relevant".  :class:`FeatureDatabase` bundles the feature matrix with
those labels and an optional related-category relation so the simulated
user and the metrics share one source of truth.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Set

import numpy as np

__all__ = ["FeatureDatabase"]


class FeatureDatabase:
    """An ``(n, p)`` feature matrix plus per-row category labels.

    Args:
        vectors: the feature matrix.
        labels: length-``n`` category id per row.
        related: optional symmetric relation mapping a category to the
            categories "related" to it (e.g. flowers ↔ plants).  Used by
            the graded relevance judgments.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        labels: Sequence[int],
        related: Optional[Mapping[int, Set[int]]] = None,
    ) -> None:
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        labels_array = np.asarray(labels, dtype=int)
        if labels_array.shape != (vectors.shape[0],):
            raise ValueError(
                f"need one label per vector: {labels_array.shape} labels for "
                f"{vectors.shape[0]} vectors"
            )
        self.vectors = vectors
        self.labels = labels_array
        self._related: Dict[int, FrozenSet[int]] = {}
        if related:
            for category, neighbours in related.items():
                self._related[int(category)] = frozenset(int(c) for c in neighbours)

    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of database objects."""
        return self.vectors.shape[0]

    @property
    def dimension(self) -> int:
        """Feature dimensionality."""
        return self.vectors.shape[1]

    @property
    def categories(self) -> np.ndarray:
        """Sorted distinct category ids."""
        return np.unique(self.labels)

    def __len__(self) -> int:
        return self.size

    def category_of(self, index: int) -> int:
        """Category label of one database object."""
        return int(self.labels[index])

    def members_of(self, category: int) -> np.ndarray:
        """Indices of all objects in ``category``."""
        return np.nonzero(self.labels == category)[0]

    def category_size(self, category: int) -> int:
        """Number of objects in ``category`` (the recall denominator)."""
        return int(np.sum(self.labels == category))

    def related_to(self, category: int) -> FrozenSet[int]:
        """Categories declared related to ``category`` (may be empty)."""
        return self._related.get(int(category), frozenset())

    def is_relevant(self, index: int, target_category: int) -> bool:
        """Same-category or related-category membership."""
        label = self.category_of(index)
        return label == target_category or label in self.related_to(target_category)
