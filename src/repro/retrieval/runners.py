"""Batch evaluation runners (the "averaged over 100 queries" protocol).

The paper's quality numbers are averages over 100 random initial
queries.  :func:`run_batch` executes one method over a set of query
images and aggregates per-iteration precision/recall and P-R curves;
:func:`compare_methods` runs several method factories over the *same*
queries so the comparison is paired (identical starting conditions for
every approach, as in Figures 10-13 which "produce the same precision
and the same recall for the initial query").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .database import FeatureDatabase
from .methods import FeedbackMethod
from .metrics import PrecisionRecallCurve, average_curves
from .session import FeedbackSession

__all__ = ["BatchResult", "run_batch", "compare_methods", "sample_query_indices"]


@dataclass(frozen=True)
class BatchResult:
    """Aggregated quality of one method over a query batch.

    Attributes:
        mean_precision: per-iteration mean top-k precision.
        mean_recall: per-iteration mean top-k recall.
        curves: per-iteration P-R curve, averaged over queries.
        per_query_precision: ``(n_queries, n_iterations + 1)`` raw matrix.
        per_query_recall: same for recall.
    """

    mean_precision: np.ndarray
    mean_recall: np.ndarray
    curves: List[PrecisionRecallCurve]
    per_query_precision: np.ndarray
    per_query_recall: np.ndarray


def sample_query_indices(
    database: FeatureDatabase,
    n_queries: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Random query images, at most one per database object."""
    rng = rng if rng is not None else np.random.default_rng()
    if n_queries < 1:
        raise ValueError(f"n_queries must be at least 1, got {n_queries}")
    n_queries = min(n_queries, database.size)
    return rng.choice(database.size, size=n_queries, replace=False)


def run_batch(
    database: FeatureDatabase,
    method_factory: Callable[[], FeedbackMethod],
    query_indices: Sequence[int],
    k: int = 100,
    n_iterations: int = 5,
) -> BatchResult:
    """Run fresh method instances over each query and average the quality.

    A new method instance per query keeps sessions independent (feedback
    state must not leak between queries).
    """
    query_indices = list(query_indices)
    if not query_indices:
        raise ValueError("query_indices must not be empty")
    precisions: List[np.ndarray] = []
    recalls: List[np.ndarray] = []
    curves_per_iteration: List[List[PrecisionRecallCurve]] = [
        [] for _ in range(n_iterations + 1)
    ]
    for query_index in query_indices:
        session = FeedbackSession(database, method_factory(), k=k)
        outcome = session.run(int(query_index), n_iterations=n_iterations)
        precisions.append(outcome.precisions)
        recalls.append(outcome.recalls)
        for iteration, curve in enumerate(outcome.curves):
            curves_per_iteration[iteration].append(curve)
    precision_matrix = np.vstack(precisions)
    recall_matrix = np.vstack(recalls)
    return BatchResult(
        mean_precision=precision_matrix.mean(axis=0),
        mean_recall=recall_matrix.mean(axis=0),
        curves=[average_curves(curves) for curves in curves_per_iteration],
        per_query_precision=precision_matrix,
        per_query_recall=recall_matrix,
    )


def compare_methods(
    database: FeatureDatabase,
    method_factories: Dict[str, Callable[[], FeedbackMethod]],
    query_indices: Sequence[int],
    k: int = 100,
    n_iterations: int = 5,
) -> Dict[str, BatchResult]:
    """Paired comparison: every method sees the same query batch."""
    if not method_factories:
        raise ValueError("no methods to compare")
    return {
        name: run_batch(database, factory, query_indices, k=k, n_iterations=n_iterations)
        for name, factory in method_factories.items()
    }
