"""Simulated relevance judgments (paper Section 5 evaluation protocol).

The paper uses "high-level category information as the ground truth to
obtain the relevance feedback": images of the query's category are most
relevant, images of related categories are relevant.  The simulated
user reproduces that: shown a result list, it marks members of the
target category with the full relevance score and members of related
categories with a reduced score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .database import FeatureDatabase

__all__ = ["Judgment", "SimulatedUser"]


@dataclass(frozen=True)
class Judgment:
    """One round of user feedback.

    Attributes:
        relevant_indices: database indices the user marked relevant.
        scores: the relevance score given to each marked index.
    """

    relevant_indices: np.ndarray
    scores: np.ndarray

    @property
    def count(self) -> int:
        return self.relevant_indices.shape[0]


class SimulatedUser:
    """Category-oracle user.

    Args:
        database: ground-truth source.
        target_category: the category the user is "looking for".
        same_category_score: relevance score for exact-category hits
            (the paper's "most relevant").
        related_category_score: reduced score for related-category hits
            (the paper's "relevant"); only used when the database declares
            related categories.
        max_marked: optional cap on how many images the user marks per
            round (real users do not label 100 thumbnails; the paper's
            protocol marks all same-category results, which remains the
            default ``None``).
    """

    def __init__(
        self,
        database: FeatureDatabase,
        target_category: int,
        same_category_score: float = 1.0,
        related_category_score: float = 0.5,
        max_marked: int = None,
    ) -> None:
        if same_category_score <= 0 or related_category_score <= 0:
            raise ValueError("relevance scores must be strictly positive")
        if max_marked is not None and max_marked < 1:
            raise ValueError(f"max_marked must be at least 1, got {max_marked}")
        self.database = database
        self.target_category = int(target_category)
        self.same_category_score = same_category_score
        self.related_category_score = related_category_score
        self.max_marked = max_marked

    def judge(self, result_indices: Sequence[int]) -> Judgment:
        """Mark the relevant members of a result list."""
        relevant = []
        scores = []
        related = self.database.related_to(self.target_category)
        for index in result_indices:
            label = self.database.category_of(int(index))
            if label == self.target_category:
                relevant.append(int(index))
                scores.append(self.same_category_score)
            elif label in related:
                relevant.append(int(index))
                scores.append(self.related_category_score)
            if self.max_marked is not None and len(relevant) >= self.max_marked:
                break
        return Judgment(
            relevant_indices=np.asarray(relevant, dtype=int),
            scores=np.asarray(scores, dtype=float),
        )

    def relevance_mask(self, result_indices: Sequence[int]) -> Tuple[np.ndarray, int]:
        """Boolean relevance per result plus the total relevant population.

        Convenience for metric computation: the second element is the
        recall denominator (all database members of the target category
        and its related categories).
        """
        mask = np.array(
            [
                self.database.is_relevant(int(index), self.target_category)
                for index in result_indices
            ],
            dtype=bool,
        )
        total = self.database.category_size(self.target_category)
        for related in self.database.related_to(self.target_category):
            total += self.database.category_size(related)
        return mask, total
