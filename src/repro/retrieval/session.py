"""Feedback-session runner (paper Algorithm 1's outer loop + protocol).

One session = one initial query + ``n_iterations`` feedback rounds,
exactly the paper's protocol (Section 5: 100 random initial queries,
five feedback iterations, k = 100).  At each round the session

1. ranks the database with the current query,
2. records the precision/recall (and full P-R curve) of the top-k,
3. hands the relevant results to the feedback method,
4. swaps in the refined query.

Ranking can go through a :class:`~repro.index.multipoint.MultipointSearcher`
(cost-accounted index search) or a plain vectorized scan; quality
numbers are identical because both are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .database import FeatureDatabase
from .methods import FeedbackMethod
from .metrics import PrecisionRecallCurve, precision_recall_curve
from .user import SimulatedUser

__all__ = ["IterationRecord", "SessionResult", "FeedbackSession"]


@dataclass(frozen=True)
class IterationRecord:
    """Quality snapshot of one retrieval round.

    Attributes:
        iteration: 0 = initial query, 1..n = feedback rounds.
        precision: precision of the full top-k result list.
        recall: recall of the full top-k result list.
        curve: P-R at every prefix of the result list.
        n_marked: how many results the user marked relevant.
        result_indices: the ranked top-k database indices.
    """

    iteration: int
    precision: float
    recall: float
    curve: PrecisionRecallCurve
    n_marked: int
    result_indices: np.ndarray


@dataclass
class SessionResult:
    """All rounds of one session, in order."""

    records: List[IterationRecord] = field(default_factory=list)

    @property
    def precisions(self) -> np.ndarray:
        """Top-k precision per iteration (Figures 12-13 series)."""
        return np.array([r.precision for r in self.records])

    @property
    def recalls(self) -> np.ndarray:
        """Top-k recall per iteration (Figures 10-11 series)."""
        return np.array([r.recall for r in self.records])

    @property
    def curves(self) -> List[PrecisionRecallCurve]:
        """One P-R curve per iteration (Figures 8-9 series)."""
        return [r.curve for r in self.records]


class FeedbackSession:
    """Drive one method through one query's feedback iterations.

    Args:
        database: the indexed collection with ground truth.
        method: the relevance-feedback strategy under test.
        k: result-list size (the paper uses 100).
        searcher: optional index searcher with a ``search(query, k)``
            method; defaults to an exact vectorized scan.
    """

    def __init__(
        self,
        database: FeatureDatabase,
        method: FeedbackMethod,
        k: int = 100,
        searcher=None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        self.database = database
        self.method = method
        self.k = min(k, database.size)
        self.searcher = searcher

    def rank(self, query) -> np.ndarray:
        """Ranked top-k database indices for ``query`` (exact)."""
        if self.searcher is not None:
            return self.searcher.search(query, self.k).indices
        distances = query.distances(self.database.vectors)
        top = np.argpartition(distances, self.k - 1)[: self.k]
        return top[np.argsort(distances[top], kind="stable")]

    # Backwards-compatible alias (early examples used the private name).
    _rank = rank

    def run(
        self,
        query_index: int,
        n_iterations: int = 5,
        user: Optional[SimulatedUser] = None,
    ) -> SessionResult:
        """Run the initial query plus ``n_iterations`` feedback rounds.

        Args:
            query_index: database row used as the example image.
            n_iterations: feedback rounds after the initial query.
            user: judgment source; defaults to the category oracle for
                the query image's own category.
        """
        if not 0 <= query_index < self.database.size:
            raise IndexError(f"query_index {query_index} out of range")
        if n_iterations < 0:
            raise ValueError(f"n_iterations must be non-negative, got {n_iterations}")
        if user is None:
            user = SimulatedUser(self.database, self.database.category_of(query_index))

        result = SessionResult()
        query = self.method.start(self.database.vectors[query_index])
        for iteration in range(n_iterations + 1):
            ranked = self._rank(query)
            mask, total_relevant = user.relevance_mask(ranked)
            curve = precision_recall_curve(mask, total_relevant)
            judgment = user.judge(ranked)
            result.records.append(
                IterationRecord(
                    iteration=iteration,
                    precision=float(mask.mean()),
                    recall=float(mask.sum()) / total_relevant if total_relevant else 0.0,
                    curve=curve,
                    n_marked=judgment.count,
                    result_indices=ranked,
                )
            )
            if iteration == n_iterations:
                break
            if judgment.count > 0:
                query = self.method.feedback(
                    self.database.vectors[judgment.relevant_indices],
                    judgment.scores,
                )
        return result
