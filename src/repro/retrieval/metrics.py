"""Retrieval-quality metrics: precision, recall and P-R curves.

Definitions follow the paper's usage:

* **precision** at a result list = relevant retrieved / retrieved,
* **recall** at a result list = relevant retrieved / all relevant in the
  database,
* the **precision-recall graphs** of Figures 8-9 plot one (P, R) point
  per result-list size from 1 to k, one curve per feedback iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "precision",
    "recall",
    "f1_score",
    "r_precision",
    "average_precision",
    "PrecisionRecallCurve",
    "precision_recall_curve",
    "average_curves",
]


def _validate(relevance_mask: np.ndarray, total_relevant: int) -> np.ndarray:
    mask = np.asarray(relevance_mask, dtype=bool)
    if mask.ndim != 1:
        raise ValueError(f"relevance mask must be 1-d, got shape {mask.shape}")
    if total_relevant < 0:
        raise ValueError(f"total_relevant must be non-negative, got {total_relevant}")
    if int(mask.sum()) > total_relevant:
        raise ValueError(
            f"result list contains {int(mask.sum())} relevant items but "
            f"total_relevant claims only {total_relevant}"
        )
    return mask


def precision(relevance_mask: Sequence[bool]) -> float:
    """Fraction of the result list that is relevant."""
    mask = np.asarray(relevance_mask, dtype=bool)
    if mask.size == 0:
        raise ValueError("cannot compute precision of an empty result list")
    return float(mask.mean())


def recall(relevance_mask: Sequence[bool], total_relevant: int) -> float:
    """Fraction of all relevant objects that the result list retrieved."""
    mask = _validate(np.asarray(relevance_mask), total_relevant)
    if total_relevant == 0:
        return 0.0
    return float(mask.sum()) / total_relevant


def f1_score(relevance_mask: Sequence[bool], total_relevant: int) -> float:
    """Harmonic mean of precision and recall for one result list."""
    p = precision(relevance_mask)
    r = recall(relevance_mask, total_relevant)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def r_precision(relevance_mask: Sequence[bool], total_relevant: int) -> float:
    """Precision at rank R, where R is the relevant-population size.

    A classic single-number IR summary: at rank R, precision and recall
    coincide.  If the result list is shorter than R, the available
    prefix is used (a lower bound on the true value).
    """
    mask = _validate(np.asarray(relevance_mask), total_relevant)
    if total_relevant == 0:
        return 0.0
    cutoff = min(total_relevant, mask.size)
    if cutoff == 0:
        return 0.0
    return float(mask[:cutoff].sum()) / total_relevant


def average_precision(relevance_mask: Sequence[bool], total_relevant: int) -> float:
    """Mean of precision-at-hit over all relevant documents (AP).

    Unretrieved relevant documents contribute zero, so this is the
    standard rank-sensitive summary of the whole result list.
    """
    mask = _validate(np.asarray(relevance_mask), total_relevant)
    if total_relevant == 0:
        return 0.0
    hits = np.cumsum(mask)
    ranks = np.arange(1, mask.size + 1)
    precisions_at_hits = (hits / ranks)[mask]
    return float(precisions_at_hits.sum()) / total_relevant


@dataclass(frozen=True)
class PrecisionRecallCurve:
    """P-R values at every result-list prefix (Figures 8-9 format).

    Attributes:
        precisions: ``precisions[i]`` = precision of the top ``i + 1``.
        recalls: ``recalls[i]`` = recall of the top ``i + 1``.
    """

    precisions: np.ndarray
    recalls: np.ndarray

    @property
    def average_precision(self) -> float:
        """Mean precision over prefixes — a scalar summary for tests."""
        return float(self.precisions.mean())


def precision_recall_curve(
    relevance_mask: Sequence[bool],
    total_relevant: int,
) -> PrecisionRecallCurve:
    """P-R at each prefix of a ranked result list."""
    mask = _validate(np.asarray(relevance_mask), total_relevant)
    if mask.size == 0:
        raise ValueError("cannot compute a curve from an empty result list")
    hits = np.cumsum(mask)
    sizes = np.arange(1, mask.size + 1)
    precisions = hits / sizes
    recalls = hits / total_relevant if total_relevant > 0 else np.zeros_like(precisions)
    return PrecisionRecallCurve(precisions=precisions, recalls=recalls)


def average_curves(curves: List[PrecisionRecallCurve]) -> PrecisionRecallCurve:
    """Pointwise mean of same-length curves (the 100-query averaging)."""
    if not curves:
        raise ValueError("no curves to average")
    lengths = {curve.precisions.shape[0] for curve in curves}
    if len(lengths) != 1:
        raise ValueError(f"curves have mismatched lengths: {sorted(lengths)}")
    return PrecisionRecallCurve(
        precisions=np.mean([c.precisions for c in curves], axis=0),
        recalls=np.mean([c.recalls for c in curves], axis=0),
    )
