"""Compiled distance kernels for multipoint queries (paper Figure 6).

The paper's central efficiency claim is that the diagonal covariance
scheme is far cheaper than the full inverse-matrix scheme.  A naive
implementation hides that gap: if the diagonal scheme materializes a
dense ``(p, p)`` matrix and every ranking performs a full
``(N, p) @ (p, p)`` product, both schemes cost identically and Figure 6
cannot be measured.  This module makes the asymptotics real by
*compiling* a query once into the cheapest evaluator its structure
admits:

* **diagonal kernel** — a query point whose ``S^{-1}`` is exactly
  diagonal keeps only the weight vector ``w = diag(S^{-1})`` and scores
  ``d^2 = Σ_j w_j (x_j - c_j)^2`` in O(N·p) with no matrix product at
  all (the paper's MARS-style scheme, Section 4.4.4);
* **Cholesky/whitening kernel** — a full ``S^{-1}`` is factored once as
  ``S^{-1} = L L'`` so ``d^2 = ||(x - c) L||^2``; all such clusters are
  fused into one blocked, cache-tiled batched matmul
  ``(N, p) @ (p, g·p)`` that fills the whole ``(g, N)`` distance matrix
  in a single pass;
* **matmul kernel** — pathological non-positive-definite inverses fall
  back to the naive quadratic form (still without per-call conversion
  overhead).

Compiled queries are *content-addressed*: :func:`fingerprint_cluster_state`
hashes exactly the cluster statistics that determine the ranking
(means, ``S_i^{-1}``, relevance masses — the same bytes the service
result cache hashes), and :class:`KernelCache` maps fingerprints to
compiled evaluators.  Kernels are therefore reused across database
shards, feedback rounds and sessions that share a query instead of
being rebuilt on every ``distances()`` call; the compiled object is
additionally memoized on the query instance so repeated evaluation
(tree leaves, shards, result pages) costs a single attribute read.

The index's lower-bound machinery also benefits: each kernel knows its
exact per-axis bound (diagonal) or smallest eigenvalue (full), computed
once per compilation instead of once per k-NN call.

:func:`use_kernels` switches the whole layer off, restoring the naive
``quadratic_distance_many`` path — the hook the equivalence tests and
benchmarks use to compare the two implementations.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import fault_point, register_site
from ..obs import add_event, current_tracer

#: Chaos-injection site: fires once per genuine query compilation
#: (Cholesky factorization, kernel selection, fusion layout), keyed by
#: the cluster-state fingerprint.  Compilation is pure, so the service
#: retries it with bounded backoff.
_SITE_COMPILE = register_site("kernel.compile", "distance-kernel compilation")

__all__ = [
    "fingerprint_cluster_state",
    "DiagonalKernel",
    "CholeskyKernel",
    "MatmulKernel",
    "CompiledQuery",
    "KernelCache",
    "batch_tile_bounds",
    "batched_per_cluster_distances",
    "compile_query",
    "ensure_compiled",
    "default_kernel_cache",
    "kernels_enabled",
    "use_kernels",
]

#: A bound-info record: ``(center, diagonal-or-None, lambda_min)`` —
#: the exact shape :meth:`repro.index.hybridtree.HybridTree` consumes.
BoundInfo = Tuple[np.ndarray, Optional[np.ndarray], float]

#: Target element count of one whitening tile: a ``(rows, g·p)`` block
#: of the fused product plus its operands should stay cache-resident.
_TILE_ELEMENTS = 1 << 19

#: Target element count of one diagonal tile: a database block this
#: size is read from memory once and rescanned (subtract/square/dot)
#: for every cluster while it is still cache-hot.
_DIAGONAL_TILE_ELEMENTS = 1 << 15

#: Target element count of one *multi-query* tile: a database block
#: this size is read from main memory once per micro-batch and scored
#: against every batched query's kernels while it is still cache-hot,
#: instead of once per query.
_BATCH_TILE_ELEMENTS = 1 << 18


def _as_matrix(database: np.ndarray) -> np.ndarray:
    """One canonical ``(N, p)`` float view; copies only when needed.

    float32 inputs (mmap'd store shards) pass through unconverted: the
    kernels' arithmetic mixes them with float64 query statistics, and
    NumPy's float32→float64 promotion is exact, so results are
    bit-identical to scanning a float64 copy — without materializing
    one on the hot path.
    """
    database = np.atleast_2d(np.asarray(database))
    if database.dtype not in (np.float64, np.float32):
        database = database.astype(float)
    return database


def fingerprint_cluster_state(query) -> str:
    """Blake2b digest of a query's ranking-relevant cluster state.

    Hashes the per-point centers, inverse covariance matrices and
    relevance masses in order — the complete input of the distance
    function over a fixed database.  Two queries with byte-identical
    cluster statistics share a fingerprint and therefore a compiled
    kernel (and, in the service layer, cached result pages).

    A query that already carries its compiled kernel answers from the
    memo: queries are immutable, so the fingerprint recorded at
    compile time stays authoritative and repeated fingerprinting (one
    per result-page fetch in the service) costs an attribute read.
    """
    compiled = getattr(query, _MEMO_ATTRIBUTE, None)
    if compiled is not None:
        return compiled.fingerprint
    digest = hashlib.blake2b(digest_size=16)
    for point in query.points:
        digest.update(np.ascontiguousarray(point.center, dtype=float).tobytes())
        digest.update(np.ascontiguousarray(point.inverse, dtype=float).tobytes())
        digest.update(struct.pack("<d", float(point.weight)))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Per-point kernels
# ----------------------------------------------------------------------


class DiagonalKernel:
    """O(N·p) evaluator for an exactly diagonal ``S^{-1}``.

    Keeps only the centroid and the diagonal weight vector; the dense
    matrix never participates in evaluation.
    """

    kind = "diagonal"

    def __init__(self, center: np.ndarray, diagonal: np.ndarray) -> None:
        self.center = np.ascontiguousarray(center, dtype=float)
        self.diagonal = np.ascontiguousarray(diagonal, dtype=float)

    def distances(self, database: np.ndarray) -> np.ndarray:
        centered = database - self.center
        np.multiply(centered, centered, out=centered)
        return centered @ self.diagonal

    def bound_info(self) -> BoundInfo:
        # The per-axis bound is exact for a diagonal form.
        return (self.center, self.diagonal, 0.0)


class CholeskyKernel:
    """Whitening evaluator for a full positive-definite ``S^{-1}``.

    Factors ``S^{-1} = L L'`` once at compile time; then
    ``d^2(x) = ||(x - c) L||^2``.  Standalone evaluation is provided for
    completeness, but inside a :class:`CompiledQuery` all Cholesky
    kernels are fused into one batched matmul (see ``_FusedWhitening``).
    """

    kind = "cholesky"

    def __init__(self, center: np.ndarray, inverse: np.ndarray, factor: np.ndarray) -> None:
        self.center = np.ascontiguousarray(center, dtype=float)
        self.inverse = np.ascontiguousarray(inverse, dtype=float)
        self.factor = np.ascontiguousarray(factor, dtype=float)
        self._lambda_min: Optional[float] = None

    def distances(self, database: np.ndarray) -> np.ndarray:
        transformed = (database - self.center) @ self.factor
        return np.einsum("ij,ij->i", transformed, transformed)

    def bound_info(self) -> BoundInfo:
        if self._lambda_min is None:
            eigenvalues = np.linalg.eigvalsh(self.inverse)
            self._lambda_min = float(max(eigenvalues.min(), 0.0))
        return (self.center, None, self._lambda_min)


class MatmulKernel:
    """Fallback evaluator: the naive quadratic form, conversion-free.

    Used when ``S^{-1}`` is neither diagonal nor positive definite
    (possible only for hand-built queries; both covariance schemes
    produce positive-definite inverses).
    """

    kind = "matmul"

    def __init__(self, center: np.ndarray, inverse: np.ndarray) -> None:
        self.center = np.ascontiguousarray(center, dtype=float)
        self.inverse = np.ascontiguousarray(inverse, dtype=float)
        self._lambda_min: Optional[float] = None

    def distances(self, database: np.ndarray) -> np.ndarray:
        centered = database - self.center
        transformed = centered @ self.inverse
        return np.einsum("ij,ij->i", transformed, centered)

    def bound_info(self) -> BoundInfo:
        if self._lambda_min is None:
            eigenvalues = np.linalg.eigvalsh(self.inverse)
            self._lambda_min = float(max(eigenvalues.min(), 0.0))
        return (self.center, None, self._lambda_min)


class _FusedDiagonal:
    """All diagonal kernels of one query, evaluated tile by tile.

    The naive layout scans the whole database once per cluster — at
    production sizes that is g round trips to main memory for an
    operation that does almost no arithmetic.  Tiling flips the loop:
    each cache-sized block of rows is loaded once and scored against
    every cluster while hot.  Per-row results are unchanged (subtract,
    square and row-wise dot are independent of the tiling), so this is
    a pure bandwidth optimization.
    """

    def __init__(self, kernels: Sequence[DiagonalKernel], rows: Sequence[int]) -> None:
        self.rows = list(rows)
        self.centers = np.stack([k.center for k in kernels])
        self.diagonals = np.stack([k.diagonal for k in kernels])

    def write_into(self, out: np.ndarray, database: np.ndarray) -> None:
        n, p = database.shape
        tile = max(1, _DIAGONAL_TILE_ELEMENTS // max(1, p))
        buffer = np.empty((min(tile, n), p))
        for start in range(0, n, tile):
            stop = min(start + tile, n)
            block = database[start:stop]
            scratch = buffer[: stop - start]
            for position, row in enumerate(self.rows):
                np.subtract(block, self.centers[position], out=scratch)
                np.multiply(scratch, scratch, out=scratch)
                out[row, start:stop] = scratch @ self.diagonals[position]


class _FusedWhitening:
    """All Cholesky kernels of one query as a single blocked matmul.

    Stacks the whitening factors side by side into ``W`` of shape
    ``(p, m·p)`` so one ``(rows, p) @ (p, m·p)`` product per tile fills
    every cluster's distance row at once.  The database is centered on
    the mean of the participating centroids before the product — a
    shared shift that keeps the per-cluster offsets (and therefore the
    cancellation error of ``x·L - c·L``) small without breaking the
    fusion.  Tiles are sized so each block stays cache-resident.
    """

    def __init__(self, kernels: Sequence[CholeskyKernel], rows: Sequence[int]) -> None:
        self.rows = list(rows)
        self.dimension = kernels[0].center.shape[0]
        self.shift = np.mean([k.center for k in kernels], axis=0)
        self.stacked = np.ascontiguousarray(
            np.concatenate([k.factor for k in kernels], axis=1)
        )
        self.offsets = np.stack(
            [(k.center - self.shift) @ k.factor for k in kernels]
        )

    def write_into(self, out: np.ndarray, database: np.ndarray) -> None:
        p = self.dimension
        n = database.shape[0]
        tile = max(1, _TILE_ELEMENTS // max(1, self.stacked.shape[1]))
        for start in range(0, n, tile):
            stop = min(start + tile, n)
            block = database[start:stop] - self.shift
            product = block @ self.stacked
            for position, row in enumerate(self.rows):
                transformed = product[:, position * p : (position + 1) * p]
                transformed -= self.offsets[position]
                out[row, start:stop] = np.einsum(
                    "ij,ij->i", transformed, transformed
                )


# ----------------------------------------------------------------------
# Compiled queries
# ----------------------------------------------------------------------


class CompiledQuery:
    """A query's g points compiled into their cheapest evaluators.

    Produces the ``(g, N)`` per-cluster distance matrix the aggregate
    distance (Equation 5, or any power mean) is computed from.  The
    aggregation itself stays with the owning query object so one
    compiled artifact serves both the disjunctive query and the
    baselines' power-mean queries.
    """

    def __init__(self, kernels: Sequence[object], fingerprint: str) -> None:
        if not kernels:
            raise ValueError("a compiled query needs at least one kernel")
        self.kernels = list(kernels)
        self.fingerprint = fingerprint
        self.dimension = int(self.kernels[0].center.shape[0])
        diagonal_pairs = [
            (row, kernel)
            for row, kernel in enumerate(self.kernels)
            if isinstance(kernel, DiagonalKernel)
        ]
        cholesky_pairs = [
            (row, kernel)
            for row, kernel in enumerate(self.kernels)
            if isinstance(kernel, CholeskyKernel)
        ]
        self._fused_diagonal: Optional[_FusedDiagonal] = (
            _FusedDiagonal(
                [kernel for _, kernel in diagonal_pairs],
                [row for row, _ in diagonal_pairs],
            )
            if diagonal_pairs
            else None
        )
        self._fused_whitening: Optional[_FusedWhitening] = (
            _FusedWhitening(
                [kernel for _, kernel in cholesky_pairs],
                [row for row, _ in cholesky_pairs],
            )
            if cholesky_pairs
            else None
        )
        self._bound_infos: Optional[List[BoundInfo]] = None

    @property
    def size(self) -> int:
        """Number of query points ``g``."""
        return len(self.kernels)

    def per_cluster_distances(self, database: np.ndarray) -> np.ndarray:
        """``(g, N)`` quadratic distances of every row to each point."""
        database = _as_matrix(database)
        if database.shape[1] != self.dimension:
            raise ValueError(
                f"database dimension {database.shape[1]} != query dimension "
                f"{self.dimension}"
            )
        out = np.empty((self.size, database.shape[0]))
        for row, kernel in enumerate(self.kernels):
            if isinstance(kernel, MatmulKernel):
                out[row] = kernel.distances(database)
        if self._fused_diagonal is not None:
            self._fused_diagonal.write_into(out, database)
        if self._fused_whitening is not None:
            self._fused_whitening.write_into(out, database)
        return out

    def bound_infos(self) -> List[BoundInfo]:
        """Per-point ``(center, diagonal-or-None, lambda_min)`` records.

        Eigenvalues for full matrices are computed lazily on first use
        (only tree searches need them) and cached for the lifetime of
        the compiled query — i.e. across every feedback round and
        session sharing this cluster state.
        """
        if self._bound_infos is None:
            self._bound_infos = [kernel.bound_info() for kernel in self.kernels]
        return self._bound_infos


def batched_per_cluster_distances(
    compiled_queries: Sequence["CompiledQuery"], database: np.ndarray
) -> List[np.ndarray]:
    """Per-cluster distance matrices for several queries in one pass.

    The multi-query analogue of
    :meth:`CompiledQuery.per_cluster_distances`: the database is walked
    in cache-sized row tiles and each tile is scored against *every*
    batched query's kernels while the rows are still hot, so a
    micro-batch of B compatible queries reads the feature matrix from
    main memory once instead of B times.  The tile boundaries are a
    pure function of ``(n, p)`` — never of the batch size — and a
    degenerate tail is folded into the last full tile (a one-row GEMM
    may take a different BLAS accumulation path than the same row
    inside a panel).  Every caller scoring the same matrix therefore
    evaluates the exact same per-tile kernel calls, so the returned
    matrices are **bitwise identical** whether the batch holds one
    query or thirty-two.

    Args:
        compiled_queries: the batch, already compiled (see
            :func:`ensure_compiled`); queries may differ in cluster
            count and scheme.
        database: one ``(N, p)`` feature matrix shared by the batch.

    Returns:
        One ``(g_i, N)`` distance matrix per query, in batch order.
    """
    if not compiled_queries:
        return []
    database = _as_matrix(database)
    n, p = database.shape
    outs = [
        np.empty((compiled.size, n)) for compiled in compiled_queries
    ]
    for start, stop in batch_tile_bounds(n, p):
        block = database[start:stop]
        for compiled, out in zip(compiled_queries, outs):
            out[:, start:stop] = compiled.per_cluster_distances(block)
    return outs


def batch_tile_bounds(n: int, p: int) -> List[Tuple[int, int]]:
    """Row-tile ``(start, stop)`` bounds shared by every batched scorer.

    A pure function of the matrix geometry so solo and batched scans
    over the same rows make identical per-tile kernel calls; the tail
    is merged into the preceding tile, keeping every tile at least
    ``_BATCH_TILE_ELEMENTS // p`` rows tall.
    """
    tile = max(1, _BATCH_TILE_ELEMENTS // max(1, p))
    bounds = [(start, min(start + tile, n)) for start in range(0, n, tile)]
    if len(bounds) > 1 and bounds[-1][1] - bounds[-1][0] < tile:
        bounds[-2:] = [(bounds[-2][0], n)]
    return bounds


def _point_diagonal(point) -> Optional[np.ndarray]:
    """The diagonal of ``S^{-1}`` if the matrix is exactly diagonal."""
    explicit = getattr(point, "diagonal", None)
    if explicit is not None:
        return np.asarray(explicit, dtype=float)
    inverse = np.asarray(point.inverse, dtype=float)
    diagonal = np.diagonal(inverse)
    if np.count_nonzero(inverse - np.diag(diagonal)) == 0:
        return diagonal.copy()
    return None


def compile_query(query, fingerprint: Optional[str] = None) -> CompiledQuery:
    """Compile each query point into its cheapest evaluator.

    Args:
        query: anything exposing ``points`` (``DisjunctiveQuery``,
            ``PowerMeanQuery``, ...).
        fingerprint: precomputed cluster-state fingerprint, if the
            caller already has one.
    """
    if fingerprint is None:
        fingerprint = fingerprint_cluster_state(query)
    fault_point(_SITE_COMPILE, key=fingerprint)
    kernels: List[object] = []
    for point in query.points:
        diagonal = _point_diagonal(point)
        if diagonal is not None:
            kernels.append(DiagonalKernel(point.center, diagonal))
            continue
        inverse = np.asarray(point.inverse, dtype=float)
        try:
            factor = np.linalg.cholesky(inverse)
        except np.linalg.LinAlgError:
            kernels.append(MatmulKernel(point.center, inverse))
        else:
            kernels.append(CholeskyKernel(point.center, inverse, factor))
    return CompiledQuery(kernels, fingerprint)


# ----------------------------------------------------------------------
# Content-addressed kernel cache
# ----------------------------------------------------------------------


class KernelCache:
    """Thread-safe LRU map from cluster-state fingerprints to kernels.

    Args:
        capacity: maximum resident compiled queries; least recently
            used entries are discarded on overflow.  ``0`` disables
            caching (every lookup misses).
    """

    _N_STRIPES = 16

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        # Per-fingerprint-stripe compile locks: concurrent misses on the
        # same fingerprint serialize on a stripe so the compilation runs
        # once, while misses on different fingerprints compile freely in
        # parallel (the map lock above is never held during compilation).
        self._stripes = [threading.Lock() for _ in range(self._N_STRIPES)]
        self._entries: "OrderedDict[str, CompiledQuery]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str) -> Optional[CompiledQuery]:
        """The compiled query for ``fingerprint``, or ``None`` on a miss."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def put(self, fingerprint: str, compiled: CompiledQuery) -> None:
        """Insert a compiled query, evicting the LRU tail on overflow."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[fingerprint] = compiled
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def _peek(self, fingerprint: str) -> Optional[CompiledQuery]:
        """Like :meth:`get` but without touching the hit/miss counters."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
            return entry

    def get_or_create(
        self,
        fingerprint: str,
        factory: Callable[[], "CompiledQuery"],
        on_event: Optional[Callable[[str], None]] = None,
    ) -> "CompiledQuery":
        """The entry for ``fingerprint``, compiling it at most once.

        A miss acquires the fingerprint's stripe lock and re-checks the
        map before calling ``factory``, so two threads racing on the
        same cluster state never compile twice: the loser of the race
        finds the winner's entry on the double-check (it still counts
        its original miss — it did arrive before the entry existed).

        Args:
            fingerprint: cluster-state fingerprint key.
            factory: zero-argument compiler, invoked on a genuine miss.
            on_event: optional ``"hits"``/``"misses"`` callback
                (exactly one event per call).
        """
        compiled = self.get(fingerprint)
        if compiled is not None:
            if on_event is not None:
                on_event("hits")
            return compiled
        if on_event is not None:
            on_event("misses")
        if self.capacity == 0:
            # Caching disabled: nothing to publish or double-check.
            return factory()
        stripe = self._stripes[hash(fingerprint) % self._N_STRIPES]
        with stripe:
            compiled = self._peek(fingerprint)
            if compiled is None:
                compiled = factory()
                self.put(fingerprint, compiled)
        return compiled

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """``{entries, capacity, hits, misses, hit_rate}``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
            }


#: Process-wide cache: kernels are shared across shards, feedback
#: rounds, sessions and even distinct service instances.
_DEFAULT_CACHE = KernelCache()

#: Attribute name used to memoize the compiled kernel on query objects.
_MEMO_ATTRIBUTE = "_compiled_kernel"

_ENABLED = True


def default_kernel_cache() -> KernelCache:
    """The process-wide kernel cache."""
    return _DEFAULT_CACHE


def kernels_enabled() -> bool:
    """Whether the compiled-kernel path is active (default: yes)."""
    return _ENABLED


@contextmanager
def use_kernels(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable the kernel layer (benchmark hook).

    With kernels disabled every distance path falls back to the naive
    ``quadratic_distance_many`` implementation — the reference the
    equivalence tests and the scheme benchmarks compare against.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


def ensure_compiled(
    query,
    cache: Optional[KernelCache] = None,
    on_event: Optional[Callable[[str], None]] = None,
    scope: Optional[str] = None,
) -> CompiledQuery:
    """The query's compiled kernels, building them at most once.

    Resolution order:

    1. the memo on the query instance (free — covers repeated
       ``distances()`` calls from tree leaves, shards and result pages);
    2. the content-addressed cache, keyed by the cluster-state
       fingerprint (covers feedback rounds and sessions sharing a
       query);
    3. a fresh compilation, which is then published to both.

    Args:
        query: anything exposing ``points``.
        cache: kernel cache to consult (default: the process-wide one).
        on_event: optional callback receiving ``"hits"`` or ``"misses"``
            — the hook :class:`~repro.service.metrics.ServiceMetrics`
            counters attach to.
        scope: optional dataset identity (the feature store's
            ``content_hash:epoch``) salting the *cache key* only; the
            compiled artifact itself — a pure function of the cluster
            state — keeps the unsalted fingerprint.  ``None`` (the
            in-memory default) preserves the historical key.
    """
    compiled = getattr(query, _MEMO_ATTRIBUTE, None)
    if compiled is not None:
        if on_event is not None:
            on_event("hits")
        return compiled
    if cache is None:
        cache = _DEFAULT_CACHE
    fingerprint = fingerprint_cluster_state(query)
    cache_key = fingerprint if scope is None else f"{fingerprint}|{scope}"

    def _compile() -> CompiledQuery:
        # A genuine miss: the compilation (Cholesky factorization, kernel
        # selection, fusion layout) is a traced stage of its own.
        with current_tracer().span(
            "compile", fingerprint=fingerprint, points=len(query.points)
        ) as span:
            built = compile_query(query, fingerprint=fingerprint)
            span.set("kinds", sorted({kernel.kind for kernel in built.kernels}))
            return built

    def _observe(event: str) -> None:
        # One "hits"/"misses" event per cache consult — mirrored to the
        # ambient trace so operators can see cache behaviour per round.
        add_event(
            "kernel_cache",
            outcome="hit" if event == "hits" else "miss",
            fingerprint=fingerprint,
        )
        if on_event is not None:
            on_event(event)

    compiled = cache.get_or_create(cache_key, _compile, on_event=_observe)
    try:
        object.__setattr__(query, _MEMO_ATTRIBUTE, compiled)
    except (AttributeError, TypeError):  # __slots__ or exotic query types
        pass
    return compiled
