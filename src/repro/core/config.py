"""Configuration for the Qcluster engine.

Collects every tunable the paper mentions in one validated dataclass so
experiments can sweep them declaratively (the ablation benches vary
``scheme``, ``significance_level`` and ``max_clusters``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .covariance import DEFAULT_REGULARIZATION, CovarianceScheme, get_scheme

__all__ = ["QclusterConfig"]


@dataclass
class QclusterConfig:
    """Tunables of the adaptive classification / cluster-merging method.

    Attributes:
        scheme: covariance scheme name — ``"diagonal"`` (MARS-style, the
            paper's default after Figure 6) or ``"inverse"``
            (MindReader-style full inverse).
        discriminant: classifier discriminant — ``"pooled"`` (Equation
            10, the paper's operational form) or ``"quadratic"`` (the
            full per-cluster-covariance special case of Equation 8).
        significance_level: the paper's ``alpha`` for the *effective
            radius* ``chi2_p(alpha)`` (Equation 6).  Typical 0.01-0.05.
        merge_significance_level: the ``alpha`` of the Hotelling merge
            test (Equation 16).  The paper notes the cluster count is
            adjusted "by selecting a proper significance level"; clusters
            produced by splitting one mode are *not* independent random
            samples (the split deflates within-cluster scatter), so the
            merge test needs a much smaller alpha than a textbook
            two-sample test to avoid fragmenting modes.  0.001 keeps
            same-mode fragments merging while distinct modes stay apart.
        max_clusters: merge until at most this many clusters remain
            (Algorithm 3's "given size").  ``1`` degenerates to
            MindReader's single-point model.
        min_merge_alpha: floor for the relaxation loop of Algorithm 3
            (step 8 "increase critical distance using alpha"); once alpha
            reaches this floor remaining over-budget clusters are merged
            by closest pair regardless of the test.
        alpha_relax_factor: multiplicative relaxation applied to alpha in
            Algorithm 3 step 8.
        regularization: diagonal loading used when inverting (near-)
            singular covariance matrices (Section 3.2).
        initial_method: clustering algorithm for the very first feedback
            round (Algorithm 1 step 1) — ``"hierarchical"`` (the paper's
            choice) or ``"kmeans"``.
        initial_linkage: linkage criterion when ``initial_method`` is
            hierarchical.
        initial_clusters: number of clusters the initial clustering aims
            for before the merge stage trims further.
        deduplicate: skip feedback points already absorbed in an earlier
            iteration (relevant images typically reappear in the next
            result set; re-adding them would double-count their relevance
            mass).
        batch_classification: classify a whole feedback round against a
            *fixed snapshot* of the previous iteration's cluster
            statistics (Algorithm 2's literal reading — "uses means,
            covariance matrices, and weights of clusters at the
            cluster-merging stage of the previous iteration as prior
            information").  The default ``False`` updates statistics
            point-by-point within the round (the incremental-clustering
            spirit of reference [8]); the merge stage reconciles either
            way, and retrieval quality is nearly identical (see the
            ablation bench).
    """

    scheme: str = "diagonal"
    discriminant: str = "pooled"
    significance_level: float = 0.05
    merge_significance_level: float = 0.001
    max_clusters: int = 5
    min_merge_alpha: float = 1e-6
    alpha_relax_factor: float = 0.5
    regularization: float = DEFAULT_REGULARIZATION
    initial_method: str = "hierarchical"
    initial_linkage: str = "average"
    initial_clusters: int = 8
    deduplicate: bool = True
    batch_classification: bool = False

    _scheme_instance: CovarianceScheme = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not 0.0 < self.significance_level < 1.0:
            raise ValueError(
                f"significance_level must lie strictly in (0, 1), got {self.significance_level}"
            )
        if self.max_clusters < 1:
            raise ValueError(f"max_clusters must be at least 1, got {self.max_clusters}")
        if not 0.0 < self.alpha_relax_factor < 1.0:
            raise ValueError(
                f"alpha_relax_factor must lie strictly in (0, 1), got {self.alpha_relax_factor}"
            )
        if not 0.0 < self.merge_significance_level < 1.0:
            raise ValueError(
                "merge_significance_level must lie strictly in (0, 1), got "
                f"{self.merge_significance_level}"
            )
        if not 0.0 < self.min_merge_alpha <= self.merge_significance_level:
            raise ValueError(
                "min_merge_alpha must lie in (0, merge_significance_level], got "
                f"{self.min_merge_alpha}"
            )
        if self.initial_clusters < 1:
            raise ValueError(
                f"initial_clusters must be at least 1, got {self.initial_clusters}"
            )
        if self.initial_method not in ("hierarchical", "kmeans"):
            raise ValueError(
                "initial_method must be 'hierarchical' or 'kmeans', got "
                f"{self.initial_method!r}"
            )
        if self.discriminant not in ("pooled", "quadratic"):
            raise ValueError(
                "discriminant must be 'pooled' or 'quadratic', got "
                f"{self.discriminant!r}"
            )
        # Validates the scheme name eagerly so typos fail at config time.
        self._scheme_instance = get_scheme(self.scheme, self.regularization)

    @property
    def covariance_scheme(self) -> CovarianceScheme:
        """The instantiated covariance scheme for this configuration."""
        return self._scheme_instance
