"""Cluster-merging stage (paper Section 4.3, Algorithm 3).

After classification the cluster list may be fragmented; this stage
shrinks it by merging any pair whose mean vectors are statistically
indistinguishable under Hotelling's two-sample ``T^2`` test
(Equations 14-16).  The paper's Algorithm 3:

1. compute ``T^2`` and critical distance ``c^2`` for all pairs,
2. process pairs in ascending order of how decisively they pass,
3. merge a pair whenever ``T^2 <= c^2``,
4. if no pair passes but the cluster budget is still exceeded, *increase
   the critical distance* by relaxing ``alpha`` (line 8) and retry,
5. stop once the number of clusters is within the given size.

Merging combines cluster statistics with the closed-form Equations 11-13
— no re-clustering of raw points — though members are concatenated so
that later rounds and the quality measure retain them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import add_event
from ..stats.chi2 import chi2_ppf
from ..stats.hotelling import HotellingResult, critical_distance, hotelling_t2
from .cluster import Cluster
from .covariance import CovarianceScheme, DiagonalScheme

__all__ = ["MergeRecord", "ClusterMerger", "pairwise_merge_test"]


def pairwise_merge_test(
    cluster_i: Cluster,
    cluster_j: Cluster,
    scheme: Optional[CovarianceScheme] = None,
    significance_level: float = 0.05,
) -> HotellingResult:
    """Hotelling two-sample test between two clusters (Equations 14-16).

    The pooled covariance follows Equation 15: the sum of the two
    weighted scatter matrices divided by the combined relevance mass,
    inverted under the chosen scheme.
    """
    if scheme is None:
        scheme = DiagonalScheme()
    if cluster_i.dimension != cluster_j.dimension:
        raise ValueError("clusters disagree on dimensionality")
    total_weight = cluster_i.weight + cluster_j.weight
    pooled = (cluster_i.scatter + cluster_j.scatter) / total_weight
    pooled_inverse = scheme.invert(pooled).inverse
    statistic = hotelling_t2(
        cluster_i.centroid,
        cluster_j.centroid,
        pooled_inverse,
        cluster_i.weight,
        cluster_j.weight,
    )
    critical = critical_distance(
        cluster_i.dimension, cluster_i.weight, cluster_j.weight, significance_level
    )
    return HotellingResult(
        statistic=statistic,
        critical=critical,
        reject_equal_means=statistic > critical,
        df1=float(cluster_i.dimension),
        df2=total_weight - cluster_i.dimension - 1.0,
    )


@dataclass(frozen=True)
class MergeRecord:
    """Audit record of one executed merge.

    Attributes:
        first, second: indices (into the pre-merge list) of the merged pair.
        statistic: the ``T^2`` value at merge time.
        critical: the critical distance it was compared against.
        significance_level: the (possibly relaxed) alpha in force.
        forced: ``True`` when the merge was imposed by the cluster budget
            after alpha bottomed out, not by the statistical test.
    """

    first: int
    second: int
    statistic: float
    critical: float
    significance_level: float
    forced: bool


class ClusterMerger:
    """Algorithm 3: reduce the cluster list via Hotelling ``T^2`` tests.

    Args:
        scheme: covariance inversion scheme shared with the classifier.
        significance_level: initial alpha of the merge test.
        max_clusters: the "given size" the paper stops at.
        min_alpha: floor of the relaxation loop; below it remaining
            over-budget clusters are merged by closest ``T^2`` regardless
            of the test.
        relax_factor: multiplicative alpha relaxation per round (paper
            line 8 "increase critical distance using alpha").
        low_power_margin: slack multiplier on the chi-square radius used
            for pairs whose mass is too small for the F test (see
            ``_pair_result``).
    """

    def __init__(
        self,
        scheme: Optional[CovarianceScheme] = None,
        significance_level: float = 0.05,
        max_clusters: int = 5,
        min_alpha: float = 1e-4,
        relax_factor: float = 0.5,
        low_power_margin: float = 3.0,
    ) -> None:
        if max_clusters < 1:
            raise ValueError(f"max_clusters must be at least 1, got {max_clusters}")
        if not 0.0 < relax_factor < 1.0:
            raise ValueError(f"relax_factor must lie strictly in (0, 1), got {relax_factor}")
        if not 0.0 < min_alpha <= significance_level:
            raise ValueError(
                f"min_alpha must lie in (0, significance_level], got {min_alpha}"
            )
        if low_power_margin < 1.0:
            raise ValueError(
                f"low_power_margin must be at least 1, got {low_power_margin}"
            )
        self.scheme = scheme if scheme is not None else DiagonalScheme()
        self.significance_level = significance_level
        self.max_clusters = max_clusters
        self.min_alpha = min_alpha
        self.relax_factor = relax_factor
        self.low_power_margin = low_power_margin

    # ------------------------------------------------------------------

    def _global_pooled_inverse(self, clusters: Sequence[Cluster]) -> np.ndarray:
        """Inverse of the all-cluster pooled covariance (prior information).

        Used as the reference scale for pairs whose combined relevance
        mass is too small for the F test (``m_i + m_j <= p + 1``): the
        paper's framework treats previous-iteration statistics as priors,
        and the pooled within-cluster covariance of *all* clusters is the
        best available estimate of the local data scale.
        """
        dimension = clusters[0].dimension
        total_scatter = np.zeros((dimension, dimension))
        total_weight = 0.0
        for cluster in clusters:
            total_scatter += cluster.scatter
            total_weight += cluster.weight
        return self.scheme.invert(total_scatter / total_weight).inverse

    def _pair_result(
        self,
        cluster_i: Cluster,
        cluster_j: Cluster,
        alpha: float,
        global_inverse: np.ndarray,
    ) -> HotellingResult:
        """Merge test for one pair, robust to low-mass clusters.

        When the pair's combined relevance mass gives the F test real
        power (``m_i + m_j - p - 1 >= p``), this is exactly Equation 16.

        Below that, the pair's own scatter is uninformative and the F
        quantile explodes (with one denominator degree of freedom the
        99.9th percentile is ~10^5, accepting arbitrarily distant pairs),
        so the decision falls back to an *effective-radius* criterion in
        the spirit of Lemma 1: merge only if the centroid separation,
        measured in the global pooled within-cluster covariance, is
        within ``low_power_margin * chi2_p(1 - alpha)``.  The margin
        absorbs the scatter deflation that hierarchical splitting of one
        mode introduces; distant modes exceed the threshold by orders of
        magnitude regardless.
        """
        dimension = cluster_i.dimension
        f_result = pairwise_merge_test(cluster_i, cluster_j, self.scheme, alpha)
        if f_result.df2 >= dimension:
            return f_result
        diff = cluster_i.centroid - cluster_j.centroid
        separation = float(diff @ global_inverse @ diff)
        critical = self.low_power_margin * chi2_ppf(1.0 - alpha, float(dimension))
        return HotellingResult(
            statistic=separation,
            critical=critical,
            reject_equal_means=separation > critical,
            df1=float(dimension),
            df2=max(f_result.df2, 0.0),
        )

    def _best_pair(
        self,
        clusters: Sequence[Cluster],
        alpha: float,
    ) -> Tuple[Optional[Tuple[int, int]], Optional[HotellingResult]]:
        """Return the pair with the smallest ``T^2 / c^2`` ratio.

        Ordering by the ratio rather than raw ``T^2`` matches the spirit
        of Algorithm 3's ascending queue while staying well-defined when
        pairs have different degrees of freedom (different weights give
        different critical values).
        """
        best_key = np.inf
        best_pair: Optional[Tuple[int, int]] = None
        best_result: Optional[HotellingResult] = None
        global_inverse = self._global_pooled_inverse(clusters)
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                result = self._pair_result(clusters[i], clusters[j], alpha, global_inverse)
                key = result.statistic / result.critical
                if key < best_key:
                    best_key = key
                    best_pair = (i, j)
                    best_result = result
        return best_pair, best_result

    def merge(self, clusters: Sequence[Cluster]) -> Tuple[List[Cluster], List[MergeRecord]]:
        """Run the full merging loop and return the reduced cluster list.

        The input sequence is not mutated; merged clusters are rebuilt via
        :meth:`Cluster.merged_with`.
        """
        working = list(clusters)
        records: List[MergeRecord] = []
        if len(working) <= 1:
            return working, records
        alpha = self.significance_level
        while len(working) > 1:
            pair, result = self._best_pair(working, alpha)
            assert pair is not None and result is not None  # len > 1 guarantees a pair
            i, j = pair
            if result.should_merge:
                add_event(
                    "t2_merge",
                    accepted=True,
                    statistic=result.statistic,
                    critical=result.critical,
                    alpha=alpha,
                    forced=False,
                )
                merged = working[i].merged_with(working[j])
                records.append(
                    MergeRecord(
                        first=i,
                        second=j,
                        statistic=result.statistic,
                        critical=result.critical,
                        significance_level=alpha,
                        forced=False,
                    )
                )
                working = [c for k, c in enumerate(working) if k not in (i, j)]
                working.append(merged)
                continue
            if len(working) <= self.max_clusters:
                # Within budget and nothing statistically mergeable: the
                # closest pair's T^2 exceeded its critical distance.
                add_event(
                    "t2_merge",
                    accepted=False,
                    statistic=result.statistic,
                    critical=result.critical,
                    alpha=alpha,
                    forced=False,
                )
                break
            # Over budget: relax alpha (grow the critical distance) and, at
            # the floor, force-merge the closest pair.
            if alpha > self.min_alpha:
                relaxed = max(alpha * self.relax_factor, self.min_alpha)
                add_event("alpha_relaxed", alpha_from=alpha, alpha_to=relaxed)
                alpha = relaxed
                continue
            add_event(
                "t2_merge",
                accepted=True,
                statistic=result.statistic,
                critical=result.critical,
                alpha=alpha,
                forced=True,
            )
            merged = working[i].merged_with(working[j])
            records.append(
                MergeRecord(
                    first=i,
                    second=j,
                    statistic=result.statistic,
                    critical=result.critical,
                    significance_level=alpha,
                    forced=True,
                )
            )
            working = [c for k, c in enumerate(working) if k not in (i, j)]
            working.append(merged)
        return working, records
