"""Cluster model: weighted moments and incremental combination.

A :class:`Cluster` is the unit the whole Qcluster machinery operates on.
It tracks its member feature vectors and their relevance scores and
derives the paper's sufficient statistics:

* ``centroid`` — the relevance-weighted mean (Definition 1),
* ``covariance`` — the relevance-weighted covariance (Definition 2,
  normalized form) and ``scatter`` (the un-normalized Equation 3 form),
* ``weight`` — the relevance mass ``m_i = Σ v_ik``,
* ``size`` — the member count ``n_i``.

Merging two clusters uses the moment-combination formulas of
Equations 11-13, so no raw points need to be revisited; the member lists
are still concatenated because the leave-one-out quality measure of
Section 4.5 and re-estimation in later iterations require them.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..stats.descriptive import as_weights

__all__ = ["Cluster", "merge_moments"]


class Cluster:
    """A weighted cluster of feature vectors.

    Args:
        points: ``(n, p)`` array-like of member feature vectors.
        scores: optional length-``n`` relevance scores ``v_ik``; default 1.

    The statistics are computed eagerly at construction and after every
    mutation, which keeps reads cheap (the engine reads statistics far
    more often than it mutates clusters).
    """

    __slots__ = ("_points", "_scores", "_centroid", "_scatter")

    def __init__(
        self,
        points: Iterable[Sequence[float]],
        scores: Optional[Sequence[float]] = None,
    ) -> None:
        array = np.atleast_2d(np.asarray(list(points) if not isinstance(points, np.ndarray) else points, dtype=float))
        if array.size == 0:
            raise ValueError("a cluster must contain at least one point")
        if array.ndim != 2:
            raise ValueError(f"points must be a 2-d array, got shape {array.shape}")
        if not np.all(np.isfinite(array)):
            raise ValueError("cluster points must be finite (no NaN/inf)")
        self._points = array
        self._scores = as_weights(scores, array.shape[0])
        self._refresh()

    # ------------------------------------------------------------------
    # Statistics (Definitions 1-2)
    # ------------------------------------------------------------------

    def _refresh(self) -> None:
        weight = self._scores.sum()
        self._centroid = self._scores @ self._points / weight
        centered = self._points - self._centroid
        self._scatter = (centered * self._scores[:, None]).T @ centered

    @property
    def points(self) -> np.ndarray:
        """Read-only view of the ``(n, p)`` member matrix."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    @property
    def scores(self) -> np.ndarray:
        """Read-only view of the relevance scores ``v_ik``."""
        view = self._scores.view()
        view.flags.writeable = False
        return view

    @property
    def size(self) -> int:
        """Member count ``n_i``."""
        return self._points.shape[0]

    @property
    def dimension(self) -> int:
        """Feature-space dimensionality ``p``."""
        return self._points.shape[1]

    @property
    def weight(self) -> float:
        """Relevance mass ``m_i = Σ v_ik`` (the cluster's weight in Eq. 5/8)."""
        return float(self._scores.sum())

    @property
    def centroid(self) -> np.ndarray:
        """Relevance-weighted centroid ``x̄_i`` (Definition 1)."""
        return self._centroid.copy()

    @property
    def scatter(self) -> np.ndarray:
        """Un-normalized weighted scatter ``Σ v (x - x̄)(x - x̄)'`` (Eq. 3)."""
        return self._scatter.copy()

    @property
    def covariance(self) -> np.ndarray:
        """Weight-normalized covariance ``scatter / m_i``."""
        return self._scatter / self.weight

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, point: Sequence[float], score: float = 1.0) -> None:
        """Append one member with relevance ``score`` and refresh statistics."""
        if score <= 0:
            raise ValueError(f"relevance score must be positive, got {score}")
        point = np.asarray(point, dtype=float).reshape(1, -1)
        if not np.all(np.isfinite(point)):
            raise ValueError("cluster points must be finite (no NaN/inf)")
        if point.shape[1] != self.dimension:
            raise ValueError(
                f"point has dimension {point.shape[1]}, cluster has {self.dimension}"
            )
        self._points = np.vstack([self._points, point])
        self._scores = np.append(self._scores, float(score))
        self._refresh()

    def without_member(self, index: int) -> "Cluster":
        """Return a copy with member ``index`` removed (for leave-one-out).

        Raises:
            ValueError: if the cluster holds a single point — removing it
                would leave an empty cluster.
        """
        if self.size <= 1:
            raise ValueError("cannot remove the only member of a cluster")
        mask = np.ones(self.size, dtype=bool)
        mask[index] = False
        return Cluster(self._points[mask], self._scores[mask])

    def merged_with(self, other: "Cluster") -> "Cluster":
        """Merge two clusters, concatenating members.

        The resulting cluster's moments coincide (up to the paper's
        ``m-1`` vs ``m`` normalization convention) with the closed-form
        combination of :func:`merge_moments`; carrying the members along
        keeps leave-one-out quality assessment possible.
        """
        if other.dimension != self.dimension:
            raise ValueError("cannot merge clusters of different dimensionality")
        return Cluster(
            np.vstack([self._points, other._points]),
            np.concatenate([self._scores, other._scores]),
        )

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(size={self.size}, weight={self.weight:.3f}, "
            f"dimension={self.dimension})"
        )


def merge_moments(
    mean_i: np.ndarray,
    covariance_i: np.ndarray,
    weight_i: float,
    mean_j: np.ndarray,
    covariance_j: np.ndarray,
    weight_j: float,
) -> Tuple[float, np.ndarray, np.ndarray]:
    """Combine two clusters' moments without touching raw points (Eq. 11-13).

    Args:
        mean_i, covariance_i, weight_i: first cluster's ``x̄``, ``S``
            (sample covariance, i.e. normalized by ``m - 1``) and mass.
        mean_j, covariance_j, weight_j: second cluster's statistics.

    Returns:
        ``(m_new, x̄_new, S_new)`` per Equations 11, 12 and 13:

        * ``m_new = m_i + m_j``
        * ``x̄_new = (m_i x̄_i + m_j x̄_j) / m_new``
        * ``S_new = [(m_i - 1) S_i + (m_j - 1) S_j] / (m_new - 1)
          + m_i m_j / (m_new (m_new - 1)) (x̄_i - x̄_j)(x̄_i - x̄_j)'``
    """
    if weight_i <= 0 or weight_j <= 0:
        raise ValueError("cluster weights must be strictly positive")
    mean_i = np.asarray(mean_i, dtype=float)
    mean_j = np.asarray(mean_j, dtype=float)
    covariance_i = np.asarray(covariance_i, dtype=float)
    covariance_j = np.asarray(covariance_j, dtype=float)
    weight_new = weight_i + weight_j
    if weight_new <= 1.0:
        raise ValueError(
            "combined weight must exceed 1 for the sample-covariance form "
            f"(got {weight_new})"
        )
    mean_new = (weight_i * mean_i + weight_j * mean_j) / weight_new
    diff = (mean_i - mean_j)[:, None]
    covariance_new = (
        (weight_i - 1.0) * covariance_i + (weight_j - 1.0) * covariance_j
    ) / (weight_new - 1.0) + (
        weight_i * weight_j / (weight_new * (weight_new - 1.0))
    ) * (diff @ diff.T)
    return float(weight_new), mean_new, covariance_new
