"""Clustering-quality measurement (paper Section 4.5).

The paper's quality measure is a leave-one-out reclassification error
rate: after clustering stabilizes, remove each member in turn and check
whether the Bayesian classifier would put it back into its own cluster.
With ``C`` members correctly reclassified out of ``N`` total, the error
rate is ``1 - C / N``.

The same machinery doubles as the error-rate metric of the synthetic
classification experiments (Figures 14-17), where ground-truth labels
are known and points are classified against clusters built from the
other points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .classifier import BayesianClassifier
from .cluster import Cluster

__all__ = ["QualityReport", "leave_one_out_error", "labelled_classification_error"]


@dataclass(frozen=True)
class QualityReport:
    """Result of a leave-one-out quality assessment.

    Attributes:
        total: number of members evaluated (``N``).
        correct: members reclassified into their own cluster (``C``).
        skipped_singletons: members not evaluated because their cluster
            had a single point (removal would empty it).
    """

    total: int
    correct: int
    skipped_singletons: int

    @property
    def error_rate(self) -> float:
        """``1 - C / N``; zero when nothing was evaluable."""
        if self.total == 0:
            return 0.0
        return 1.0 - self.correct / self.total


def leave_one_out_error(
    clusters: Sequence[Cluster],
    classifier: Optional[BayesianClassifier] = None,
) -> QualityReport:
    """Leave-one-out error rate over a cluster list (Section 4.5).

    For each member of each multi-point cluster, rebuild the cluster
    without it and ask the classifier which cluster the member belongs
    to; correct means it returns home.  Singleton clusters are skipped
    (removing their only member would leave nothing to return to) and
    counted in :attr:`QualityReport.skipped_singletons`.
    """
    if classifier is None:
        classifier = BayesianClassifier()
    total = 0
    correct = 0
    skipped = 0
    for index, cluster in enumerate(clusters):
        if cluster.size <= 1:
            skipped += cluster.size
            continue
        for member in range(cluster.size):
            reduced = cluster.without_member(member)
            candidates: List[Cluster] = [
                reduced if k == index else other for k, other in enumerate(clusters)
            ]
            state = classifier.prepare(candidates)
            decision = classifier.classify(state, cluster.points[member])
            total += 1
            # The paper's criterion is re-allocation to the home cluster;
            # the effective-radius flag is irrelevant here (by design,
            # ~alpha of genuine members fall outside the radius).
            if decision.cluster_index == index:
                correct += 1
    return QualityReport(total=total, correct=correct, skipped_singletons=skipped)


def labelled_classification_error(
    points: np.ndarray,
    labels: Sequence[int],
    clusters: Sequence[Cluster],
    cluster_labels: Sequence[int],
    classifier: Optional[BayesianClassifier] = None,
    count_outliers_as_errors: bool = False,
) -> float:
    """Error rate of classifying labelled points against labelled clusters.

    This is the metric of the synthetic experiments (Figures 14-17): the
    clusters are built from training halves of known Gaussian groups and
    held-out points are classified; a point is correct when the winning
    cluster carries its label.

    Args:
        points: ``(n, p)`` evaluation points.
        labels: ground-truth label per point.
        clusters: the candidate clusters.
        cluster_labels: ground-truth label per cluster.
        classifier: classifier to use (default diagonal scheme, alpha 0.05).
        count_outliers_as_errors: when ``True`` a point flagged as outside
            every effective radius counts as an error even if the winning
            cluster's label matches.  The paper's Figures 14-17 measure
            pure allocation accuracy, so the default is ``False``.
    """
    if classifier is None:
        classifier = BayesianClassifier()
    points = np.atleast_2d(np.asarray(points, dtype=float))
    labels = list(labels)
    if len(labels) != points.shape[0]:
        raise ValueError(
            f"need one label per point: {len(labels)} labels for {points.shape[0]} points"
        )
    if len(cluster_labels) != len(clusters):
        raise ValueError("need one label per cluster")
    state = classifier.prepare(clusters)
    errors = 0
    for point, label in zip(points, labels):
        decision = classifier.classify(state, point)
        predicted = cluster_labels[decision.cluster_index]
        if predicted != label or (count_outliers_as_errors and decision.is_outlier):
            errors += 1
    return errors / points.shape[0]
