"""The Qcluster relevance-feedback engine (paper Algorithm 1).

Ties the pieces together into the loop of Figure 2:

1. **Initial query** — a single query point with a plain Euclidean
   contour (identity ``S^{-1}``); the system knows nothing yet.
2. **First feedback round** — the user's relevant images are clustered
   with the hierarchical method (Section 4.1) and trimmed by the merge
   stage; per-cluster weighted centroids, covariances and relevance
   masses become the multipoint query.
3. **Later rounds** — new relevant images are placed by the adaptive
   Bayesian classifier (Algorithm 2) using the previous round's cluster
   statistics as priors; the cluster list is then compacted by the
   Hotelling-``T^2`` merge stage (Algorithm 3).  No re-clustering from
   scratch ever happens — that is the paper's efficiency claim.

Each round yields a :class:`~repro.core.distance.DisjunctiveQuery`
whose aggregate distance (Equation 5) ranks the database.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..clustering.agglomerative import AgglomerativeClusterer
from ..clustering.kmeans import kmeans
from ..obs import add_event, current_tracer
from .classifier import BayesianClassifier
from .cluster import Cluster  # noqa: F401 - used by both round styles
from .config import QclusterConfig
from .distance import DisjunctiveQuery, QueryPoint
from .merging import ClusterMerger, MergeRecord

__all__ = ["QclusterEngine"]


class QclusterEngine:
    """Adaptive-clustering relevance feedback (the paper's Qcluster).

    Args:
        config: engine tunables; defaults follow the paper (diagonal
            scheme, alpha = 0.05, at most 5 query points).

    Typical use::

        engine = QclusterEngine()
        query = engine.start(example_feature_vector)
        for _ in range(5):
            ranking = np.argsort(query.distances(database))
            relevant, scores = user.judge(ranking[:k])
            query = engine.feedback(database[relevant], scores)
    """

    def __init__(self, config: Optional[QclusterConfig] = None) -> None:
        self.config = config if config is not None else QclusterConfig()
        scheme = self.config.covariance_scheme
        self.classifier = BayesianClassifier(
            scheme=scheme,
            significance_level=self.config.significance_level,
            discriminant=self.config.discriminant,
        )
        self.merger = ClusterMerger(
            scheme=scheme,
            significance_level=self.config.merge_significance_level,
            max_clusters=self.config.max_clusters,
            min_alpha=self.config.min_merge_alpha,
            relax_factor=self.config.alpha_relax_factor,
        )
        self.clusters: List[Cluster] = []
        self.merge_history: List[MergeRecord] = []
        self.iteration = 0
        self._seen: set = set()
        self._initial_point: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Loop entry points
    # ------------------------------------------------------------------

    def start(self, query_point: Sequence[float]) -> DisjunctiveQuery:
        """Begin a session: single query point, plain Euclidean contour."""
        point = np.asarray(query_point, dtype=float)
        if point.ndim != 1:
            raise ValueError(f"query point must be 1-d, got shape {point.shape}")
        self.clusters = []
        self.merge_history = []
        self.iteration = 0
        self._seen = set()
        self._initial_point = point
        identity = np.eye(point.shape[0])
        return DisjunctiveQuery(
            [
                QueryPoint(
                    center=point,
                    inverse=identity,
                    weight=1.0,
                    diagonal=np.ones(point.shape[0]),
                )
            ]
        )

    def feedback(
        self,
        relevant_points: np.ndarray,
        scores: Optional[Sequence[float]] = None,
    ) -> DisjunctiveQuery:
        """Absorb one round of relevance judgments and refine the query.

        Args:
            relevant_points: ``(m, p)`` feature vectors the user marked
                relevant in the latest result set.
            scores: optional relevance scores ``v`` (default 1 each).

        Returns:
            The refined multipoint query for the next retrieval round.
        """
        points, point_scores = self._prepare_feedback(relevant_points, scores)
        if points.shape[0] > 0:
            tracer = current_tracer()
            with tracer.span(
                "classify",
                points=int(points.shape[0]),
                clusters_in=len(self.clusters),
            ) as span:
                if not self.clusters:
                    self._initial_clustering(points, point_scores)
                else:
                    self._adaptive_round(points, point_scores)
                span.set("clusters_out", len(self.clusters))
            with tracer.span("merge", clusters_in=len(self.clusters)) as span:
                self.clusters, records = self.merger.merge(self.clusters)
                span.set("clusters_out", len(self.clusters))
                span.set("merges", len(records))
            self.merge_history.extend(records)
        self.iteration += 1
        return self.current_query()

    def current_query(self) -> DisjunctiveQuery:
        """The multipoint query induced by the current cluster list."""
        if not self.clusters:
            if self._initial_point is None:
                raise RuntimeError("engine has no state; call start() first")
            identity = np.eye(self._initial_point.shape[0])
            return DisjunctiveQuery(
                [
                    QueryPoint(
                        center=self._initial_point,
                        inverse=identity,
                        weight=1.0,
                        diagonal=np.ones(self._initial_point.shape[0]),
                    )
                ]
            )
        scheme = self.config.covariance_scheme
        query_points = []
        for cluster in self.clusters:
            info = scheme.invert(cluster.covariance)
            query_points.append(
                QueryPoint(
                    center=cluster.centroid,
                    inverse=info.inverse,
                    weight=cluster.weight,
                    diagonal=info.diagonal,
                )
            )
        return DisjunctiveQuery(query_points)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_clusters(self) -> int:
        """Current number of clusters ``g``."""
        return len(self.clusters)

    @property
    def total_relevance_mass(self) -> float:
        """Sum of relevance scores absorbed so far (``Σ m_i``)."""
        return sum(c.weight for c in self.clusters)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _prepare_feedback(
        self,
        relevant_points: np.ndarray,
        scores: Optional[Sequence[float]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        points = np.atleast_2d(np.asarray(relevant_points, dtype=float))
        if points.size == 0:
            return np.empty((0, 0)), np.empty(0)
        if not np.all(np.isfinite(points)):
            raise ValueError("relevant points must be finite (no NaN/inf)")
        if scores is None:
            point_scores = np.ones(points.shape[0])
        else:
            point_scores = np.asarray(scores, dtype=float)
            if point_scores.shape != (points.shape[0],):
                raise ValueError(
                    f"need one score per point: {point_scores.shape} for "
                    f"{points.shape[0]} points"
                )
            if np.any(point_scores <= 0):
                raise ValueError("relevance scores must be strictly positive")
        if not self.config.deduplicate:
            return points, point_scores
        keep = []
        for index, point in enumerate(points):
            key = point.tobytes()
            if key in self._seen:
                continue
            self._seen.add(key)
            keep.append(index)
        return points[keep], point_scores[keep]

    def _initial_clustering(self, points: np.ndarray, scores: np.ndarray) -> None:
        """Algorithm 1 step 1: cluster the first round's relevant set."""
        target = min(self.config.initial_clusters, points.shape[0])
        if self.config.initial_method == "kmeans":
            result = kmeans(points, target, rng=np.random.default_rng(0))
        else:
            result = AgglomerativeClusterer(
                n_clusters=target, linkage=self.config.initial_linkage
            ).fit(points)
        n_found = int(result.labels.max()) + 1
        self.clusters = [
            Cluster(points[result.members(label)], scores[result.members(label)])
            for label in range(n_found)
        ]

    def _adaptive_round(self, points: np.ndarray, scores: np.ndarray) -> None:
        """Algorithm 2 over one feedback round.

        ``batch_classification`` selects between the two readings of the
        paper: a fixed prior snapshot for the whole round, or statistics
        that evolve point-by-point (the default).
        """
        if self.config.batch_classification:
            self._batch_round(points, scores)
        else:
            for point, score in zip(points, scores):
                self.classifier.assign(self.clusters, point, float(score))

    def _batch_round(self, points: np.ndarray, scores: np.ndarray) -> None:
        """Classify every point against the previous iteration's priors."""
        state = self.classifier.prepare(self.clusters)
        assignments: List[Tuple[int, np.ndarray, float]] = []
        outliers: List[Tuple[np.ndarray, float]] = []
        for point, score in zip(points, scores):
            decision = self.classifier.classify(state, point)
            if decision.is_outlier:
                add_event(
                    "cluster_seeded",
                    radius_distance=decision.radius_distance,
                    radius=state.radius,
                    nearest_cluster=decision.cluster_index,
                )
                outliers.append((point, float(score)))
            else:
                assignments.append((decision.cluster_index, point, float(score)))
        for cluster_index, point, score in assignments:
            self.clusters[cluster_index].add(point, score)
        for point, score in outliers:
            self.clusters.append(Cluster(point[None, :], [score]))
