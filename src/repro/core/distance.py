"""Distance functions of the Qcluster paper (Equations 1, 4, 5 and 7).

Three quadratic forms appear in the paper and all are provided here in
both scalar and vectorized (whole-database) form:

* :func:`quadratic_distance` — per-cluster generalized Euclidean distance
  ``d^2(x, x̄_i) = (x - x̄_i)' S_i^{-1} (x - x̄_i)`` (Equation 1),
* :func:`aggregate_distance` — the general power-mean aggregate over
  multiple query points (Equation 4) with exponent ``alpha``; negative
  exponents mimic a fuzzy OR,
* :func:`disjunctive_distance` — the paper's operational choice
  (Equation 5): ``alpha = -2`` with per-cluster relevance masses ``m_i``
  folded in, i.e. a weighted harmonic mean of the per-cluster quadratic
  distances.  An image close to *any* cluster gets a small aggregate
  distance, which is what lets a multipoint query retrieve disjoint
  regions (Figure 5).

The vectorized forms accept an ``(N, p)`` matrix and return length-``N``
arrays; they are what the retrieval engine uses to rank a database.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from . import kernels as _kernels

__all__ = [
    "quadratic_distance",
    "quadratic_distance_many",
    "aggregate_distance",
    "disjunctive_distance",
    "QueryPoint",
    "DisjunctiveQuery",
]

#: Distances below this are clamped before entering the harmonic mean so
#: that a database point coinciding exactly with a centroid does not
#: divide by zero; the point still ranks (essentially) first.
_DISTANCE_FLOOR = 1e-12


def quadratic_distance(x: np.ndarray, center: np.ndarray, inverse: np.ndarray) -> float:
    """Generalized Euclidean distance of Equation 1 for a single point."""
    diff = np.asarray(x, dtype=float) - np.asarray(center, dtype=float)
    return float(diff @ np.asarray(inverse, dtype=float) @ diff)


def quadratic_distance_many(
    points: np.ndarray, center: np.ndarray, inverse: np.ndarray
) -> np.ndarray:
    """Vectorized Equation 1: distances from every row of ``points``.

    Uses the identity ``diag(D A D') = sum((D A) * D, axis=1)`` to avoid
    materializing the full ``(N, N)`` product.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    centered = points - np.asarray(center, dtype=float)
    transformed = centered @ np.asarray(inverse, dtype=float)
    return np.einsum("ij,ij->i", transformed, centered)


def aggregate_distance(
    per_point_distances: Sequence[float],
    alpha: float = -2.0,
) -> float:
    """Power-mean aggregate over query points (Equation 4).

    ``d_aggregate^alpha = (1/g) Σ d_i^alpha`` — i.e. the aggregate is the
    ``alpha``-power mean of the individual distances.  ``alpha = 1`` is the
    plain average (the FALCON-like conjunctive flavour); ``alpha < 0``
    mimics a fuzzy OR because the smallest distance dominates.
    """
    distances = np.asarray(per_point_distances, dtype=float)
    if distances.size == 0:
        raise ValueError("aggregate_distance needs at least one distance")
    if np.any(distances < 0):
        raise ValueError("distances must be non-negative")
    if alpha == 0.0:
        raise ValueError("alpha must be non-zero (the power mean is undefined at 0)")
    if alpha < 0:
        distances = np.maximum(distances, _DISTANCE_FLOOR)
    return float(np.mean(distances**alpha) ** (1.0 / alpha))


def disjunctive_distance(
    per_cluster_distances: np.ndarray,
    cluster_weights: Sequence[float],
) -> np.ndarray:
    """The paper's disjunctive aggregate (Equation 5), vectorized.

    Args:
        per_cluster_distances: ``(g, N)`` matrix where row ``i`` holds the
            quadratic distances of every database point to cluster ``i``.
        cluster_weights: length-``g`` relevance masses ``m_i``.

    Returns:
        Length-``N`` array of
        ``Σ m_i / Σ (m_i / d_i^2(x))`` — the ``m``-weighted harmonic mean
        of the per-cluster distances.
    """
    distances = np.atleast_2d(np.asarray(per_cluster_distances, dtype=float))
    weights = np.asarray(cluster_weights, dtype=float)
    if weights.shape != (distances.shape[0],):
        raise ValueError(
            f"need one weight per cluster: got {weights.shape} weights for "
            f"{distances.shape[0]} clusters"
        )
    if np.any(weights <= 0):
        raise ValueError("cluster weights must be strictly positive")
    clamped = np.maximum(distances, _DISTANCE_FLOOR)
    return weights.sum() / np.tensordot(weights, 1.0 / clamped, axes=1)


@dataclass(frozen=True)
class QueryPoint:
    """One representative of a multipoint query.

    Attributes:
        center: cluster centroid ``x̄_i``.
        inverse: the cluster's ``S_i^{-1}`` under the active scheme.
        weight: relevance mass ``m_i``.
        diagonal: the diagonal of ``S_i^{-1}`` when the matrix is exactly
            diagonal (the diagonal covariance scheme), else ``None``.
            Lets the compiled-kernel layer take its O(N·p) fast path
            without inspecting the dense matrix; the dense ``inverse``
            stays authoritative for every other consumer.
    """

    center: np.ndarray
    inverse: np.ndarray
    weight: float
    diagonal: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"query-point weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class DisjunctiveQuery:
    """A ready-to-evaluate multipoint query ``Q = {x̄_1, ..., x̄_g}``.

    Built by the Qcluster engine from the current cluster set; the index
    and the linear scanner both rank database points by
    :meth:`distances`.
    """

    points: List[QueryPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("a disjunctive query needs at least one query point")
        dims = {qp.center.shape[0] for qp in self.points}
        if len(dims) != 1:
            raise ValueError(f"query points disagree on dimensionality: {sorted(dims)}")

    @property
    def dimension(self) -> int:
        """Feature-space dimensionality of the query."""
        return self.points[0].center.shape[0]

    @property
    def size(self) -> int:
        """Number of query points ``g``."""
        return len(self.points)

    @property
    def weights(self) -> np.ndarray:
        """Per-cluster relevance masses ``m_i``."""
        return np.array([qp.weight for qp in self.points])

    def compiled(self) -> "_kernels.CompiledQuery":
        """This query's compiled kernels (built at most once, cached)."""
        return _kernels.ensure_compiled(self)

    def per_cluster_distances(self, database: np.ndarray) -> np.ndarray:
        """``(g, N)`` quadratic distances of every database row to each point.

        Served by the compiled-kernel layer (:mod:`repro.core.kernels`):
        diagonal ``S^{-1}`` points cost O(N·p), full matrices go through
        one fused whitening matmul.  The naive quadratic form remains
        available behind :func:`repro.core.kernels.use_kernels` for
        equivalence testing and benchmarking.
        """
        database = np.atleast_2d(np.asarray(database, dtype=float))
        if _kernels.kernels_enabled():
            return self.compiled().per_cluster_distances(database)
        return np.stack(
            [
                quadratic_distance_many(database, qp.center, qp.inverse)
                for qp in self.points
            ]
        )

    def combine_per_cluster(self, per_cluster: np.ndarray) -> np.ndarray:
        """Fold a ``(g, N)`` per-cluster matrix into aggregate distances.

        The harmonic combination is monotone increasing in every
        per-cluster entry, so feeding per-cluster *lower bounds* (tree
        boxes, progressive coordinate prefixes) yields a valid lower
        bound on the aggregate — the hook the filter-and-refine scan
        builds on.
        """
        per_cluster = np.atleast_2d(np.asarray(per_cluster, dtype=float))
        if self.size == 1:
            # A single query point degenerates to the plain quadratic
            # distance — exactly MindReader's model.
            return per_cluster[0]
        return disjunctive_distance(per_cluster, self.weights)

    def distances(self, database: np.ndarray) -> np.ndarray:
        """Length-``N`` disjunctive aggregate distances (Equation 5)."""
        return self.combine_per_cluster(self.per_cluster_distances(database))

    def distance(self, x: np.ndarray) -> float:
        """Aggregate distance for one point (scalar convenience)."""
        return float(self.distances(np.asarray(x, dtype=float)[None, :])[0])

    def lower_bound_from_center_distance(self, center_distances: np.ndarray) -> np.ndarray:
        """Aggregate distance lower bound given per-point lower bounds.

        Used by the multipoint index search: if ``center_distances[i]`` is a
        lower bound on ``d^2`` to query point ``i`` for every point in an
        index region, then the weighted harmonic combination of those
        bounds lower-bounds the aggregate distance in that region (the
        aggregate is monotone in each coordinate).
        """
        per_cluster = np.asarray(center_distances, dtype=float)[:, None]
        # For a single point the bound passes through exactly (a zero
        # bound must stay zero); otherwise the harmonic combination
        # (which clamps internally) applies.
        return self.combine_per_cluster(per_cluster)
