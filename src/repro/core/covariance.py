"""Covariance inversion schemes (paper Sections 3.2 and 4.4.4).

The quadratic forms at the heart of Qcluster — the per-cluster distance
``d^2`` (Equation 1), the classifier discriminant (Equation 10) and
Hotelling's ``T^2`` (Equation 14) — all need ``S^{-1}`` for a weighted
covariance ``S``.  The paper evaluates two estimation schemes:

* the **inverse-matrix scheme** (MindReader style): a full matrix
  inverse, regularized on the diagonal when the number of relevant
  images is smaller than the dimensionality (the singularity issue of
  Section 3.2), and
* the **diagonal-matrix scheme** (MARS style): invert only the diagonal,
  i.e. weight each dimension by the reciprocal of its variance.

Figure 6 and Tables 2-3 show that the diagonal scheme is far cheaper with
near-identical quality; the engine therefore defaults to it.  Both
schemes are exposed behind one small strategy interface so every
downstream measure can switch with a single parameter.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "CovarianceScheme",
    "DiagonalScheme",
    "InverseScheme",
    "InverseInfo",
    "get_scheme",
]

#: Variance floor applied before inversion.  A cluster that is degenerate
#: along some axis (e.g. a single point, or identical feature values)
#: would otherwise produce an infinite weight on that axis.
DEFAULT_REGULARIZATION = 1e-6


@dataclass(frozen=True)
class InverseInfo:
    """An inverted covariance together with its log-determinant.

    Attributes:
        inverse: the ``(p, p)`` matrix standing in for ``S^{-1}``.
        log_det_covariance: ``ln |S|`` of the (regularized) covariance the
            inverse was derived from; the Bayesian classifier's normal
            density needs it (Equation 8).
        diagonal: for the diagonal scheme, the length-``p`` vector of
            reciprocal (regularized) variances — i.e. ``diag(S^{-1})``.
            Carrying the vector lets the distance kernels skip the dense
            matrix entirely (O(N·p) scoring, the cost Figure 6 claims);
            the dense ``inverse`` is kept for backward compatibility.
            ``None`` for full-matrix schemes.
    """

    inverse: np.ndarray
    log_det_covariance: float
    diagonal: Optional[np.ndarray] = None


class CovarianceScheme(ABC):
    """Strategy interface turning a covariance matrix into a usable inverse."""

    #: Human-readable scheme name, used in benchmark tables.
    name: str = "abstract"

    def __init__(self, regularization: float = DEFAULT_REGULARIZATION) -> None:
        if regularization < 0:
            raise ValueError(f"regularization must be non-negative, got {regularization}")
        self.regularization = regularization

    @abstractmethod
    def invert(self, covariance: np.ndarray) -> InverseInfo:
        """Return the scheme's stand-in for ``S^{-1}`` plus ``ln |S|``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(regularization={self.regularization!r})"


class DiagonalScheme(CovarianceScheme):
    """MARS-style diagonal approximation: ``S^{-1} ~ diag(1 / S_jj)``.

    Equivalent to the classic re-weighting rule where each dimension's
    weight is inversely proportional to the variance of the relevant
    images along that dimension.  Cost is O(p) per inversion and the
    singularity problem cannot arise (Section 4.4.4).
    """

    name = "diagonal"

    def invert(self, covariance: np.ndarray) -> InverseInfo:
        covariance = np.asarray(covariance, dtype=float)
        _check_square(covariance)
        variances = np.diag(covariance).copy()
        variances = np.maximum(variances, self.regularization)
        reciprocal = 1.0 / variances
        inverse = np.diag(reciprocal)
        log_det = float(np.sum(np.log(variances)))
        return InverseInfo(
            inverse=inverse, log_det_covariance=log_det, diagonal=reciprocal
        )


class InverseScheme(CovarianceScheme):
    """MindReader-style full matrix inverse with diagonal regularization.

    Adds ``regularization * max(trace/p, 1)`` to the diagonal before
    inversion whenever the matrix is not safely positive definite, the
    standard fix the paper cites from Zhou & Huang [21] for the case of
    fewer relevant images than dimensions.
    """

    name = "inverse"

    def invert(self, covariance: np.ndarray) -> InverseInfo:
        covariance = np.asarray(covariance, dtype=float)
        _check_square(covariance)
        p = covariance.shape[0]
        scale = max(float(np.trace(covariance)) / p, 1.0)
        ridge = self.regularization * scale
        regularized = covariance + ridge * np.eye(p)
        try:
            # Cholesky doubles as a positive-definiteness check and gives
            # the log-determinant for free.
            chol = np.linalg.cholesky(regularized)
        except np.linalg.LinAlgError:
            # Fall back to an eigenvalue floor for pathological inputs
            # (e.g. negative variances from accumulated round-off).
            eigenvalues, eigenvectors = np.linalg.eigh(regularized)
            eigenvalues = np.maximum(eigenvalues, max(ridge, DEFAULT_REGULARIZATION))
            inverse = (eigenvectors / eigenvalues) @ eigenvectors.T
            log_det = float(np.sum(np.log(eigenvalues)))
            return InverseInfo(inverse=inverse, log_det_covariance=log_det)
        identity = np.eye(p)
        chol_inverse = np.linalg.solve(chol, identity)
        inverse = chol_inverse.T @ chol_inverse
        log_det = 2.0 * float(np.sum(np.log(np.diag(chol))))
        return InverseInfo(inverse=inverse, log_det_covariance=log_det)


def _check_square(matrix: np.ndarray) -> None:
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"covariance must be a square matrix, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise ValueError("covariance contains non-finite entries")


_SCHEMES = {
    DiagonalScheme.name: DiagonalScheme,
    InverseScheme.name: InverseScheme,
}


def get_scheme(
    name: str,
    regularization: float = DEFAULT_REGULARIZATION,
) -> CovarianceScheme:
    """Look up a covariance scheme by name (``"diagonal"`` or ``"inverse"``)."""
    try:
        factory = _SCHEMES[name]
    except KeyError:
        valid = ", ".join(sorted(_SCHEMES))
        raise ValueError(
            f"unknown covariance scheme {name!r}; expected one of: {valid}"
        ) from None
    return factory(regularization=regularization)
