"""Progressive filter-and-refine scanning: exact top-k, fraction of the work.

The paper's Theorem 1 (Section 4.4) shows the quadratic measures are
invariant under linear transforms, which the kernel layer already uses
to factor ``S⁻¹ = L L'`` once per cluster.  This module pushes the same
idea one step further, in the style of GEMINI filter-and-refine
(Faloutsos et al.) and VA-file scans (Weber et al.): in a whitened,
variance-ordered basis the per-cluster distance is a plain sum of
squared coordinates,

    d²(x) = Σ_j y_j²,   y = (x − c) T,

so the partial sum over any *prefix* of the coordinates is a monotone
**lower bound** on the true distance.  Equation 5's disjunctive
aggregate (the weighted harmonic mean, the α = −2 fuzzy OR) is monotone
increasing in every per-cluster distance, so per-cluster prefix bounds
combine into a valid aggregate lower bound.  A scan can therefore

1. score every candidate on the first ``t ≪ p`` coordinates (the
   *filter* phase — an O(N·p·t/p) fraction of the full arithmetic),
2. maintain a running k-th-best threshold over exactly-refined
   candidates, and
3. *refine* (evaluate exactly) only the candidates whose lower bound
   does not already exceed the threshold, in blocks ordered by bound.

Exactness contract: the refine phase evaluates survivors through the
query's own ``distances()`` (the compiled kernels, whose row-subset
evaluations are bitwise identical to full-scan rows), and a candidate
is pruned only when its lower bound exceeds the threshold by a small
relative-plus-absolute slack.  The returned top-k is therefore
**byte-identical** to the naive full scan under the shared
deterministic ``(distance, index)`` ordering of :func:`exact_top_k` —
the prefix transforms influence *cost only*, never a ranking.

Coordinate ordering: the whitened axes are ordered by the *observed*
per-coordinate mass of a small strided sample of the database (largest
first), so the earliest coordinates discriminate the most.  Ordering,
like everything else in the filter phase, affects only how much gets
pruned — a bad order degrades gracefully to refining everything.

:func:`use_progressive` switches the layer off (every consumer then
falls back to its classic full scan), mirroring ``use_kernels``.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import add_event, current_tracer
from . import kernels as _kernels
from .kernels import CholeskyKernel, CompiledQuery, DiagonalKernel, ensure_compiled

__all__ = [
    "exact_top_k",
    "prune_threshold",
    "default_schedule",
    "CoarseLevel0",
    "ProgressivePlan",
    "ScanStats",
    "ProgressiveResult",
    "ProgressiveScan",
    "plan_for",
    "progressive_topk",
    "progressive_topk_batch",
    "progressive_enabled",
    "progressive_min_rows",
    "use_progressive",
]

_ENABLED = True

#: Below this many candidate rows a full scan is cheaper than the
#: filter bookkeeping (and tiny scans are dominated by call overhead).
_MIN_ROWS = 2048

#: Below this dimensionality a prefix keeps almost all coordinates, so
#: the filter phase saves nothing.
_MIN_DIMENSION = 16

#: Pruning slack: a candidate is discarded only when its lower bound
#: exceeds ``tau * (1 + _RELATIVE_SLACK) + _ABSOLUTE_SLACK``.  The
#: bound arithmetic (eigen-basis) differs from the exact path
#: (Cholesky), so bounds can overshoot true distances by a few ulps;
#: the slack keeps such overshoot from ever pruning a true neighbour.
_RELATIVE_SLACK = 1e-9
_ABSOLUTE_SLACK = 1e-12

#: Attribute memoizing the plan (or its absence) on a compiled query.
_PLAN_ATTRIBUTE = "_progressive_plan"

#: Rows sampled (strided) to estimate per-coordinate mass for ordering.
_SAMPLE_ROWS = 256

#: Minimum refine-block size; blocks also scale with k.
_MIN_REFINE_BLOCK = 256

#: Per-plan cap on cached per-database scan contexts (each shard of a
#: sharded scan keys its own context).
_MAX_CONTEXTS = 8

#: Safety shave (in *root*-distance space) applied to coarse-companion
#: bounds: the stored PCA projections are float32, so the computed
#: ``‖z − z_c‖`` can overshoot the true projected distance by rounding
#: noise.  Shaving a relative margin of this size before squaring keeps
#: a coarse bound from ever exceeding the distance it bounds by more
#: than the pruning slack absorbs (float32 eps is ≈6e-8; 1e-5 leaves
#: two orders of magnitude of headroom).
_COARSE_MARGIN = 1e-5

#: Row budget of an approximate (load-shed) scan, as a multiple of k:
#: only the best-bounded ``_APPROX_BUDGET·k`` candidates are refined.
_APPROX_BUDGET = 4

#: Target element count of one batched level-0 product tile
#: ``(rows, Σ_i g_i·t0)`` — large enough that the per-tile Python
#: bookkeeping amortizes, small enough that the buffer stays far from
#: memory pressure.
_BATCH_LEVEL0_TILE_ELEMENTS = 1 << 21

_UNSET = object()


def exact_top_k(
    distances: np.ndarray, k: int, tie_break: Optional[np.ndarray] = None
) -> np.ndarray:
    """Positions of the ``k`` smallest distances, deterministically.

    Selection *and* order follow the total order ``(distance, key)``
    where ``key`` is the position itself (or ``tie_break[position]``,
    e.g. a global row id when ``distances`` covers a candidate subset).
    Unlike a bare ``argpartition`` the result is independent of array
    layout under exact ties, which is what lets the progressive scan —
    which never even computes most distances — reproduce the reference
    ordering bit for bit.  O(N + c log c) with ``c`` the cut size
    (``k`` plus any boundary ties).
    """
    distances = np.asarray(distances)
    n = distances.shape[0]
    k = min(k, n)
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        cut = np.arange(n, dtype=np.intp)
    else:
        kth = np.partition(distances, k - 1)[k - 1]
        cut = np.nonzero(distances <= kth)[0]
    keys = cut if tie_break is None else np.asarray(tie_break)[cut]
    order = cut[np.lexsort((keys, distances[cut]))]
    return order[:k]


def prune_threshold(value: float) -> float:
    """A cut just above ``value``: prune only bounds strictly beyond it.

    Lower bounds are computed in a different basis (eigen) than exact
    distances (Cholesky), so a bound can exceed the distance it bounds
    by a few ulps of float error; comparing bounds against this slacked
    threshold instead of ``value`` itself keeps that error from ever
    pruning a true neighbour.
    """
    return value * (1.0 + _RELATIVE_SLACK) + _ABSOLUTE_SLACK


def default_schedule(dimension: int) -> Tuple[int, ...]:
    """The prefix schedule ``t ∈ {p/8, p/4, p}`` (deduplicated, sorted)."""
    if dimension < 1:
        raise ValueError(f"dimension must be at least 1, got {dimension}")
    return tuple(
        sorted({max(1, dimension // 8), max(1, dimension // 4), dimension})
    )


# ----------------------------------------------------------------------
# Per-cluster prefix evaluators
# ----------------------------------------------------------------------


class _DiagonalPrefix:
    """Coordinate-subset lower bounds for a diagonal ``S⁻¹``.

    The basis is already diagonal: ``d² = Σ_j w_j (x_j − c_j)²`` with
    ``w_j ≥ 0``, so any subset of coordinates lower-bounds the total.
    The default order takes the largest weights first.
    """

    def __init__(self, kernel: DiagonalKernel) -> None:
        self.center = kernel.center
        self.weights = np.maximum(kernel.diagonal, 0.0)
        self.default_order = np.argsort(-self.weights, kind="stable")

    def partial(
        self, rows: np.ndarray, lo: int, hi: int, order: Optional[np.ndarray] = None
    ) -> np.ndarray:
        cols = (self.default_order if order is None else order)[lo:hi]
        block = rows[:, cols] - self.center[cols]
        np.multiply(block, block, out=block)
        return block @ self.weights[cols]

    def box_lower_bound(self, low: np.ndarray, high: np.ndarray) -> float:
        # Exact per-axis bound — identical to the classic tree bound.
        delta = np.maximum(np.maximum(low - self.center, self.center - high), 0.0)
        return float(np.sum(self.weights * delta * delta))

    def data_order(self, sample: np.ndarray) -> np.ndarray:
        centered = sample - self.center
        mass = self.weights * np.mean(centered * centered, axis=0)
        return np.argsort(-mass, kind="stable")


class _WhitenedPrefix:
    """Eigen-whitened prefix lower bounds for a full PSD ``S⁻¹``.

    ``S⁻¹ = V Λ V'`` gives the whitening transform ``T = V √Λ`` with
    columns ordered by eigenvalue (largest first); then
    ``d²(x) = ‖(x − c) T‖²`` and every column subset lower-bounds it.
    Used for *bounds only* — the exact path stays with the Cholesky
    kernels, so bound arithmetic can never perturb a ranking.
    """

    def __init__(self, kernel: CholeskyKernel, node_t: int) -> None:
        self.center = kernel.center
        eigenvalues, eigenvectors = np.linalg.eigh(kernel.inverse)
        order = np.argsort(-eigenvalues, kind="stable")
        eigenvalues = np.maximum(eigenvalues[order], 0.0)
        self.transform = np.ascontiguousarray(
            eigenvectors[:, order] * np.sqrt(eigenvalues)
        )
        self.lambda_min = float(eigenvalues[-1] if eigenvalues.size else 0.0)
        # Interval-arithmetic node bound operands (first node_t columns).
        self.node_transform = np.ascontiguousarray(self.transform[:, :node_t])
        self.node_abs = np.abs(self.node_transform)

    def partial(
        self, rows: np.ndarray, lo: int, hi: int, order: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if order is None:
            cols = self.transform[:, lo:hi]
        else:
            cols = self.transform[:, order[lo:hi]]
        transformed = (rows - self.center) @ cols
        return np.einsum("ij,ij->i", transformed, transformed)

    def box_lower_bound(self, low: np.ndarray, high: np.ndarray) -> float:
        """Max of the interval bound and the classic λ_min bound.

        For ``x`` in the box, the j-th whitened coordinate lies in
        ``m_j ± r_j`` with ``m`` the transformed box midpoint and
        ``r = half · |T|`` (triangle inequality), so
        ``Σ max(0, |m_j| − r_j)²`` over any column subset lower-bounds
        ``d²``.  Shaved by the relative slack to absorb float error.
        """
        mid = 0.5 * (low + high) - self.center
        half = 0.5 * (high - low)
        m = mid @ self.node_transform
        r = half @ self.node_abs
        interval = float(np.sum(np.maximum(np.abs(m) - r, 0.0) ** 2))
        delta = np.maximum(np.maximum(low - self.center, self.center - high), 0.0)
        classic = self.lambda_min * float(np.sum(delta * delta))
        return max(interval * (1.0 - _RELATIVE_SLACK), classic)

    def data_order(self, sample: np.ndarray) -> np.ndarray:
        transformed = (sample - self.center) @ self.transform
        mass = np.mean(transformed * transformed, axis=0)
        return np.argsort(-mass, kind="stable")


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------


class _ScanContext:
    """Per-(plan, database) filter operands, built once and reused.

    Holds the data-aware coordinate orders and, for the whitened
    clusters, one *stacked* transform slice per schedule range so a
    whole filter level is a single GEMM over the raw rows with the
    per-cluster center projections folded into one offset vector
    (``y = x·C − c·C``).  The expanded form perturbs bound values by
    float cancellation noise only — bounds feed pruning decisions
    through the slacked threshold, never a distance that gets returned.

    Diagonal clusters have no cheap prefix: their full scan is already
    memory-bound O(N·p), and a column subset touches the same cache
    lines.  Mixed queries therefore score diagonal clusters *exactly*
    in the first filter level (an exact value is the tightest possible
    "bound"; later levels add zero) and the whitened clusters — where
    the O(N·p²) savings live — carry the truncation.
    """

    def __init__(self, plan: "ProgressivePlan", vectors: np.ndarray) -> None:
        self.plan = plan
        self.orders = plan.sample_orders(vectors)
        self._whitened = plan._whitened
        self._diagonal = plan._diagonal
        self._ranges: dict = {}

    def _stacked_range(self, lo: int, hi: int):
        cached = self._ranges.get((lo, hi))
        if cached is None:
            columns = [
                prefix.transform[:, self.orders[row][lo:hi]]
                for row, prefix in self._whitened
            ]
            stacked = np.ascontiguousarray(np.concatenate(columns, axis=1))
            offsets = np.concatenate(
                [
                    prefix.center @ cols
                    for (_, prefix), cols in zip(self._whitened, columns)
                ]
            )
            cached = (stacked, offsets)
            self._ranges[(lo, hi)] = cached
        return cached

    def prefix_distances(self, rows: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """``(g, N)`` partial distances over coordinates ``[lo, hi)``.

        Additive across disjoint ranges: whitened clusters accumulate
        their ordered coordinate blocks; diagonal clusters contribute
        everything at ``lo == 0`` and zero afterwards.
        """
        out = np.empty((self.plan.size, rows.shape[0]))
        if self._whitened:
            stacked, offsets = self._stacked_range(lo, hi)
            product = rows @ stacked
            product -= offsets
            np.multiply(product, product, out=product)
            sums = product.reshape(rows.shape[0], len(self._whitened), hi - lo).sum(
                axis=2
            )
            for position, (row, _) in enumerate(self._whitened):
                out[row] = sums[:, position]
        for row, prefix in self._diagonal:
            if lo == 0:
                centered = rows - prefix.center
                np.multiply(centered, centered, out=centered)
                out[row] = centered @ prefix.weights
            else:
                out[row] = 0.0
        return out


class ProgressivePlan:
    """Per-cluster prefix evaluators plus the dimension schedule.

    Built once per compiled query (memoized alongside the kernels) so
    the eigen-decompositions are paid once per cluster state — shared
    across feedback rounds, shards and sessions exactly like the
    kernels themselves.
    """

    def __init__(self, compiled: CompiledQuery) -> None:
        self.dimension = compiled.dimension
        self.schedule = default_schedule(self.dimension)
        node_t = self.schedule[min(1, len(self.schedule) - 1)]
        prefixes: List[object] = []
        for kernel in compiled.kernels:
            if isinstance(kernel, DiagonalKernel):
                prefixes.append(_DiagonalPrefix(kernel))
            elif isinstance(kernel, CholeskyKernel):
                prefixes.append(_WhitenedPrefix(kernel, node_t))
            else:  # pragma: no cover - plan_for filters these out
                raise TypeError(f"no prefix evaluator for {kernel!r}")
        self.prefixes = prefixes
        self._whitened = [
            (row, prefix)
            for row, prefix in enumerate(prefixes)
            if isinstance(prefix, _WhitenedPrefix)
        ]
        self._diagonal = [
            (row, prefix)
            for row, prefix in enumerate(prefixes)
            if isinstance(prefix, _DiagonalPrefix)
        ]
        self._context_lock = threading.Lock()
        self._contexts: "OrderedDict[Tuple[int, int], _ScanContext]" = OrderedDict()

    @property
    def size(self) -> int:
        """Number of clusters."""
        return len(self.prefixes)

    @property
    def has_whitened(self) -> bool:
        """Whether any cluster carries a full (whitened) inverse."""
        return bool(self._whitened)

    def scan_context(self, vectors: np.ndarray) -> _ScanContext:
        """The cached :class:`_ScanContext` for this database (or shard).

        Keyed by array identity: each shard of a sharded scan gets its
        own context (its own sample-derived coordinate orders).  A
        stale key after an id reuse merely yields suboptimal orders —
        every order is a valid bound permutation — so the cache needs
        no invalidation protocol, only the LRU size cap.
        """
        key = (id(vectors), vectors.shape[0])
        with self._context_lock:
            context = self._contexts.get(key)
            if context is None:
                context = _ScanContext(self, vectors)
                self._contexts[key] = context
                while len(self._contexts) > _MAX_CONTEXTS:
                    self._contexts.popitem(last=False)
            else:
                self._contexts.move_to_end(key)
            return context

    def sample_orders(self, vectors: np.ndarray) -> List[np.ndarray]:
        """Data-aware coordinate orders from a strided database sample.

        Orders each cluster's coordinates by observed mass ``E[y_j²]``
        (largest first) so the first prefix soaks up as much of the
        true distance as this database allows.  Affects pruning power
        only — any permutation yields valid bounds.
        """
        n = vectors.shape[0]
        if n <= _SAMPLE_ROWS:
            sample = vectors
        else:
            sample = vectors[:: n // _SAMPLE_ROWS][:_SAMPLE_ROWS]
        return [prefix.data_order(sample) for prefix in self.prefixes]

    def prefix_distances(
        self,
        rows: np.ndarray,
        lo: int,
        hi: int,
        orders: Optional[Sequence[np.ndarray]] = None,
    ) -> np.ndarray:
        """``(g, N)`` partial distances over coordinates ``[lo, hi)``.

        Partial sums over disjoint coordinate ranges are additive, so
        escalating a bound from ``t0`` to ``t1`` costs only the
        ``[t0, t1)`` increment.
        """
        out = np.empty((len(self.prefixes), rows.shape[0]))
        for position, prefix in enumerate(self.prefixes):
            order = None if orders is None else orders[position]
            out[position] = prefix.partial(rows, lo, hi, order)
        return out

    def box_lower_bounds(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Per-cluster lower bounds of the quadratic distance to a box."""
        return np.array(
            [prefix.box_lower_bound(low, high) for prefix in self.prefixes]
        )


def plan_for(compiled: CompiledQuery) -> Optional[ProgressivePlan]:
    """The compiled query's progressive plan, or ``None`` if ineligible.

    Ineligible when:

    * the dimension is too small for a useful prefix;
    * any cluster fell back to the indefinite ``MatmulKernel`` (an
      indefinite form admits no monotone coordinate-prefix bound);
    * *every* cluster is diagonal — a diagonal scan is already
      memory-bound O(N·p), and a coordinate-subset filter reads the
      same cache lines as the full scan, so filtering can only add
      cost (diagonal clusters still contribute prefix bounds inside
      mixed queries, where the whitened clusters pay for the pass).

    The answer — plan or ``None`` — is memoized on the compiled query.
    """
    plan = getattr(compiled, _PLAN_ATTRIBUTE, _UNSET)
    if plan is not _UNSET:
        return plan
    eligible = (
        compiled.dimension >= _MIN_DIMENSION
        and all(
            isinstance(kernel, (DiagonalKernel, CholeskyKernel))
            for kernel in compiled.kernels
        )
        and any(isinstance(kernel, CholeskyKernel) for kernel in compiled.kernels)
    )
    plan = ProgressivePlan(compiled) if eligible else None
    setattr(compiled, _PLAN_ATTRIBUTE, plan)
    return plan


# ----------------------------------------------------------------------
# Coarse companion blocks as a level-0 bound source
# ----------------------------------------------------------------------


class CoarseLevel0:
    """Precomputed PCA projections serving as level-0 lower bounds.

    The feature store can carry ``coarse/NNNN`` companion blocks: the
    shard rows projected onto the dataset's top ``c`` principal
    directions, ``z = (x − μ) V'`` with orthonormal rows ``V`` of shape
    ``(c, p)``.  Because an orthogonal projection never lengthens a
    vector, every cluster with smallest inverse-covariance eigenvalue
    ``λ_min`` satisfies

        d²(x) ≥ λ_min · ‖x − c‖² ≥ λ_min · ‖P(x − c)‖²
              = λ_min · ‖z − z_c‖²,   z_c = (c − μ) V',

    so the *stored* projections replace the per-query level-0 prefix
    transform of :func:`progressive_topk` — the dominant full-database
    GEMM of a store-backed scan — with one small ``(N, c) @ (c, g)``
    product against precomputed data.  The projections are float32, so
    the computed root distance is shaved by :data:`_COARSE_MARGIN`
    (relative to the participating magnitudes) before squaring; the
    shave can only weaken a bound, never invalidate it, and the exact
    path is untouched, so rankings stay byte-identical either way.

    Args:
        projected: ``(N, c)`` projected rows (the store's coarse block;
            float32 accepted and promoted exactly).
        mean: the projection's centering vector ``μ`` of shape ``(p,)``.
        components: the orthonormal component rows ``V`` of shape
            ``(c, p)``.
    """

    def __init__(
        self, projected: np.ndarray, mean: np.ndarray, components: np.ndarray
    ) -> None:
        self.z = np.ascontiguousarray(projected, dtype=float)
        if self.z.ndim != 2:
            raise ValueError(f"projected must be 2-D, got shape {self.z.shape}")
        self.mean = np.ascontiguousarray(mean, dtype=float)
        self.components = np.ascontiguousarray(components, dtype=float)
        if self.components.shape != (self.z.shape[1], self.mean.shape[0]):
            raise ValueError(
                f"components shape {self.components.shape} inconsistent with "
                f"{self.z.shape[1]} projected dims over {self.mean.shape[0]} features"
            )
        self.row_norms = np.einsum("ij,ij->i", self.z, self.z)
        self.row_scales = np.sqrt(self.row_norms)
        self._lock = threading.Lock()
        self._cluster_stats: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )

    def matches(self, n_rows: int, dimension: int) -> bool:
        """Whether this block covers an ``(n_rows, dimension)`` scan."""
        return (
            self.z.shape[0] == n_rows
            and self.components.shape[1] == dimension
            and self.z.shape[1] > 0
        )

    def _stats_for(self, plan: "ProgressivePlan"):
        """Per-cluster ``(z_c, ‖z_c‖, λ_min)`` operands, cached per plan.

        Keyed weakly by the plan object itself, so a recycled ``id()``
        after garbage collection can never alias another plan's
        centers (bound validity depends on the pairing being right).
        """
        with self._lock:
            cached = self._cluster_stats.get(plan)
            if cached is not None:
                return cached
        centers = np.stack([prefix.center for prefix in plan.prefixes])
        lambdas = np.array(
            [
                prefix.lambda_min
                if isinstance(prefix, _WhitenedPrefix)
                else float(prefix.weights.min()) if prefix.weights.size else 0.0
                for prefix in plan.prefixes
            ]
        )
        projected_centers = (centers - self.mean) @ self.components.T
        center_norms = np.einsum("ij,ij->i", projected_centers, projected_centers)
        cached = (
            projected_centers,
            np.sqrt(center_norms),
            center_norms,
            np.maximum(lambdas, 0.0),
        )
        with self._lock:
            self._cluster_stats[plan] = cached
        return cached

    def lower_bounds(self, plans: Sequence["ProgressivePlan"]) -> List[np.ndarray]:
        """Per-cluster level-0 bounds for one or more plans, one GEMM.

        Every plan's projected cluster centers are stacked so the whole
        micro-batch shares a single ``(N, c) @ (c, Σ g_i)`` product —
        the cross-query amortization the batching executor exists for.

        Returns one ``(g_i, N)`` bound matrix per plan, in order.
        """
        stats = [self._stats_for(plan) for plan in plans]
        if not stats:
            return []
        all_centers = np.concatenate([entry[0] for entry in stats])
        # Expansion form: ‖z − z_c‖² = ‖z‖² − 2 z·z_c + ‖z_c‖², with the
        # cross term for every query and cluster in one product.
        cross = self.z @ all_centers.T
        results: List[np.ndarray] = []
        offset = 0
        for projected_centers, center_scales, center_norms, lambdas in stats:
            g = projected_centers.shape[0]
            block = cross[:, offset : offset + g]
            offset += g
            raw = self.row_norms[:, None] - 2.0 * block + center_norms[None, :]
            np.maximum(raw, 0.0, out=raw)
            np.sqrt(raw, out=raw)
            # Shave the float32 rounding headroom in root space, then
            # square back; clamped at zero so a tiny distance yields a
            # (valid, vacuous) zero bound rather than a negative one.
            raw -= _COARSE_MARGIN * (
                self.row_scales[:, None] + center_scales[None, :] + 1.0
            )
            np.maximum(raw, 0.0, out=raw)
            np.multiply(raw, raw, out=raw)
            raw *= lambdas[None, :]
            results.append(np.ascontiguousarray(raw.T))
        return results


# ----------------------------------------------------------------------
# The progressive scan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScanStats:
    """Filter/refine accounting of one progressive scan.

    Attributes:
        filtered: candidates scored by the (cheap) filter phase.
        refined: candidates whose exact distance was computed.
        pruned: candidates discarded on lower bound alone.
        schedule: the prefix schedule used.
        survivors_per_level: candidates still alive after the filter at
            each schedule level (before block-wise refinement).
        level0: where the level-0 bounds came from — ``"prefix"`` (the
            plan's own transform), ``"coarse"`` (the store's PCA
            companion blocks) or ``"full"`` (no filtering happened).
    """

    filtered: int
    refined: int
    pruned: int
    schedule: Tuple[int, ...]
    survivors_per_level: Tuple[int, ...]
    level0: str = "prefix"

    @property
    def refine_fraction(self) -> float:
        """``refined / filtered`` — 1.0 means the filter saved nothing."""
        return self.refined / self.filtered if self.filtered else 1.0


@dataclass(frozen=True)
class ProgressiveResult:
    """Exact top-k (indices sorted by ``(distance, index)``) plus stats.

    ``exact`` is ``False`` only for an explicitly requested approximate
    (load-shed) scan: the returned distances are still true distances,
    but only a bound-selected candidate subset was considered.
    """

    indices: np.ndarray
    distances: np.ndarray
    stats: ScanStats
    exact: bool = field(default=True)


def _full_scan_stats(n: int) -> ScanStats:
    return ScanStats(
        filtered=n, refined=n, pruned=0, schedule=(), survivors_per_level=(),
        level0="full",
    )


def _prepare(vectors: np.ndarray, query, k: int):
    """Eligibility gates shared by the solo and batched entry points.

    Returns ``(combine, plan)`` when the progressive path applies to
    this ``(vectors, query, k)`` triple, else ``None``.
    """
    if not _ENABLED or not _kernels.kernels_enabled():
        return None
    combine = getattr(query, "combine_per_cluster", None)
    if combine is None or getattr(query, "points", None) is None:
        return None
    n = vectors.shape[0]
    if n < _MIN_ROWS or k < 1 or 4 * k >= n:
        return None
    compiled = ensure_compiled(query)
    if vectors.shape[1] != compiled.dimension:
        return None
    plan = plan_for(compiled)
    if plan is None:
        return None
    if len(plan.schedule) < 2:
        return None
    return combine, plan


def _scan_from_level0(
    vectors: np.ndarray,
    query,
    combine,
    plan: ProgressivePlan,
    context: _ScanContext,
    k: int,
    lower: np.ndarray,
    per_cluster0: Optional[np.ndarray],
    ranges: Sequence[Tuple[int, int]],
    level0: str,
    approximate: bool = False,
) -> ProgressiveResult:
    """Seed / escalate / refine from precomputed level-0 bounds.

    Args:
        lower: ``(N,)`` aggregate lower bounds for every candidate.
        per_cluster0: the ``(g, N)`` per-cluster values ``lower`` came
            from *when they are prefix partial sums* (the escalation
            accumulator then continues from them); ``None`` when the
            level-0 bounds are not additive with the prefix ranges
            (the coarse-companion source) — accumulation then restarts
            at zero and ``ranges`` must begin at coordinate 0.
        ranges: escalation coordinate ranges ``(lo, hi)``, applied
            additively in order.
        approximate: serve a load-shed page — refine only the best
            ``_APPROX_BUDGET·k`` bounded candidates and return with
            ``exact=False`` (distances are still true distances).
    """
    n = vectors.shape[0]
    schedule = plan.schedule

    # --- Seed the threshold: refine the k most promising candidates.
    seed = np.argpartition(lower, k - 1)[:k]
    seed_distances = np.asarray(query.distances(vectors[seed]))
    top = exact_top_k(seed_distances, k, tie_break=seed)
    best_ids = seed[top]
    best_distances = seed_distances[top]
    tau = float(best_distances[-1])
    refined = int(seed.shape[0])

    refined_mask = np.zeros(n, dtype=bool)
    refined_mask[seed] = True

    if approximate:
        # Load-shed mode: spend a fixed exact-evaluation budget on the
        # best-bounded candidates instead of guaranteeing the scan.
        budget_rows = min(n, max(_APPROX_BUDGET * k, _MIN_REFINE_BLOCK))
        if budget_rows >= n:
            candidates = np.arange(n)
        else:
            candidates = np.argpartition(lower, budget_rows - 1)[:budget_rows]
        candidates = candidates[~refined_mask[candidates]]
        if candidates.shape[0]:
            candidate_distances = np.asarray(query.distances(vectors[candidates]))
            refined += int(candidates.shape[0])
            merged_ids = np.concatenate([best_ids, candidates])
            merged_distances = np.concatenate(
                [best_distances, candidate_distances]
            )
            top = exact_top_k(merged_distances, k, tie_break=merged_ids)
            best_ids = merged_ids[top]
            best_distances = merged_distances[top]
        stats = ScanStats(
            filtered=n,
            refined=refined,
            pruned=n - refined,
            schedule=schedule,
            survivors_per_level=(int(candidates.shape[0]),),
            level0=level0,
        )
        add_event(
            "progressive_scan",
            filtered=stats.filtered,
            refined=stats.refined,
            pruned=stats.pruned,
            approximate=True,
            level0=level0,
        )
        return ProgressiveResult(
            indices=best_ids, distances=best_distances, stats=stats, exact=False
        )

    alive = np.nonzero(~refined_mask & (lower <= prune_threshold(tau)))[0]
    survivors_per_level = [int(alive.shape[0])]

    # --- Escalate: tighten surviving bounds through the ranges.
    per_cluster_alive = (
        np.zeros((plan.size, alive.shape[0]))
        if per_cluster0 is None
        else per_cluster0[:, alive]
    )
    bounds = lower[alive]
    for lo, hi in ranges:
        if alive.shape[0] == 0:
            break
        per_cluster_alive = per_cluster_alive + context.prefix_distances(
            vectors[alive], lo, hi
        )
        bounds = np.asarray(combine(per_cluster_alive))
        keep = bounds <= prune_threshold(tau)
        alive = alive[keep]
        per_cluster_alive = per_cluster_alive[:, keep]
        bounds = bounds[keep]
        survivors_per_level.append(int(alive.shape[0]))

    # --- Refine: exact distances for survivors, best bounds first, in
    # blocks; every refined block can shrink tau and prune the rest.
    order = np.argsort(bounds, kind="stable")
    alive = alive[order]
    bounds = bounds[order]
    block = max(_MIN_REFINE_BLOCK, 4 * k)
    position = 0
    with current_tracer().span("refine", candidates=int(alive.shape[0])) as span:
        while position < alive.shape[0]:
            cut = prune_threshold(tau)
            if bounds[position] > cut:
                break  # sorted by bound: everything left is pruned too
            chunk = alive[position : position + block]
            chunk = chunk[bounds[position : position + block] <= cut]
            position += block
            if chunk.shape[0] == 0:
                continue
            chunk_distances = np.asarray(query.distances(vectors[chunk]))
            refined += int(chunk.shape[0])
            merged_ids = np.concatenate([best_ids, chunk])
            merged_distances = np.concatenate([best_distances, chunk_distances])
            top = exact_top_k(merged_distances, k, tie_break=merged_ids)
            best_ids = merged_ids[top]
            best_distances = merged_distances[top]
            tau = float(best_distances[-1])
        span.set("refined", refined)

    stats = ScanStats(
        filtered=n,
        refined=refined,
        pruned=n - refined,
        schedule=schedule,
        survivors_per_level=tuple(survivors_per_level),
        level0=level0,
    )
    add_event(
        "progressive_scan",
        filtered=stats.filtered,
        refined=stats.refined,
        pruned=stats.pruned,
        schedule=list(schedule),
        survivors_per_level=list(stats.survivors_per_level),
        level0=level0,
    )
    return ProgressiveResult(
        indices=best_ids, distances=best_distances, stats=stats
    )


def _mid_ranges(schedule: Tuple[int, ...]) -> List[Tuple[int, int]]:
    """The escalation ranges between level 0 and the final (exact) level."""
    return [
        (schedule[i], schedule[i + 1]) for i in range(len(schedule) - 2)
    ]


def progressive_topk(
    vectors: np.ndarray, query, k: int, *, coarse: Optional[CoarseLevel0] = None
) -> Optional[ProgressiveResult]:
    """Exact top-``k`` of ``query`` over ``vectors`` by filter-and-refine.

    Returns ``None`` when the progressive path does not apply (layer
    disabled, kernels disabled, scan too small, ``k`` too close to
    ``N``, query without per-cluster structure, or no eligible plan) —
    callers then fall back to their classic full scan.  When it does
    apply, the result is byte-identical to
    ``exact_top_k(query.distances(vectors), k)``.

    Args:
        coarse: optional precomputed :class:`CoarseLevel0` projections
            (the store's PCA companion blocks) replacing the level-0
            prefix transform; ignored when its shape does not cover
            this scan.  Bounds change, rankings never do.
    """
    prep = _prepare(vectors, query, k)
    if prep is None:
        return None
    combine, plan = prep
    schedule = plan.schedule
    context = plan.scan_context(vectors)
    t0 = schedule[0]
    n = vectors.shape[0]

    if coarse is not None and coarse.matches(n, vectors.shape[1]):
        # Level 0 from the stored projections: no full-database GEMM at
        # all.  The bounds are not prefix partial sums, so escalation
        # restarts the accumulator at coordinate 0 for the survivors.
        per_cluster = coarse.lower_bounds([plan])[0]
        lower = np.asarray(combine(per_cluster))
        return _scan_from_level0(
            vectors, query, combine, plan, context, k, lower, None,
            [(0, t0)] + _mid_ranges(schedule), "coarse",
        )

    # --- Filter: lower-bound every candidate on the first t0 coords.
    per_cluster = context.prefix_distances(vectors, 0, t0)
    lower = np.asarray(combine(per_cluster))
    return _scan_from_level0(
        vectors, query, combine, plan, context, k, lower, per_cluster,
        _mid_ranges(schedule), "prefix",
    )


def _batched_prefix_level0(
    vectors: np.ndarray,
    plans: Sequence[ProgressivePlan],
    contexts: Sequence[_ScanContext],
) -> List[np.ndarray]:
    """Level-0 prefix values for several plans in one stacked pass.

    Concatenates every plan's ``(0, t0)`` whitened operands into one
    wide ``(p, Σ_i m_i·t0_i)`` matrix so each database tile feeds a
    single GEMM covering the whole micro-batch, then splits the
    products back per plan (the same expanded ``x·C − c·C`` arithmetic
    as :meth:`_ScanContext.prefix_distances`).  Diagonal clusters are
    scored exactly on the same hot tile.  Values can differ from the
    solo path by summation-order ulps only — they feed the slacked
    pruning threshold, never a returned distance.
    """
    n = vectors.shape[0]
    outs = [np.empty((plan.size, n)) for plan in plans]
    entries = []  # (out, plan, column offset, width)
    blocks: List[np.ndarray] = []
    offset_parts: List[np.ndarray] = []
    column = 0
    for out, plan, context in zip(outs, plans, contexts):
        t0 = plan.schedule[0]
        stacked, offsets = context._stacked_range(0, t0)
        width = stacked.shape[1]
        blocks.append(stacked)
        offset_parts.append(offsets)
        entries.append((out, plan, column, width, t0))
        column += width
    big = np.ascontiguousarray(np.concatenate(blocks, axis=1))
    offsets_all = np.concatenate(offset_parts)
    tile = max(1, _BATCH_LEVEL0_TILE_ELEMENTS // max(1, big.shape[1]))
    for start in range(0, n, tile):
        stop = min(start + tile, n)
        rows = vectors[start:stop]
        product = rows @ big
        product -= offsets_all
        np.multiply(product, product, out=product)
        for out, plan, lo, width, t0 in entries:
            sums = product[:, lo : lo + width].reshape(
                stop - start, len(plan._whitened), t0
            ).sum(axis=2)
            for position, (row, _) in enumerate(plan._whitened):
                out[row, start:stop] = sums[:, position]
            for row, prefix in plan._diagonal:
                centered = rows - prefix.center
                np.multiply(centered, centered, out=centered)
                out[row, start:stop] = centered @ prefix.weights
    return outs


def progressive_topk_batch(
    vectors: np.ndarray,
    queries: Sequence[object],
    ks: Sequence[int],
    *,
    coarse: Optional[CoarseLevel0] = None,
    approximate: Optional[Sequence[bool]] = None,
) -> List[Optional[ProgressiveResult]]:
    """Filter-and-refine several queries over one matrix, sharing passes.

    The batched counterpart of :func:`progressive_topk`: all eligible
    queries share one level-0 pass — either a single stacked prefix
    GEMM over the whole micro-batch (the database is read from memory
    once instead of once per query) or, when ``coarse`` covers the
    scan, one small product against the store's precomputed PCA
    projections.  Seeding, escalation and refinement then run per
    query through each query's own compiled kernels, so every returned
    page is byte-identical to its solo :func:`progressive_topk` /
    full-scan counterpart.

    Args:
        queries: the micro-batch (need not share cluster counts or
            schemes; each is gated independently).
        ks: per-query page sizes.
        coarse: optional :class:`CoarseLevel0` covering ``vectors``.
        approximate: per-query load-shed flags (see
            :func:`progressive_topk`'s ``exact=False`` contract).

    Returns:
        One :class:`ProgressiveResult` per query, or ``None`` in the
        slots where the progressive path does not apply (the caller
        falls back to a full scan for those queries).
    """
    count = len(queries)
    if approximate is None:
        approximate = [False] * count
    results: List[Optional[ProgressiveResult]] = [None] * count
    prepared = []  # (index, combine, plan)
    for index, (query, k) in enumerate(zip(queries, ks)):
        prep = _prepare(vectors, query, k)
        if prep is not None:
            prepared.append((index, prep[0], prep[1]))
    if not prepared:
        return results
    n = vectors.shape[0]
    plans = [plan for _, _, plan in prepared]
    contexts = [plan.scan_context(vectors) for plan in plans]
    use_coarse = coarse is not None and coarse.matches(n, vectors.shape[1])
    if use_coarse:
        assert coarse is not None
        bound_blocks = coarse.lower_bounds(plans)
        accumulators: List[Optional[np.ndarray]] = [None] * len(prepared)
    else:
        bound_blocks = _batched_prefix_level0(vectors, plans, contexts)
        accumulators = list(bound_blocks)
    for position, (index, combine, plan) in enumerate(prepared):
        schedule = plan.schedule
        ranges = (
            [(0, schedule[0])] + _mid_ranges(schedule)
            if use_coarse
            else _mid_ranges(schedule)
        )
        lower = np.asarray(combine(bound_blocks[position]))
        results[index] = _scan_from_level0(
            vectors,
            queries[index],
            combine,
            plan,
            contexts[position],
            ks[index],
            lower,
            accumulators[position],
            ranges,
            "coarse" if use_coarse else "prefix",
            approximate=bool(approximate[index]),
        )
    return results


class ProgressiveScan:
    """Standalone filter-and-refine scanner over one vector matrix.

    The in-core counterpart of :class:`~repro.index.linear.LinearScan`
    (which routes through the same machinery): exact top-k with
    filter/refine statistics, falling back to a classic full scan when
    the progressive path does not apply.
    """

    def __init__(self, vectors: np.ndarray) -> None:
        vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=float)
        if vectors.shape[0] == 0:
            raise ValueError("cannot scan an empty database")
        self.vectors = vectors

    @property
    def size(self) -> int:
        """Number of scanned vectors."""
        return self.vectors.shape[0]

    def knn(self, query, k: int) -> ProgressiveResult:
        """Exact ``k`` nearest neighbours plus filter/refine stats."""
        if k < 1:
            raise ValueError(f"k must be at least 1, got {k}")
        k = min(k, self.size)
        result = progressive_topk(self.vectors, query, k)
        if result is not None:
            return result
        distances = np.asarray(query.distances(self.vectors))
        top = exact_top_k(distances, k)
        return ProgressiveResult(
            indices=top,
            distances=distances[top],
            stats=_full_scan_stats(self.size),
        )


# ----------------------------------------------------------------------
# Escape hatch
# ----------------------------------------------------------------------


def progressive_enabled() -> bool:
    """Whether the progressive scan layer is active (default: yes)."""
    return _ENABLED


def progressive_min_rows() -> int:
    """Current minimum candidate count for the progressive path."""
    return _MIN_ROWS


@contextmanager
def use_progressive(
    enabled: bool, min_rows: Optional[int] = None
) -> Iterator[None]:
    """Temporarily enable/disable progressive scanning (test/bench hook).

    Args:
        enabled: activate or deactivate the layer.
        min_rows: optional temporary override of the minimum scan size
            (tests use a small value to exercise the path on small
            fixtures).
    """
    global _ENABLED, _MIN_ROWS
    previous = (_ENABLED, _MIN_ROWS)
    _ENABLED = bool(enabled)
    if min_rows is not None:
        if min_rows < 1:
            raise ValueError(f"min_rows must be at least 1, got {min_rows}")
        _MIN_ROWS = int(min_rows)
    try:
        yield
    finally:
        _ENABLED, _MIN_ROWS = previous
