"""Adaptive Bayesian classification stage (paper Section 4.2, Algorithm 2).

Each newly marked relevant image must be placed into one of the current
clusters or become a new cluster.  The classifier:

1. computes the pooled covariance across clusters (Equation 7),
2. evaluates the Bayesian discriminant
   ``d̂_i(x) = -1/2 (x - x̄_i)' S_pooled^{-1} (x - x̄_i) + ln(w_i)``
   (Equation 10) for every cluster, where ``w_i = m_i / Σ m_k`` is the
   normalized relevance mass acting as the prior,
3. picks the cluster with maximal discriminant, and
4. admits the point only if it lies within that cluster's *effective
   radius*: ``(x - x̄_k)' S_k^{-1} (x - x̄_k) < chi2_p(alpha)``
   (Equation 6 / Algorithm 2 line 4); otherwise the point seeds a new
   cluster.

The classifier is stateless with respect to the cluster list; the
expensive pooled inversion can be shared across many points via
:meth:`BayesianClassifier.prepare`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..obs import add_event
from ..stats.chi2 import effective_radius
from ..stats.descriptive import pooled_covariance
from .cluster import Cluster
from .covariance import CovarianceScheme, DiagonalScheme

__all__ = ["ClassifierState", "ClassificationDecision", "BayesianClassifier"]


@dataclass(frozen=True)
class ClassifierState:
    """Precomputed quantities shared by every classification in a round.

    Attributes:
        centroids: ``(g, p)`` matrix of cluster centroids.
        pooled_inverse: ``S_pooled^{-1}`` under the active scheme (Eq. 7).
        log_priors: ``ln w_i`` for each cluster.
        cluster_inverses: each cluster's own ``S_i^{-1}`` for the radius
            check of Algorithm 2 line 4 (and for the quadratic
            discriminant variant).
        cluster_log_dets: ``ln |S_i|`` per cluster (quadratic variant's
            normalization term).
        radius: the effective radius ``chi2_p(alpha)``.
    """

    centroids: np.ndarray
    pooled_inverse: np.ndarray
    log_priors: np.ndarray
    cluster_inverses: List[np.ndarray]
    cluster_log_dets: np.ndarray
    radius: float


@dataclass(frozen=True)
class ClassificationDecision:
    """Outcome of classifying one point.

    Attributes:
        cluster_index: index of the winning cluster (always set — it is the
            argmax of the discriminants even when the point is an outlier).
        is_outlier: ``True`` when the point fell outside the winner's
            effective radius and should seed a new cluster.
        discriminants: the per-cluster ``d̂_i(x)`` values (Equation 10).
        radius_distance: the ``(x - x̄_k)' S_k^{-1} (x - x̄_k)`` value the
            radius check used.
    """

    cluster_index: int
    is_outlier: bool
    discriminants: np.ndarray
    radius_distance: float

    @property
    def assigned_index(self) -> Optional[int]:
        """The winning index, or ``None`` for outliers (new-cluster signal)."""
        return None if self.is_outlier else self.cluster_index


class BayesianClassifier:
    """Algorithm 2: allocate points to clusters via Bayesian discriminants.

    Args:
        scheme: covariance inversion scheme (diagonal or full inverse).
        significance_level: the ``alpha`` of the effective-radius test.
        discriminant: ``"pooled"`` uses Equation 10's linear discriminant
            (one shared ``S_pooled``, the paper's operational choice);
            ``"quadratic"`` keeps each cluster's own covariance in the
            quadratic term — the full normal-density "important special
            case" of Equation 8,
            ``d̂_i(x) = ln w_i − ½ ln|S_i| − ½ (x−x̄_i)' S_i^{-1} (x−x̄_i)``,
            which can separate clusters that differ in *shape* even when
            their means coincide.
    """

    def __init__(
        self,
        scheme: Optional[CovarianceScheme] = None,
        significance_level: float = 0.05,
        discriminant: str = "pooled",
    ) -> None:
        if not 0.0 < significance_level < 1.0:
            raise ValueError(
                f"significance level must lie strictly in (0, 1), got {significance_level}"
            )
        if discriminant not in ("pooled", "quadratic"):
            raise ValueError(
                f"discriminant must be 'pooled' or 'quadratic', got {discriminant!r}"
            )
        self.scheme = scheme if scheme is not None else DiagonalScheme()
        self.significance_level = significance_level
        self.discriminant = discriminant

    # ------------------------------------------------------------------
    # State preparation
    # ------------------------------------------------------------------

    def prepare(self, clusters: Sequence[Cluster]) -> ClassifierState:
        """Precompute pooled statistics for a fixed cluster list (Eq. 7)."""
        if not clusters:
            raise ValueError("the classifier needs at least one cluster")
        dimension = clusters[0].dimension
        if any(c.dimension != dimension for c in clusters):
            raise ValueError("clusters disagree on dimensionality")
        centroids = np.stack([c.centroid for c in clusters])
        weights = [c.weight for c in clusters]
        pooled = pooled_covariance([c.covariance for c in clusters], weights)
        pooled_inverse = self.scheme.invert(pooled).inverse
        total = sum(weights)
        log_priors = np.log(np.asarray(weights) / total)
        cluster_infos = [self.scheme.invert(c.covariance) for c in clusters]
        radius = effective_radius(dimension, self.significance_level)
        return ClassifierState(
            centroids=centroids,
            pooled_inverse=pooled_inverse,
            log_priors=log_priors,
            cluster_inverses=[info.inverse for info in cluster_infos],
            cluster_log_dets=np.array(
                [info.log_det_covariance for info in cluster_infos]
            ),
            radius=radius,
        )

    # ------------------------------------------------------------------
    # Classification (Equation 10 + radius check)
    # ------------------------------------------------------------------

    def discriminants(self, state: ClassifierState, x: np.ndarray) -> np.ndarray:
        """Evaluate ``d̂_i(x)`` for every cluster.

        Pooled mode is Equation 10; quadratic mode is the full normal
        log-density of Equation 8 (constant terms dropped).
        """
        x = np.asarray(x, dtype=float)
        diff = state.centroids - x
        if self.discriminant == "quadratic":
            quadratic = np.array(
                [
                    float(d @ inverse @ d)
                    for d, inverse in zip(diff, state.cluster_inverses)
                ]
            )
            return -0.5 * quadratic - 0.5 * state.cluster_log_dets + state.log_priors
        transformed = diff @ state.pooled_inverse
        quadratic = np.einsum("ij,ij->i", transformed, diff)
        return -0.5 * quadratic + state.log_priors

    def classify(
        self,
        state: ClassifierState,
        x: np.ndarray,
    ) -> ClassificationDecision:
        """Run Algorithm 2 for one point against prepared state."""
        x = np.asarray(x, dtype=float)
        scores = self.discriminants(state, x)
        winner = int(np.argmax(scores))
        diff = x - state.centroids[winner]
        radius_distance = float(diff @ state.cluster_inverses[winner] @ diff)
        return ClassificationDecision(
            cluster_index=winner,
            is_outlier=radius_distance >= state.radius,
            discriminants=scores,
            radius_distance=radius_distance,
        )

    def classify_points(
        self,
        clusters: Sequence[Cluster],
        points: np.ndarray,
    ) -> List[ClassificationDecision]:
        """Classify many points against one cluster list (state built once).

        Note: decisions are taken against the *same* snapshot of cluster
        statistics, mirroring the paper's batch treatment of a feedback
        round (clusters are re-estimated after the round, Algorithm 1
        lines 11-12).
        """
        state = self.prepare(clusters)
        points = np.atleast_2d(np.asarray(points, dtype=float))
        return [self.classify(state, point) for point in points]

    def assign(
        self,
        clusters: List[Cluster],
        x: np.ndarray,
        score: float = 1.0,
    ) -> int:
        """Classify ``x`` and mutate ``clusters`` accordingly.

        Places the point in the winning cluster when it falls inside the
        effective radius, otherwise appends a fresh single-point cluster
        (Algorithm 2 lines 4-6).

        Returns:
            The index of the cluster that received the point.
        """
        state = self.prepare(clusters)
        decision = self.classify(state, x)
        if decision.is_outlier:
            # Algorithm 2 line 5: the point fell outside the winner's
            # effective radius chi2_p(alpha) and seeds a new cluster.
            add_event(
                "cluster_seeded",
                radius_distance=decision.radius_distance,
                radius=state.radius,
                nearest_cluster=decision.cluster_index,
            )
            clusters.append(Cluster(np.asarray(x, dtype=float)[None, :], [score]))
            return len(clusters) - 1
        clusters[decision.cluster_index].add(x, score)
        return decision.cluster_index
