"""Principal component analysis and quadratic forms in the PC basis
(paper Section 4.4).

High-dimensional image descriptors make the sample covariance singular,
so the paper reduces dimensionality with sample principal components and
exploits Theorem 1 (linear-transformation invariance of ``T^2``, ``d^2``
and ``d̂``): computed in the full PC basis the quadratic forms are
unchanged (Equation 17), and in the *truncated* basis they collapse to
cheap diagonal quadratic forms ``Σ (z_xj - z_yj)^2 / l_j``
(Equations 18-19).

:class:`PCA` is a from-scratch eigendecomposition-based implementation
(no sklearn dependency) with the usual fit/transform interface plus the
paper-specific helpers :meth:`PCA.select_components` (retained-variance
rule ``(λ_1 + ... + λ_k) / Σ λ >= 1 - ε`` with ``ε <= 0.15``) and
:func:`t2_in_pc_basis`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "PCA",
    "t2_in_pc_basis",
    "distance_in_pc_basis",
    "discriminant_in_pc_basis",
    "select_dimension_by_variance",
]


class PCA:
    """Sample principal components via eigendecomposition of the covariance.

    Args:
        n_components: number of components to keep; ``None`` keeps all.

    Attributes (after :meth:`fit`):
        mean_: the sample mean that is subtracted before projection.
        components_: ``(k, p)`` matrix whose rows are the eigenvectors
            ``g_(i)`` ordered by decreasing eigenvalue.
        explained_variance_: the eigenvalues ``λ_i`` (variances of the
            principal components).
        explained_variance_ratio_: ``λ_i / Σ λ``.
    """

    def __init__(self, n_components: Optional[int] = None) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError(f"n_components must be at least 1, got {n_components}")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "PCA":
        """Estimate components from an ``(n, p)`` sample matrix."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        n, p = data.shape
        if n < 2:
            raise ValueError(f"PCA needs at least two samples, got {n}")
        if self.n_components is not None and self.n_components > p:
            raise ValueError(
                f"cannot keep {self.n_components} components of {p}-dimensional data"
            )
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        covariance = centered.T @ centered / (n - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        # Stable descending sort: reversing an unstable ascending sort
        # would make tie order platform-dependent, and downstream prefix
        # schedules need a deterministic basis.
        order = np.argsort(-eigenvalues, kind="stable")
        eigenvalues = np.maximum(eigenvalues[order], 0.0)
        eigenvectors = eigenvectors[:, order]
        k = self.n_components if self.n_components is not None else p
        total = float(eigenvalues.sum())
        self.components_ = eigenvectors[:, :k].T
        self.explained_variance_ = eigenvalues[:k]
        self.explained_variance_ratio_ = (
            eigenvalues[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def _require_fitted(self) -> None:
        if self.components_ is None:
            raise RuntimeError("PCA has not been fitted; call fit() first")

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project data into the PC basis: ``z = (x - mean) G_k``."""
        self._require_fitted()
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map PC-space points back to the original space (lossy if k < p)."""
        self._require_fitted()
        projected = np.atleast_2d(np.asarray(projected, dtype=float))
        return projected @ self.components_ + self.mean_

    def select_components(self, retained_variance: float = 0.85) -> int:
        """Smallest ``k`` with cumulative variance ratio >= ``retained_variance``.

        Implements the paper's rule ``(λ_1 + ... + λ_k)/Σλ >= 1 - ε`` with
        ``ε <= 0.15`` (Section 4.4.4).
        """
        self._require_fitted()
        if not 0.0 < retained_variance <= 1.0:
            raise ValueError(
                f"retained_variance must lie in (0, 1], got {retained_variance}"
            )
        cumulative = np.cumsum(self.explained_variance_ratio_)
        indices = np.nonzero(cumulative >= retained_variance - 1e-12)[0]
        if indices.size == 0:
            return len(cumulative)
        return int(indices[0]) + 1

    def truncated(self, k: int) -> "PCA":
        """A copy keeping only the first ``k`` components (no refit needed)."""
        self._require_fitted()
        if not 1 <= k <= self.components_.shape[0]:
            raise ValueError(
                f"k must lie in [1, {self.components_.shape[0]}], got {k}"
            )
        clone = PCA(n_components=k)
        clone.mean_ = self.mean_.copy()
        clone.components_ = self.components_[:k].copy()
        clone.explained_variance_ = self.explained_variance_[:k].copy()
        clone.explained_variance_ratio_ = self.explained_variance_ratio_[:k].copy()
        return clone


def select_dimension_by_variance(data: np.ndarray, epsilon: float = 0.15) -> int:
    """Convenience: fit a full PCA and apply the ``1 - ε`` retention rule."""
    if not 0.0 <= epsilon < 1.0:
        raise ValueError(f"epsilon must lie in [0, 1), got {epsilon}")
    pca = PCA().fit(data)
    return pca.select_components(1.0 - epsilon)


def t2_in_pc_basis(
    mean_x: np.ndarray,
    mean_y: np.ndarray,
    eigenvalues: np.ndarray,
    weight_x: float,
    weight_y: float,
) -> float:
    """Hotelling ``T^2`` as a diagonal quadratic form in the PC basis.

    Implements Equation 18/19: once means are expressed in principal
    components of the pooled covariance (``S_pooled = G L G'``),

        T^2 = C Σ_j (z_xj - z_yj)^2 / λ_j,   C = m_x m_y / (m_x + m_y).

    Args:
        mean_x, mean_y: PC-space mean vectors ``z̄_x``, ``z̄_y``.
        eigenvalues: the eigenvalues ``λ_j`` (or leading ``l_j`` for the
            truncated Equation 19 form).
        weight_x, weight_y: cluster relevance masses.
    """
    if weight_x <= 0 or weight_y <= 0:
        raise ValueError("weights must be strictly positive")
    mean_x = np.asarray(mean_x, dtype=float)
    mean_y = np.asarray(mean_y, dtype=float)
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if mean_x.shape != mean_y.shape or mean_x.shape != eigenvalues.shape:
        raise ValueError(
            "mean_x, mean_y and eigenvalues must share one shape, got "
            f"{mean_x.shape}, {mean_y.shape}, {eigenvalues.shape}"
        )
    if np.any(eigenvalues <= 0):
        raise ValueError("eigenvalues must be strictly positive")
    scale = weight_x * weight_y / (weight_x + weight_y)
    diff = mean_x - mean_y
    return float(scale * np.sum(diff**2 / eigenvalues))


def distance_in_pc_basis(
    z_x: np.ndarray,
    z_center: np.ndarray,
    eigenvalues: np.ndarray,
) -> float:
    """The quadratic distance ``d^2`` as a diagonal form in the PC basis.

    Section 4.4.3's closing remark: "Likewise, we have a simpler form of
    ``d̂_i``, ``d^2`` with principal components" — once points are
    expressed in the principal components of the cluster covariance
    (``S = G L G'``), Equation 1 collapses to
    ``Σ_j (z_xj - z_cj)^2 / λ_j``.
    """
    z_x = np.asarray(z_x, dtype=float)
    z_center = np.asarray(z_center, dtype=float)
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if z_x.shape != z_center.shape or z_x.shape != eigenvalues.shape:
        raise ValueError(
            "z_x, z_center and eigenvalues must share one shape, got "
            f"{z_x.shape}, {z_center.shape}, {eigenvalues.shape}"
        )
    if np.any(eigenvalues <= 0):
        raise ValueError("eigenvalues must be strictly positive")
    diff = z_x - z_center
    return float(np.sum(diff**2 / eigenvalues))


def discriminant_in_pc_basis(
    z_x: np.ndarray,
    z_center: np.ndarray,
    eigenvalues: np.ndarray,
    log_prior: float,
) -> float:
    """The Bayesian discriminant ``d̂_i`` (Equation 10) in the PC basis.

    With the pooled covariance diagonalized to its eigenvalues,
    ``d̂_i(x) = -1/2 Σ_j (z_xj - z_cj)^2 / λ_j + ln(w_i)``.
    """
    return -0.5 * distance_in_pc_basis(z_x, z_center, eigenvalues) + float(log_prior)
