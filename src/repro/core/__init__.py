"""Qcluster core: adaptive classification, cluster merging, disjunctive queries."""

from .classifier import BayesianClassifier, ClassificationDecision, ClassifierState
from .cluster import Cluster, merge_moments
from .config import QclusterConfig
from .covariance import (
    DEFAULT_REGULARIZATION,
    CovarianceScheme,
    DiagonalScheme,
    InverseInfo,
    InverseScheme,
    get_scheme,
)
from .distance import (
    DisjunctiveQuery,
    QueryPoint,
    aggregate_distance,
    disjunctive_distance,
    quadratic_distance,
    quadratic_distance_many,
)
from .kernels import (
    CompiledQuery,
    KernelCache,
    compile_query,
    default_kernel_cache,
    ensure_compiled,
    fingerprint_cluster_state,
    kernels_enabled,
    use_kernels,
)
from .merging import ClusterMerger, MergeRecord, pairwise_merge_test
from .pca import PCA, select_dimension_by_variance, t2_in_pc_basis
from .progressive import (
    ProgressivePlan,
    ProgressiveResult,
    ProgressiveScan,
    ScanStats,
    exact_top_k,
    progressive_enabled,
    progressive_topk,
    use_progressive,
)
from .qcluster import QclusterEngine
from .quality import QualityReport, labelled_classification_error, leave_one_out_error

__all__ = [
    "BayesianClassifier",
    "ClassificationDecision",
    "ClassifierState",
    "Cluster",
    "merge_moments",
    "QclusterConfig",
    "DEFAULT_REGULARIZATION",
    "CovarianceScheme",
    "DiagonalScheme",
    "InverseInfo",
    "InverseScheme",
    "get_scheme",
    "DisjunctiveQuery",
    "QueryPoint",
    "aggregate_distance",
    "disjunctive_distance",
    "quadratic_distance",
    "quadratic_distance_many",
    "CompiledQuery",
    "KernelCache",
    "compile_query",
    "default_kernel_cache",
    "ensure_compiled",
    "fingerprint_cluster_state",
    "kernels_enabled",
    "use_kernels",
    "ClusterMerger",
    "MergeRecord",
    "pairwise_merge_test",
    "ProgressivePlan",
    "ProgressiveResult",
    "ProgressiveScan",
    "ScanStats",
    "exact_top_k",
    "progressive_enabled",
    "progressive_topk",
    "use_progressive",
    "PCA",
    "select_dimension_by_variance",
    "t2_in_pc_basis",
    "QclusterEngine",
    "QualityReport",
    "labelled_classification_error",
    "leave_one_out_error",
]
