"""Vectorized RGB ↔ HSV conversion.

The paper computes color moments in HSV space "because of its
perceptual uniformity of color" (Section 5).  This is the standard
hexcone model: H in [0, 1) (fraction of the full 360° hue circle),
S and V in [0, 1].
"""

from __future__ import annotations

import numpy as np

__all__ = ["rgb_to_hsv", "hsv_to_rgb"]


def rgb_to_hsv(rgb: np.ndarray) -> np.ndarray:
    """Convert ``(..., 3)`` RGB in [0, 1] to HSV in [0, 1].

    Gray pixels (max == min) get hue 0 and saturation 0 by convention.
    """
    rgb = np.asarray(rgb, dtype=float)
    if rgb.shape[-1] != 3:
        raise ValueError(f"last axis must have size 3, got shape {rgb.shape}")
    if rgb.min() < 0.0 or rgb.max() > 1.0:
        raise ValueError("RGB values must lie in [0, 1]")
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    maximum = rgb.max(axis=-1)
    minimum = rgb.min(axis=-1)
    chroma = maximum - minimum

    hue = np.zeros_like(maximum)
    nonzero = chroma > 0
    # Piecewise hue: which channel attains the maximum decides the sector.
    red_max = nonzero & (maximum == r)
    green_max = nonzero & (maximum == g) & ~red_max
    blue_max = nonzero & ~red_max & ~green_max
    safe_chroma = np.where(nonzero, chroma, 1.0)
    hue = np.where(red_max, ((g - b) / safe_chroma) % 6.0, hue)
    hue = np.where(green_max, (b - r) / safe_chroma + 2.0, hue)
    hue = np.where(blue_max, (r - g) / safe_chroma + 4.0, hue)
    hue = hue / 6.0

    saturation = np.where(maximum > 0, chroma / np.where(maximum > 0, maximum, 1.0), 0.0)
    return np.stack([hue, saturation, maximum], axis=-1)


def hsv_to_rgb(hsv: np.ndarray) -> np.ndarray:
    """Convert ``(..., 3)`` HSV in [0, 1] back to RGB in [0, 1]."""
    hsv = np.asarray(hsv, dtype=float)
    if hsv.shape[-1] != 3:
        raise ValueError(f"last axis must have size 3, got shape {hsv.shape}")
    h, s, v = hsv[..., 0] % 1.0, hsv[..., 1], hsv[..., 2]
    if s.min() < 0.0 or s.max() > 1.0 or v.min() < 0.0 or v.max() > 1.0:
        raise ValueError("saturation and value must lie in [0, 1]")
    sector = h * 6.0
    index = np.floor(sector).astype(int) % 6
    fraction = sector - np.floor(sector)
    p = v * (1.0 - s)
    q = v * (1.0 - s * fraction)
    t = v * (1.0 - s * (1.0 - fraction))
    # Stack the six sector layouts and pick per pixel.
    candidates = np.stack(
        [
            np.stack([v, t, p], axis=-1),
            np.stack([q, v, p], axis=-1),
            np.stack([p, v, t], axis=-1),
            np.stack([p, q, v], axis=-1),
            np.stack([t, p, v], axis=-1),
            np.stack([v, p, q], axis=-1),
        ],
        axis=0,
    )
    return np.take_along_axis(candidates, index[None, ..., None], axis=0)[0]
