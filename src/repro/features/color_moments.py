"""HSV color-moment features (paper Section 5).

For each of the three HSV channels the paper extracts the mean, the
standard deviation and the skewness, giving a 9-dimensional raw color
descriptor, then reduces it to 3 dimensions with PCA.  This module
computes the raw 9-dimensional descriptor; the PCA projection lives in
:mod:`repro.features.pipeline` because it must be fitted on the whole
collection.

Skewness follows the "third root of the third central moment" form that
is conventional in the color-moments literature (Stricker & Orengo):
``sign(mu3) * |mu3|^(1/3)`` — keeping the feature on a scale comparable
to the mean and standard deviation.
"""

from __future__ import annotations

import numpy as np

from .hsv import rgb_to_hsv
from .image import Image

__all__ = ["color_moments", "COLOR_MOMENT_NAMES"]

#: Feature names in output order (channel-major).
COLOR_MOMENT_NAMES = tuple(
    f"{channel}_{moment}"
    for channel in ("hue", "saturation", "value")
    for moment in ("mean", "std", "skewness")
)


def _channel_moments(channel: np.ndarray) -> np.ndarray:
    """Mean, standard deviation and cube-root skewness of one channel."""
    mean = float(channel.mean())
    centered = channel - mean
    variance = float(np.mean(centered**2))
    std = variance**0.5
    mu3 = float(np.mean(centered**3))
    skewness = np.sign(mu3) * abs(mu3) ** (1.0 / 3.0)
    return np.array([mean, std, skewness])


def color_moments(image: Image) -> np.ndarray:
    """9-dimensional HSV color-moment descriptor of one image.

    Returns ``[H_mean, H_std, H_skew, S_mean, S_std, S_skew,
    V_mean, V_std, V_skew]``.
    """
    hsv = rgb_to_hsv(image.as_float)
    return np.concatenate(
        [_channel_moments(hsv[..., channel].ravel()) for channel in range(3)]
    )
