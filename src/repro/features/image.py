"""Minimal image representation for the feature substrate.

The paper extracts features from the Corel/Mantan color image
collection.  Our substitute collection is generated procedurally
(:mod:`repro.datasets.synthetic_images`), and this module defines the
image carrier both sides agree on: an ``(h, w, 3)`` uint8 RGB array with
a few convenience accessors.  Keeping it a thin wrapper (rather than a
framework) means every feature extractor works directly on numpy data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = ["Image", "to_gray"]


@dataclass(frozen=True)
class Image:
    """An RGB image with 8-bit channels.

    Attributes:
        pixels: ``(h, w, 3)`` uint8 array.
        label: optional category identifier (ground truth for evaluation).
    """

    pixels: np.ndarray
    label: int = field(default=-1)

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValueError(f"pixels must be (h, w, 3), got shape {pixels.shape}")
        if pixels.dtype != np.uint8:
            if np.issubdtype(pixels.dtype, np.floating):
                if pixels.min() < 0.0 or pixels.max() > 1.0:
                    raise ValueError("float pixels must lie in [0, 1]")
                pixels = (pixels * 255.0 + 0.5).astype(np.uint8)
            else:
                pixels = np.clip(pixels, 0, 255).astype(np.uint8)
            object.__setattr__(self, "pixels", pixels)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(height, width)``."""
        return self.pixels.shape[0], self.pixels.shape[1]

    @property
    def as_float(self) -> np.ndarray:
        """Pixels scaled to ``[0, 1]`` floats (h, w, 3)."""
        return self.pixels.astype(float) / 255.0


def to_gray(pixels: np.ndarray) -> np.ndarray:
    """Luma conversion (ITU-R BT.601) to an ``(h, w)`` float array in [0, 255].

    The co-occurrence texture features of Section 5 are computed on gray
    levels; the paper quotes "gray-level (usually 0-255)".
    """
    pixels = np.asarray(pixels, dtype=float)
    if pixels.ndim != 3 or pixels.shape[2] != 3:
        raise ValueError(f"expected (h, w, 3) pixels, got shape {pixels.shape}")
    return 0.299 * pixels[..., 0] + 0.587 * pixels[..., 1] + 0.114 * pixels[..., 2]
