"""HSV color histograms and histogram dissimilarities.

The paper's own feature set is color moments + GLCM texture, but the
MARS system it builds on (and most CBIR engines of the era) also used
**color histograms** with histogram intersection.  A downstream user of
this library will want them, so they are provided as an additional
feature extractor compatible with :class:`~repro.features.pipeline.
FeaturePipeline` (histograms are just fixed-length vectors).

Binning follows the common HSV quantization: hue is circular and gets
the most bins; saturation and value fewer.  The histogram is L1
normalized so images of different sizes are comparable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .hsv import rgb_to_hsv
from .image import Image

__all__ = [
    "color_histogram",
    "histogram_intersection",
    "histogram_l1",
    "chi2_histogram_distance",
]


def color_histogram(
    image: Image,
    bins: Tuple[int, int, int] = (8, 3, 3),
) -> np.ndarray:
    """Joint HSV histogram, flattened and L1-normalized.

    Args:
        image: the image to describe.
        bins: bin counts for (hue, saturation, value); the default 8x3x3
            gives a 72-dimensional descriptor, a classic configuration.

    Returns:
        Length ``bins[0] * bins[1] * bins[2]`` non-negative vector
        summing to 1.
    """
    if any(b < 1 for b in bins):
        raise ValueError(f"all bin counts must be at least 1, got {bins}")
    hsv = rgb_to_hsv(image.as_float).reshape(-1, 3)
    # Hue is periodic in [0, 1); saturation/value are clamped to [0, 1].
    indices = []
    for channel, n_bins in enumerate(bins):
        values = hsv[:, channel]
        channel_index = np.minimum((values * n_bins).astype(int), n_bins - 1)
        indices.append(channel_index)
    flat = (indices[0] * bins[1] + indices[1]) * bins[2] + indices[2]
    histogram = np.bincount(flat, minlength=bins[0] * bins[1] * bins[2]).astype(float)
    return histogram / histogram.sum()


def _validate_pair(a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"histogram shapes differ: {a.shape} vs {b.shape}")
    if np.any(a < 0) or np.any(b < 0):
        raise ValueError("histograms must be non-negative")
    return a, b


def histogram_intersection(a: np.ndarray, b: np.ndarray) -> float:
    """Histogram-intersection *dissimilarity* ``1 - Σ min(a_i, b_i)``.

    For L1-normalized histograms this lies in [0, 1]; 0 means identical.
    """
    a, b = _validate_pair(a, b)
    return 1.0 - float(np.minimum(a, b).sum())


def histogram_l1(a: np.ndarray, b: np.ndarray) -> float:
    """City-block distance between histograms (= 2x intersection dissim
    for normalized inputs)."""
    a, b = _validate_pair(a, b)
    return float(np.abs(a - b).sum())


def chi2_histogram_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Symmetric chi-square histogram distance
    ``1/2 Σ (a_i - b_i)^2 / (a_i + b_i)`` (empty joint bins contribute 0)."""
    a, b = _validate_pair(a, b)
    total = a + b
    mask = total > 0
    diff = a[mask] - b[mask]
    return 0.5 * float(np.sum(diff**2 / total[mask]))
