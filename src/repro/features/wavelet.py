"""Haar wavelet texture features.

MARS-era CBIR systems commonly paired co-occurrence texture with
**wavelet subband energies**: a 2-D Haar decomposition of the gray
image, with the mean absolute energy (and optionally the standard
deviation) of each detail subband as the descriptor.  This module
implements the transform from scratch (no external wavelet library)
and exposes a :func:`wavelet_features` extractor compatible with
:class:`~repro.features.pipeline.FeaturePipeline`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .image import Image, to_gray

__all__ = ["haar_decompose_2d", "wavelet_features"]


def _haar_step(matrix: np.ndarray, axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """One Haar analysis step along ``axis`` (orthonormal scaling)."""
    if matrix.shape[axis] % 2 != 0:
        # Symmetric-pad odd lengths by repeating the last row/column.
        pad = [(0, 0), (0, 0)]
        pad[axis] = (0, 1)
        matrix = np.pad(matrix, pad, mode="edge")
    moved = np.moveaxis(matrix, axis, 0)
    even = moved[0::2]
    odd = moved[1::2]
    approximation = (even + odd) / np.sqrt(2.0)
    detail = (even - odd) / np.sqrt(2.0)
    return (
        np.moveaxis(approximation, 0, axis),
        np.moveaxis(detail, 0, axis),
    )


def haar_decompose_2d(
    gray: np.ndarray,
    levels: int = 3,
) -> Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]]:
    """Multi-level 2-D Haar decomposition.

    Args:
        gray: ``(h, w)`` image.
        levels: decomposition depth; each level halves both dimensions.

    Returns:
        ``(approximation, details)`` where ``details[k]`` is the level-k
        triple ``(horizontal, vertical, diagonal)`` detail subbands
        (finest level first).

    Raises:
        ValueError: if the image is too small for the requested depth.
    """
    gray = np.asarray(gray, dtype=float)
    if gray.ndim != 2:
        raise ValueError(f"expected a 2-d gray image, got shape {gray.shape}")
    if levels < 1:
        raise ValueError(f"levels must be at least 1, got {levels}")
    if min(gray.shape) < 2**levels:
        raise ValueError(
            f"image of shape {gray.shape} is too small for {levels} levels"
        )
    details: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    approximation = gray
    for _ in range(levels):
        low_rows, high_rows = _haar_step(approximation, axis=0)
        low_low, low_high = _haar_step(low_rows, axis=1)     # A, horizontal detail
        high_low, high_high = _haar_step(high_rows, axis=1)  # vertical, diagonal
        details.append((low_high, high_low, high_high))
        approximation = low_low
    return approximation, details


def wavelet_features(
    image: Image,
    levels: int = 3,
    include_std: bool = True,
) -> np.ndarray:
    """Subband-energy texture descriptor.

    For each of the ``3 * levels`` detail subbands, the mean absolute
    coefficient (energy), plus optionally its standard deviation —
    ``3 * levels * 2`` dimensions by default (18 for 3 levels).
    """
    gray = to_gray(image.pixels.astype(float)) / 255.0
    _, details = haar_decompose_2d(gray, levels)
    values: List[float] = []
    for horizontal, vertical, diagonal in details:
        for band in (horizontal, vertical, diagonal):
            magnitudes = np.abs(band)
            values.append(float(magnitudes.mean()))
            if include_std:
                values.append(float(magnitudes.std()))
    return np.asarray(values)
