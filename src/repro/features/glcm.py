"""Gray-level co-occurrence matrix (GLCM) texture features (paper Section 5).

The paper builds the co-occurrence matrix by counting pixel pairs with
gray levels ``(i, j)`` at a fixed adjacency, then derives a
16-dimensional texture vector "whose elements are energy, inertia,
entropy, homogeneity, etc." and reduces it to 4 dimensions with PCA.

This module implements the full construction:

* quantization of gray levels (the classic trick to keep the matrix
  tractable — 256 levels would be 65,536 cells per offset),
* symmetric, normalized co-occurrence accumulation over one or more
  displacement offsets, and
* the 16 Haralick-style descriptors listed in :data:`TEXTURE_FEATURE_NAMES`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .image import Image, to_gray

__all__ = [
    "quantize_gray",
    "cooccurrence_matrix",
    "texture_features",
    "TEXTURE_FEATURE_NAMES",
    "DEFAULT_OFFSETS",
]

#: Default displacement offsets (distance 1 in 4 directions); aggregating
#: several directions gives approximate rotation invariance.
DEFAULT_OFFSETS: Tuple[Tuple[int, int], ...] = ((0, 1), (1, 0), (1, 1), (1, -1))

#: The 16 texture descriptors, in output order.
TEXTURE_FEATURE_NAMES = (
    "energy",
    "inertia",            # a.k.a. contrast
    "entropy",
    "homogeneity",        # inverse difference moment
    "correlation",
    "variance",
    "sum_average",
    "sum_variance",
    "sum_entropy",
    "difference_average",
    "difference_variance",
    "difference_entropy",
    "max_probability",
    "dissimilarity",
    "cluster_shade",
    "cluster_prominence",
)

_LOG_EPS = 1e-12


def quantize_gray(gray: np.ndarray, levels: int = 16) -> np.ndarray:
    """Quantize a [0, 255] gray image into ``levels`` integer bins."""
    if levels < 2:
        raise ValueError(f"levels must be at least 2, got {levels}")
    gray = np.asarray(gray, dtype=float)
    clipped = np.clip(gray, 0.0, 255.0)
    quantized = np.floor(clipped * levels / 256.0).astype(int)
    return np.minimum(quantized, levels - 1)


def cooccurrence_matrix(
    quantized: np.ndarray,
    offsets: Sequence[Tuple[int, int]] = DEFAULT_OFFSETS,
    levels: int = 16,
    symmetric: bool = True,
) -> np.ndarray:
    """Normalized gray-level co-occurrence matrix.

    Args:
        quantized: ``(h, w)`` integer image with values in ``[0, levels)``.
        offsets: displacement vectors ``(dy, dx)`` to accumulate over.
        levels: number of gray levels.
        symmetric: also count each pair in the reverse direction, making
            the matrix symmetric (the standard Haralick convention).

    Returns:
        ``(levels, levels)`` matrix summing to 1.
    """
    quantized = np.asarray(quantized)
    if quantized.ndim != 2:
        raise ValueError(f"expected a 2-d quantized image, got shape {quantized.shape}")
    if quantized.min() < 0 or quantized.max() >= levels:
        raise ValueError("quantized values must lie in [0, levels)")
    matrix = np.zeros((levels, levels), dtype=float)
    h, w = quantized.shape
    for dy, dx in offsets:
        if abs(dy) >= h or abs(dx) >= w:
            continue
        # Slices selecting the anchor and neighbour pixel for this offset.
        y0, y1 = max(0, -dy), min(h, h - dy)
        x0, x1 = max(0, -dx), min(w, w - dx)
        anchors = quantized[y0:y1, x0:x1].ravel()
        neighbours = quantized[y0 + dy : y1 + dy, x0 + dx : x1 + dx].ravel()
        np.add.at(matrix, (anchors, neighbours), 1.0)
        if symmetric:
            np.add.at(matrix, (neighbours, anchors), 1.0)
    total = matrix.sum()
    if total == 0:
        raise ValueError("no valid pixel pairs for the given offsets")
    return matrix / total


def texture_features(
    image: Image,
    levels: int = 16,
    offsets: Sequence[Tuple[int, int]] = DEFAULT_OFFSETS,
) -> np.ndarray:
    """16-dimensional GLCM texture descriptor of one image.

    Each element is a weighted sum over the co-occurrence matrix, as the
    paper describes ("weighting each of the co-occurrence matrix elements
    and then summing these weighted values").
    """
    gray = to_gray(image.pixels.astype(float))
    quantized = quantize_gray(gray, levels)
    matrix = cooccurrence_matrix(quantized, offsets, levels)

    indices = np.arange(levels, dtype=float)
    i_grid, j_grid = np.meshgrid(indices, indices, indexing="ij")
    diff = i_grid - j_grid
    total = i_grid + j_grid

    # Marginal statistics.
    p_i = matrix.sum(axis=1)
    mean_i = float(np.sum(indices * p_i))
    var_i = float(np.sum((indices - mean_i) ** 2 * p_i))

    # Sum (i + j) and difference |i - j| distributions.
    sum_values = np.arange(2 * levels - 1, dtype=float)
    p_sum = np.zeros(2 * levels - 1)
    np.add.at(p_sum, (i_grid + j_grid).astype(int).ravel(), matrix.ravel())
    diff_values = np.arange(levels, dtype=float)
    p_diff = np.zeros(levels)
    np.add.at(p_diff, np.abs(diff).astype(int).ravel(), matrix.ravel())

    energy = float(np.sum(matrix**2))
    inertia = float(np.sum(diff**2 * matrix))
    entropy = float(-np.sum(matrix * np.log(matrix + _LOG_EPS)))
    homogeneity = float(np.sum(matrix / (1.0 + diff**2)))
    if var_i > 0:
        correlation = float(np.sum((i_grid - mean_i) * (j_grid - mean_i) * matrix) / var_i)
    else:
        correlation = 0.0
    variance = var_i
    sum_average = float(np.sum(sum_values * p_sum))
    sum_variance = float(np.sum((sum_values - sum_average) ** 2 * p_sum))
    sum_entropy = float(-np.sum(p_sum * np.log(p_sum + _LOG_EPS)))
    difference_average = float(np.sum(diff_values * p_diff))
    difference_variance = float(np.sum((diff_values - difference_average) ** 2 * p_diff))
    difference_entropy = float(-np.sum(p_diff * np.log(p_diff + _LOG_EPS)))
    max_probability = float(matrix.max())
    dissimilarity = float(np.sum(np.abs(diff) * matrix))
    cluster_shade = float(np.sum((total - 2.0 * mean_i) ** 3 * matrix))
    cluster_prominence = float(np.sum((total - 2.0 * mean_i) ** 4 * matrix))

    return np.array(
        [
            energy,
            inertia,
            entropy,
            homogeneity,
            correlation,
            variance,
            sum_average,
            sum_variance,
            sum_entropy,
            difference_average,
            difference_variance,
            difference_entropy,
            max_probability,
            dissimilarity,
            cluster_shade,
            cluster_prominence,
        ]
    )


