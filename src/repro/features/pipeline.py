"""Collection-level feature extraction pipelines (paper Section 5).

The paper's feature setup:

* **color**: 9 HSV color moments per image, PCA-reduced to **3** dims;
* **texture**: 16 co-occurrence descriptors per image, PCA-reduced to
  **4** dims.

PCA must be fitted on the whole collection, so extraction is a two-step
affair wrapped in :class:`FeaturePipeline`: ``fit`` on the collection,
then ``transform`` any image (including unseen query images) into the
reduced space.  Raw descriptors are standardized (zero mean, unit
variance per dimension) before PCA so that descriptors with wildly
different scales (e.g. cluster prominence vs energy) do not dominate
the principal components.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from ..core.pca import PCA
from .color_moments import color_moments
from .glcm import texture_features
from .histogram import color_histogram
from .image import Image
from .wavelet import wavelet_features

__all__ = [
    "FeaturePipeline",
    "color_pipeline",
    "texture_pipeline",
    "histogram_pipeline",
    "wavelet_pipeline",
    "extract_matrix",
    "combine_features",
]


def extract_matrix(
    images: Iterable[Image],
    extractor: Callable[[Image], np.ndarray],
) -> np.ndarray:
    """Stack one descriptor per image into an ``(n, d)`` matrix."""
    rows: List[np.ndarray] = [extractor(image) for image in images]
    if not rows:
        raise ValueError("no images to extract features from")
    return np.stack(rows)


class FeaturePipeline:
    """Descriptor extraction → standardization → PCA reduction.

    Args:
        extractor: maps an :class:`Image` to a raw descriptor vector.
        n_components: output dimensionality (the paper uses 3 for color
            and 4 for texture).
        standardize: z-score raw descriptors before PCA.

    After :meth:`fit`, :meth:`transform` maps images (or precomputed raw
    descriptor matrices via :meth:`transform_raw`) into the reduced
    feature space that retrieval operates in.
    """

    def __init__(
        self,
        extractor: Callable[[Image], np.ndarray],
        n_components: int,
        standardize: bool = True,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be at least 1, got {n_components}")
        self.extractor = extractor
        self.n_components = n_components
        self.standardize = standardize
        self._pca: Optional[PCA] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def fit(self, images: Sequence[Image]) -> np.ndarray:
        """Fit on a collection and return its ``(n, n_components)`` features."""
        raw = extract_matrix(images, self.extractor)
        if raw.shape[1] < self.n_components:
            raise ValueError(
                f"raw descriptors have {raw.shape[1]} dims, cannot keep "
                f"{self.n_components}"
            )
        if self.standardize:
            self._mean = raw.mean(axis=0)
            std = raw.std(axis=0)
            self._std = np.where(std > 0, std, 1.0)
            raw = (raw - self._mean) / self._std
        self._pca = PCA(n_components=self.n_components).fit(raw)
        return self._pca.transform(raw)

    def _require_fitted(self) -> None:
        if self._pca is None:
            raise RuntimeError("pipeline has not been fitted; call fit() first")

    def transform_raw(self, raw: np.ndarray) -> np.ndarray:
        """Project precomputed raw descriptors into the reduced space."""
        self._require_fitted()
        raw = np.atleast_2d(np.asarray(raw, dtype=float))
        if self.standardize:
            raw = (raw - self._mean) / self._std
        return self._pca.transform(raw)

    def transform(self, images: Sequence[Image]) -> np.ndarray:
        """Extract + project features for images unseen at fit time."""
        raw = extract_matrix(images, self.extractor)
        return self.transform_raw(raw)

    def transform_one(self, image: Image) -> np.ndarray:
        """Reduced feature vector of a single image."""
        return self.transform([image])[0]

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        """Variance ratio captured by each retained component."""
        self._require_fitted()
        return self._pca.explained_variance_ratio_.copy()


def color_pipeline(n_components: int = 3) -> FeaturePipeline:
    """The paper's color feature: HSV moments PCA-reduced to 3 dims."""
    return FeaturePipeline(color_moments, n_components)


def texture_pipeline(n_components: int = 4, levels: int = 16) -> FeaturePipeline:
    """The paper's texture feature: 16 GLCM descriptors reduced to 4 dims."""

    def extractor(image: Image) -> np.ndarray:
        return texture_features(image, levels=levels)

    return FeaturePipeline(extractor, n_components)


def histogram_pipeline(
    n_components: int = 8,
    bins=(8, 3, 3),
) -> FeaturePipeline:
    """MARS-style HSV color histogram, PCA-reduced.

    Not one of the paper's two features, but part of any practical CBIR
    feature set; the 72-bin joint histogram is reduced like the others.
    """

    def extractor(image: Image) -> np.ndarray:
        return color_histogram(image, bins=bins)

    return FeaturePipeline(extractor, n_components)


def wavelet_pipeline(
    n_components: int = 4,
    levels: int = 3,
) -> FeaturePipeline:
    """Haar subband-energy texture, PCA-reduced (MARS's other texture)."""

    def extractor(image: Image) -> np.ndarray:
        return wavelet_features(image, levels=levels)

    return FeaturePipeline(extractor, n_components)


def combine_features(*feature_matrices: np.ndarray) -> np.ndarray:
    """Concatenate per-image feature matrices with per-block scaling.

    Each block is divided by its mean row norm so no single feature
    dominates the concatenated Euclidean geometry — the standard trick
    when mixing color and texture descriptors in one space.
    """
    if not feature_matrices:
        raise ValueError("no feature matrices to combine")
    blocks = []
    n_rows = None
    for matrix in feature_matrices:
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        if n_rows is None:
            n_rows = matrix.shape[0]
        elif matrix.shape[0] != n_rows:
            raise ValueError(
                f"feature matrices disagree on row count: {matrix.shape[0]} vs {n_rows}"
            )
        scale = float(np.linalg.norm(matrix, axis=1).mean())
        blocks.append(matrix / scale if scale > 0 else matrix)
    return np.hstack(blocks)
