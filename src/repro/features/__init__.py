"""Image feature substrate: HSV color moments and GLCM texture."""

from .color_moments import COLOR_MOMENT_NAMES, color_moments
from .glcm import (
    DEFAULT_OFFSETS,
    TEXTURE_FEATURE_NAMES,
    cooccurrence_matrix,
    quantize_gray,
    texture_features,
)
from .histogram import (
    chi2_histogram_distance,
    color_histogram,
    histogram_intersection,
    histogram_l1,
)
from .hsv import hsv_to_rgb, rgb_to_hsv
from .image import Image, to_gray
from .pipeline import (
    FeaturePipeline,
    color_pipeline,
    combine_features,
    extract_matrix,
    histogram_pipeline,
    texture_pipeline,
    wavelet_pipeline,
)
from .wavelet import haar_decompose_2d, wavelet_features

__all__ = [
    "COLOR_MOMENT_NAMES",
    "color_moments",
    "DEFAULT_OFFSETS",
    "TEXTURE_FEATURE_NAMES",
    "cooccurrence_matrix",
    "quantize_gray",
    "texture_features",
    "hsv_to_rgb",
    "rgb_to_hsv",
    "Image",
    "to_gray",
    "FeaturePipeline",
    "color_pipeline",
    "combine_features",
    "extract_matrix",
    "histogram_pipeline",
    "texture_pipeline",
    "wavelet_pipeline",
    "chi2_histogram_distance",
    "color_histogram",
    "histogram_intersection",
    "histogram_l1",
    "haar_decompose_2d",
    "wavelet_features",
]
