"""Structured tracing: nested timed spans with algorithmic events.

A production retrieval service is operated through traces, not print
statements: when a feedback round is slow, the operator needs to see
*which* stage (classify, merge, compile, scan, refine) took the time,
and *what* the adaptive clustering decided — a new cluster seeded
outside the chi-square radius (Eq. 6), a Hotelling ``T^2`` merge
accepted or rejected (Eqs. 14-16), a kernel cache hit, a progressive
scan pruning 99% of its candidates.

This module is the zero-dependency core of that story:

* :class:`Span` — one timed stage, carrying attributes, attached
  :class:`SpanEvent` records, and child spans; spans are context
  managers and nest through a :mod:`contextvars` stack, so instrumented
  code never passes span objects around.
* :class:`Tracer` — thread-safe producer of spans; completed *root*
  spans ("traces") are kept in a bounded ring, and per-span-name /
  per-event-name aggregates are maintained for metrics exposition.
  A ``sample_every`` knob traces only every N-th root span.
* :class:`NullTracer` / :data:`NULL_TRACER` — the no-op default: every
  instrumented hot path stays active in production code but costs one
  context-variable read and a no-op method call when tracing is off
  (measured well under the 2% budget in
  ``benchmarks/test_obs_overhead.py``).
* :func:`activate` / :func:`current_tracer` / :func:`add_event` — the
  ambient-tracer plumbing: the service activates its tracer for the
  duration of a request; library code asks for the current tracer (or
  appends an event to the current span) without any API changes.

Context propagation uses :mod:`contextvars`, so a service can ship the
ambient tracer *and* the open span into worker threads with
``contextvars.copy_context().run(...)`` — per-shard scan events then
land under the request's scan span even though they fire on pool
threads (span mutation is lock-protected).

Two distributed extensions (see :mod:`repro.obs.distributed`):

* a root span opened under an ambient
  :class:`~repro.obs.distributed.TraceContext` *adopts* it — same
  ``trace_id``, the remote span as ``parent_id``, and the propagated
  sampling decision in place of the local ``sample_every`` counter —
  so an HTTP request and its worker-process scans share one trace;
* :meth:`Span.add_foreign` grafts span *dicts* recorded in another
  process (shipped back on the worker pool's result round-trip) into
  the local tree, and :class:`TailSamplingPolicy` defers the
  keep-or-drop decision to the moment the root finishes — slow,
  degraded, faulted or shed traces are always retained, the boring
  rest probabilistically.
"""

from __future__ import annotations

import contextvars
import itertools
import random
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional

from .distributed import current_trace_context

__all__ = [
    "SpanEvent",
    "Span",
    "Tracer",
    "TailSamplingPolicy",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "current_tracer",
    "current_span",
    "activate",
    "add_event",
]


class SpanEvent:
    """One algorithmic event attached to a span.

    Attributes:
        name: event type (``"cluster_seeded"``, ``"t2_merge"``,
            ``"kernel_cache"``, ``"progressive_scan"``, ...).
        offset_s: seconds since the owning span started.
        fields: the event's payload (statistics, decisions, counts).
    """

    __slots__ = ("name", "offset_s", "fields")

    def __init__(self, name: str, offset_s: float, fields: Dict[str, Any]) -> None:
        self.name = name
        self.offset_s = offset_s
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the export schema)."""
        return {
            "name": self.name,
            "offset_s": self.offset_s,
            "fields": dict(self.fields),
        }


class Span:
    """One timed, attributed stage of a trace.

    Spans are context managers::

        with tracer.span("classify", points=12) as span:
            ...
            span.event("cluster_seeded", radius_distance=d, radius=r)

    Entering pushes the span onto the ambient context (children created
    inside the ``with`` body attach here, even from worker threads that
    inherited the context); exiting records the duration and hands root
    spans back to the tracer.  Mutation (events, attributes, children)
    is lock-protected so concurrent shard workers can annotate one scan
    span safely.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "duration_s",
        "attributes",
        "events",
        "children",
        "foreign",
        "_root",
        "_tracer",
        "_started",
        "_token",
        "_lock",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent: Optional["Span"],
        attributes: Dict[str, Any],
        remote_parent_id: Optional[str] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        # A local root adopted from a propagated TraceContext keeps the
        # remote span as its parent link — it is still *this* tracer's
        # root (there is no local parent to attach to).
        self.parent_id = parent.span_id if parent is not None else remote_parent_id
        self.start_time = time.time()
        self.duration_s = 0.0
        self.attributes = attributes
        self.events: List[SpanEvent] = []
        self.children: List["Span"] = []
        #: Pre-built span dicts grafted from another process (worker
        #: scans shipped back on the pool's result round-trip).
        self.foreign: List[Dict[str, Any]] = []
        self._root = parent is None
        self._tracer = tracer
        self._started: Optional[float] = None
        self._token: Optional[contextvars.Token] = None
        self._lock = threading.Lock()

    @property
    def is_root(self) -> bool:
        """Whether this span is the root of its local trace.

        Not derivable from ``parent_id``: a root adopted from a
        propagated context carries the *remote* parent's id while still
        being the top of everything this process recorded.
        """
        return self._root

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        with self._lock:
            self.attributes[key] = value

    def event(self, name: str, **fields: Any) -> None:
        """Attach one algorithmic event, timestamped relative to the span."""
        started = self._started
        offset = self._tracer._clock() - started if started is not None else 0.0
        with self._lock:
            self.events.append(SpanEvent(name, offset, fields))

    def _add_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    def add_foreign(self, children: Iterable[Dict[str, Any]]) -> None:
        """Graft remote span dicts (``to_dict`` form) under this span.

        The stitching half of cross-process propagation: a worker
        records spans against the propagated context and returns their
        dicts piggybacked on its result; the coordinator grafts them
        here.  Each grafted root is re-parented onto this span so JSONL
        flatten/rebuild round-trips reconstruct one connected tree.
        """
        rewritten = []
        for child in children:
            node = dict(child)
            node["parent_id"] = self.span_id
            rewritten.append(node)
        with self._lock:
            self.foreign.extend(rewritten)

    def __enter__(self) -> "Span":
        self._started = self._tracer._clock()
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.duration_s = self._tracer._clock() - self._started
        if exc_type is not None and "error" not in self.attributes:
            # An escaping exception marks the span, so tail sampling
            # classifies the whole trace as interesting (kept).
            self.attributes["error"] = (
                repr(exc) if exc is not None else exc_type.__name__
            )
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self._tracer._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-dict form — the single source for every exporter."""
        with self._lock:
            return {
                "name": self.name,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start_time": self.start_time,
                "duration_s": self.duration_s,
                "attributes": dict(self.attributes),
                "events": [event.to_dict() for event in self.events],
                "children": [child.to_dict() for child in self.children]
                + [dict(node) for node in self.foreign],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, events={len(self.events)}, "
            f"children={len(self.children)}, duration_s={self.duration_s:.6f})"
        )


class _NullSpan:
    """The do-nothing span: absorbs every call, nests for free."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The singleton no-op span (also marks "inside an unsampled trace").
NULL_SPAN = _NullSpan()

#: The ambient open span.  ``None`` means "no trace in progress";
#: :data:`NULL_SPAN` means "inside an unsampled or untraced region".
_CURRENT_SPAN: "contextvars.ContextVar[Optional[object]]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)


class NullTracer:
    """The no-op default tracer: every span is :data:`NULL_SPAN`.

    Instrumented code runs identically against it — the whole tracing
    layer then costs one attribute lookup and an empty context-manager
    round trip per *stage* (never per database row).
    """

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """A no-op span (ignores all arguments)."""
        return NULL_SPAN

    def traces(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """Always empty."""
        return []

    def aggregates(self) -> Dict[str, Dict[str, Any]]:
        """Always empty."""
        return {"spans": {}, "events": {}}

    def event_count(self, name: str) -> int:
        """Always ``0`` — nothing is recorded."""
        return 0

    @property
    def enabled(self) -> bool:
        """``False`` — this tracer records nothing."""
        return False


#: Process-wide no-op singleton used wherever no tracer was supplied.
NULL_TRACER = NullTracer()


class Tracer:
    """Thread-safe producer of nested, timed spans.

    Args:
        max_traces: completed root spans kept in memory (ring buffer —
            old traces age out, like the metrics reservoirs).
        sample_every: trace only every N-th root span; the others run
            against :data:`NULL_SPAN` (children included) and cost the
            same as the disabled path.  ``1`` traces everything.
        clock: monotonic time source (injectable for tests).
        tail_sampling: optional :class:`TailSamplingPolicy` — the
            keep-or-drop decision for each finished *root* moves from
            span open (head sampling) to span close, so slow, degraded,
            faulted or shed traces are always retained.  ``None``
            (default) keeps every recorded root, as before.
        id_prefix: prefix for generated span ids.  Worker-process
            tracers set e.g. ``"w1a2b."`` so piggybacked span ids can
            never collide with the coordinator's within one stitched
            trace.
    """

    def __init__(
        self,
        max_traces: int = 64,
        sample_every: int = 1,
        clock=time.monotonic,
        tail_sampling: Optional["TailSamplingPolicy"] = None,
        id_prefix: str = "",
    ) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be at least 1, got {max_traces}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be at least 1, got {sample_every}")
        self.max_traces = max_traces
        self.sample_every = sample_every
        self.tail_sampling = tail_sampling
        self._id_prefix = id_prefix
        self._clock = clock
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._roots_started = 0
        self._traces: Deque[Span] = deque(maxlen=max_traces)
        self._span_stats: Dict[str, Dict[str, float]] = {}
        self._event_counts: Dict[str, int] = {}
        self._tail_counts: Dict[str, int] = {
            "kept_slow": 0,
            "kept_interesting": 0,
            "kept_random": 0,
            "dropped": 0,
        }

    @property
    def enabled(self) -> bool:
        """``True`` — this tracer records (sampled) traces."""
        return True

    # ------------------------------------------------------------------
    # Span production
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> object:
        """Open a span as a child of the ambient span (or a new root).

        Returns a context manager: a real :class:`Span` when the trace
        is sampled, :data:`NULL_SPAN` otherwise.
        """
        parent = _CURRENT_SPAN.get()
        if parent is NULL_SPAN:
            # Inside an unsampled trace: stay dark the whole way down.
            return NULL_SPAN
        remote = None
        with self._lock:
            if parent is None:
                remote = current_trace_context()
                if remote is not None:
                    # Adopted root: the propagated sampling decision
                    # replaces the local head-sampling counter — a
                    # caller that sampled the trace out keeps it dark
                    # end to end, one that sampled it in always wins.
                    if not remote.sampled:
                        return _UnsampledRoot()
                    trace_id = remote.trace_id
                else:
                    self._roots_started += 1
                    if (self._roots_started - 1) % self.sample_every != 0:
                        # Unsampled root: mark the context so descendants
                        # (including ones on copied worker contexts) skip too.
                        return _UnsampledRoot()
                    trace_id = f"{self._id_prefix}t{next(self._ids):08x}"
            else:
                trace_id = parent.trace_id  # type: ignore[union-attr]
            span_id = f"{self._id_prefix}s{next(self._ids):08x}"
        return Span(
            self,
            name,
            trace_id,
            span_id,
            parent,
            dict(attributes),
            remote_parent_id=remote.span_id if remote is not None else None,
        )

    def _finish(self, span: Span) -> None:
        """Record a completed span (called from ``Span.__exit__``)."""
        parent = _CURRENT_SPAN.get()
        with self._lock:
            self._record_stats(span.name, span.duration_s)
            for event in span.events:
                self._event_counts[event.name] = (
                    self._event_counts.get(event.name, 0) + 1
                )
            # Grafted worker spans never pass through _finish locally —
            # fold their stats in when their host span completes.
            for node in span.foreign:
                self._record_foreign(node)
        if span.is_root:
            with self._lock:
                if self.tail_sampling is not None:
                    verdict = self.tail_sampling.decide(span)
                    if verdict == "drop":
                        self._tail_counts["dropped"] += 1
                        return
                    self._tail_counts[f"kept_{verdict}"] += 1
                self._traces.append(span)
        elif isinstance(parent, Span):
            parent._add_child(span)

    def _record_stats(self, name: str, duration_s: float) -> None:
        """Fold one span observation into aggregates (lock held)."""
        stats = self._span_stats.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        stats["count"] += 1
        stats["total_s"] += duration_s
        if duration_s > stats["max_s"]:
            stats["max_s"] = duration_s

    def _record_foreign(self, node: Dict[str, Any]) -> None:
        """Recursively count a grafted span dict (lock held)."""
        self._record_stats(str(node.get("name", "?")), float(node.get("duration_s", 0.0)))
        for event in node.get("events", ()):
            name = str(event.get("name", "?"))
            self._event_counts[name] = self._event_counts.get(name, 0) + 1
        for child in node.get("children", ()):
            self._record_foreign(child)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def traces(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent completed traces, oldest first, as dicts.

        Args:
            last: keep only the trailing ``last`` traces (default: all
                retained).
        """
        with self._lock:
            roots = list(self._traces)
        if last is not None:
            if last < 0:
                raise ValueError(f"last must be non-negative, got {last}")
            roots = roots[len(roots) - min(last, len(roots)):]
        return [root.to_dict() for root in roots]

    def aggregates(self) -> Dict[str, Dict[str, Any]]:
        """Per-span-name timing stats and per-event-name counts.

        ``{"spans": {name: {count, total_s, max_s}}, "events": {name: n}}``
        — the tracer-side input of the Prometheus exposition.  When a
        tail-sampling policy is configured a ``"tail"`` section with the
        keep/drop decision counts is included as well.
        """
        with self._lock:
            result: Dict[str, Dict[str, Any]] = {
                "spans": {name: dict(stats) for name, stats in self._span_stats.items()},
                "events": dict(self._event_counts),
            }
            if self.tail_sampling is not None:
                result["tail"] = dict(self._tail_counts)
            return result

    def event_count(self, name: str) -> int:
        """How many ``name`` events completed spans have recorded.

        Chaos tests use this to assert injected-fault and recovery
        events (``fault_injected``, ``retry``, ``hedge``, ...) actually
        surfaced in the traces.
        """
        with self._lock:
            return self._event_counts.get(name, 0)

    def clear(self) -> None:
        """Drop retained traces and aggregates (sampling counter kept)."""
        with self._lock:
            self._traces.clear()
            self._span_stats.clear()
            self._event_counts.clear()


class TailSamplingPolicy:
    """Keep-or-drop decided when the *root* span finishes.

    Head sampling (``sample_every``) decides before the request runs and
    therefore drops slow and faulted traces exactly as often as boring
    ones.  A tail policy defers the decision to request end:

    * **slow** — root duration exceeded ``slow_threshold_s``: kept.
    * **interesting** — the trace recorded a fault, retry, hedge, shard
      failure, degradation, shed, or an ``error`` attribute anywhere in
      the tree (grafted worker spans included): kept.
    * **random** — a deterministic ``keep_probability`` coin for the
      boring rest (seeded, so CI runs are reproducible).
    * **drop** — everything else; the span still counted toward
      aggregates, only the retained-trace ring skips it.

    Args:
        slow_threshold_s: root durations above this are always kept.
        keep_probability: chance a boring trace is kept anyway
            (``0.0`` → only slow/interesting traces survive).
        seed: seed for the keep coin.
    """

    #: Event names that mark a trace worth keeping unconditionally.
    _INTERESTING_EVENTS = frozenset(
        {
            "fault_injected",
            "retry",
            "hedge",
            "shard_failed",
            "result_quality",
            "batch_shed",
            "error",
        }
    )

    def __init__(
        self,
        slow_threshold_s: float = 0.25,
        keep_probability: float = 0.1,
        seed: int = 0,
    ) -> None:
        if slow_threshold_s < 0:
            raise ValueError(
                f"slow_threshold_s must be non-negative, got {slow_threshold_s}"
            )
        if not 0.0 <= keep_probability <= 1.0:
            raise ValueError(
                f"keep_probability must be in [0, 1], got {keep_probability}"
            )
        self.slow_threshold_s = slow_threshold_s
        self.keep_probability = keep_probability
        self._random = random.Random(seed)

    def decide(self, root: Span) -> str:
        """``"slow"`` | ``"interesting"`` | ``"random"`` | ``"drop"``."""
        if root.duration_s > self.slow_threshold_s:
            return "slow"
        if self._interesting(root):
            return "interesting"
        if self.keep_probability > 0 and self._random.random() < self.keep_probability:
            return "random"
        return "drop"

    def _interesting(self, span: Span) -> bool:
        """Whether any span in the tree marks the trace worth keeping."""
        if span.attributes.get("error"):
            return True
        for event in span.events:
            if event.name in self._INTERESTING_EVENTS:
                return True
        for child in span.children:
            if self._interesting(child):
                return True
        for node in span.foreign:
            if self._interesting_dict(node):
                return True
        return False

    def _interesting_dict(self, node: Dict[str, Any]) -> bool:
        """`_interesting` over a grafted (plain-dict) worker span."""
        if dict(node.get("attributes") or {}).get("error"):
            return True
        for event in node.get("events", ()):
            if event.get("name") in self._INTERESTING_EVENTS:
                return True
        for child in node.get("children", ()):
            if self._interesting_dict(child):
                return True
        return False


class _UnsampledRoot:
    """Context manager marking a whole trace as unsampled.

    Sets the ambient span to :data:`NULL_SPAN` for the duration, so
    descendant ``span()`` calls (and :func:`add_event`) short-circuit.
    """

    __slots__ = ("_token",)

    def set(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_UnsampledRoot":
        self._token = _CURRENT_SPAN.set(NULL_SPAN)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _CURRENT_SPAN.reset(self._token)


# ----------------------------------------------------------------------
# Ambient plumbing
# ----------------------------------------------------------------------

_ACTIVE_TRACER: "contextvars.ContextVar[object]" = contextvars.ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)


def current_tracer():
    """The ambient tracer (:data:`NULL_TRACER` unless one is activated)."""
    return _ACTIVE_TRACER.get()


def current_span() -> Optional[object]:
    """The ambient open span, or ``None`` outside any trace."""
    span = _CURRENT_SPAN.get()
    return None if span is None or span is NULL_SPAN else span


@contextmanager
def activate(tracer) -> Iterator[None]:
    """Make ``tracer`` the ambient tracer for the ``with`` body.

    The binding is a context variable: it follows
    ``contextvars.copy_context()`` into worker threads and never leaks
    across concurrent requests.
    """
    token = _ACTIVE_TRACER.set(tracer if tracer is not None else NULL_TRACER)
    try:
        yield
    finally:
        _ACTIVE_TRACER.reset(token)


def add_event(name: str, **fields: Any) -> None:
    """Attach an event to the ambient span (no-op outside a trace).

    The hook library code uses to report algorithmic decisions without
    holding a span reference; when no trace is active this is one
    context-variable read and a ``None`` check.
    """
    span = _CURRENT_SPAN.get()
    if span is None or span is NULL_SPAN:
        return
    span.event(name, **fields)  # type: ignore[union-attr]
