"""Structured tracing: nested timed spans with algorithmic events.

A production retrieval service is operated through traces, not print
statements: when a feedback round is slow, the operator needs to see
*which* stage (classify, merge, compile, scan, refine) took the time,
and *what* the adaptive clustering decided — a new cluster seeded
outside the chi-square radius (Eq. 6), a Hotelling ``T^2`` merge
accepted or rejected (Eqs. 14-16), a kernel cache hit, a progressive
scan pruning 99% of its candidates.

This module is the zero-dependency core of that story:

* :class:`Span` — one timed stage, carrying attributes, attached
  :class:`SpanEvent` records, and child spans; spans are context
  managers and nest through a :mod:`contextvars` stack, so instrumented
  code never passes span objects around.
* :class:`Tracer` — thread-safe producer of spans; completed *root*
  spans ("traces") are kept in a bounded ring, and per-span-name /
  per-event-name aggregates are maintained for metrics exposition.
  A ``sample_every`` knob traces only every N-th root span.
* :class:`NullTracer` / :data:`NULL_TRACER` — the no-op default: every
  instrumented hot path stays active in production code but costs one
  context-variable read and a no-op method call when tracing is off
  (measured well under the 2% budget in
  ``benchmarks/test_obs_overhead.py``).
* :func:`activate` / :func:`current_tracer` / :func:`add_event` — the
  ambient-tracer plumbing: the service activates its tracer for the
  duration of a request; library code asks for the current tracer (or
  appends an event to the current span) without any API changes.

Context propagation uses :mod:`contextvars`, so a service can ship the
ambient tracer *and* the open span into worker threads with
``contextvars.copy_context().run(...)`` — per-shard scan events then
land under the request's scan span even though they fire on pool
threads (span mutation is lock-protected).
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "SpanEvent",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "current_tracer",
    "current_span",
    "activate",
    "add_event",
]


class SpanEvent:
    """One algorithmic event attached to a span.

    Attributes:
        name: event type (``"cluster_seeded"``, ``"t2_merge"``,
            ``"kernel_cache"``, ``"progressive_scan"``, ...).
        offset_s: seconds since the owning span started.
        fields: the event's payload (statistics, decisions, counts).
    """

    __slots__ = ("name", "offset_s", "fields")

    def __init__(self, name: str, offset_s: float, fields: Dict[str, Any]) -> None:
        self.name = name
        self.offset_s = offset_s
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the export schema)."""
        return {
            "name": self.name,
            "offset_s": self.offset_s,
            "fields": dict(self.fields),
        }


class Span:
    """One timed, attributed stage of a trace.

    Spans are context managers::

        with tracer.span("classify", points=12) as span:
            ...
            span.event("cluster_seeded", radius_distance=d, radius=r)

    Entering pushes the span onto the ambient context (children created
    inside the ``with`` body attach here, even from worker threads that
    inherited the context); exiting records the duration and hands root
    spans back to the tracer.  Mutation (events, attributes, children)
    is lock-protected so concurrent shard workers can annotate one scan
    span safely.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_time",
        "duration_s",
        "attributes",
        "events",
        "children",
        "_tracer",
        "_started",
        "_token",
        "_lock",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent: Optional["Span"],
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent.span_id if parent is not None else None
        self.start_time = time.time()
        self.duration_s = 0.0
        self.attributes = attributes
        self.events: List[SpanEvent] = []
        self.children: List["Span"] = []
        self._tracer = tracer
        self._started: Optional[float] = None
        self._token: Optional[contextvars.Token] = None
        self._lock = threading.Lock()

    @property
    def is_root(self) -> bool:
        """Whether this span is the root of its trace."""
        return self.parent_id is None

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        with self._lock:
            self.attributes[key] = value

    def event(self, name: str, **fields: Any) -> None:
        """Attach one algorithmic event, timestamped relative to the span."""
        started = self._started
        offset = self._tracer._clock() - started if started is not None else 0.0
        with self._lock:
            self.events.append(SpanEvent(name, offset, fields))

    def _add_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    def __enter__(self) -> "Span":
        self._started = self._tracer._clock()
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.duration_s = self._tracer._clock() - self._started
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        self._tracer._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-dict form — the single source for every exporter."""
        with self._lock:
            return {
                "name": self.name,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start_time": self.start_time,
                "duration_s": self.duration_s,
                "attributes": dict(self.attributes),
                "events": [event.to_dict() for event in self.events],
                "children": [child.to_dict() for child in self.children],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, events={len(self.events)}, "
            f"children={len(self.children)}, duration_s={self.duration_s:.6f})"
        )


class _NullSpan:
    """The do-nothing span: absorbs every call, nests for free."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The singleton no-op span (also marks "inside an unsampled trace").
NULL_SPAN = _NullSpan()

#: The ambient open span.  ``None`` means "no trace in progress";
#: :data:`NULL_SPAN` means "inside an unsampled or untraced region".
_CURRENT_SPAN: "contextvars.ContextVar[Optional[object]]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)


class NullTracer:
    """The no-op default tracer: every span is :data:`NULL_SPAN`.

    Instrumented code runs identically against it — the whole tracing
    layer then costs one attribute lookup and an empty context-manager
    round trip per *stage* (never per database row).
    """

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """A no-op span (ignores all arguments)."""
        return NULL_SPAN

    def traces(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """Always empty."""
        return []

    def aggregates(self) -> Dict[str, Dict[str, Any]]:
        """Always empty."""
        return {"spans": {}, "events": {}}

    def event_count(self, name: str) -> int:
        """Always ``0`` — nothing is recorded."""
        return 0

    @property
    def enabled(self) -> bool:
        """``False`` — this tracer records nothing."""
        return False


#: Process-wide no-op singleton used wherever no tracer was supplied.
NULL_TRACER = NullTracer()


class Tracer:
    """Thread-safe producer of nested, timed spans.

    Args:
        max_traces: completed root spans kept in memory (ring buffer —
            old traces age out, like the metrics reservoirs).
        sample_every: trace only every N-th root span; the others run
            against :data:`NULL_SPAN` (children included) and cost the
            same as the disabled path.  ``1`` traces everything.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_traces: int = 64,
        sample_every: int = 1,
        clock=time.monotonic,
    ) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be at least 1, got {max_traces}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be at least 1, got {sample_every}")
        self.max_traces = max_traces
        self.sample_every = sample_every
        self._clock = clock
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._roots_started = 0
        self._traces: Deque[Span] = deque(maxlen=max_traces)
        self._span_stats: Dict[str, Dict[str, float]] = {}
        self._event_counts: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """``True`` — this tracer records (sampled) traces."""
        return True

    # ------------------------------------------------------------------
    # Span production
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> object:
        """Open a span as a child of the ambient span (or a new root).

        Returns a context manager: a real :class:`Span` when the trace
        is sampled, :data:`NULL_SPAN` otherwise.
        """
        parent = _CURRENT_SPAN.get()
        if parent is NULL_SPAN:
            # Inside an unsampled trace: stay dark the whole way down.
            return NULL_SPAN
        with self._lock:
            if parent is None:
                self._roots_started += 1
                if (self._roots_started - 1) % self.sample_every != 0:
                    # Unsampled root: mark the context so descendants
                    # (including ones on copied worker contexts) skip too.
                    return _UnsampledRoot()
                trace_id = f"t{next(self._ids):08x}"
            else:
                trace_id = parent.trace_id  # type: ignore[union-attr]
            span_id = f"s{next(self._ids):08x}"
        return Span(self, name, trace_id, span_id, parent, dict(attributes))

    def _finish(self, span: Span) -> None:
        """Record a completed span (called from ``Span.__exit__``)."""
        parent = _CURRENT_SPAN.get()
        with self._lock:
            stats = self._span_stats.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            stats["count"] += 1
            stats["total_s"] += span.duration_s
            if span.duration_s > stats["max_s"]:
                stats["max_s"] = span.duration_s
            for event in span.events:
                self._event_counts[event.name] = (
                    self._event_counts.get(event.name, 0) + 1
                )
        if span.is_root:
            with self._lock:
                self._traces.append(span)
        elif isinstance(parent, Span):
            parent._add_child(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def traces(self, last: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent completed traces, oldest first, as dicts.

        Args:
            last: keep only the trailing ``last`` traces (default: all
                retained).
        """
        with self._lock:
            roots = list(self._traces)
        if last is not None:
            if last < 0:
                raise ValueError(f"last must be non-negative, got {last}")
            roots = roots[len(roots) - min(last, len(roots)):]
        return [root.to_dict() for root in roots]

    def aggregates(self) -> Dict[str, Dict[str, Any]]:
        """Per-span-name timing stats and per-event-name counts.

        ``{"spans": {name: {count, total_s, max_s}}, "events": {name: n}}``
        — the tracer-side input of the Prometheus exposition.
        """
        with self._lock:
            return {
                "spans": {name: dict(stats) for name, stats in self._span_stats.items()},
                "events": dict(self._event_counts),
            }

    def event_count(self, name: str) -> int:
        """How many ``name`` events completed spans have recorded.

        Chaos tests use this to assert injected-fault and recovery
        events (``fault_injected``, ``retry``, ``hedge``, ...) actually
        surfaced in the traces.
        """
        with self._lock:
            return self._event_counts.get(name, 0)

    def clear(self) -> None:
        """Drop retained traces and aggregates (sampling counter kept)."""
        with self._lock:
            self._traces.clear()
            self._span_stats.clear()
            self._event_counts.clear()


class _UnsampledRoot:
    """Context manager marking a whole trace as unsampled.

    Sets the ambient span to :data:`NULL_SPAN` for the duration, so
    descendant ``span()`` calls (and :func:`add_event`) short-circuit.
    """

    __slots__ = ("_token",)

    def set(self, key: str, value: Any) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_UnsampledRoot":
        self._token = _CURRENT_SPAN.set(NULL_SPAN)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _CURRENT_SPAN.reset(self._token)


# ----------------------------------------------------------------------
# Ambient plumbing
# ----------------------------------------------------------------------

_ACTIVE_TRACER: "contextvars.ContextVar[object]" = contextvars.ContextVar(
    "repro_obs_tracer", default=NULL_TRACER
)


def current_tracer():
    """The ambient tracer (:data:`NULL_TRACER` unless one is activated)."""
    return _ACTIVE_TRACER.get()


def current_span() -> Optional[object]:
    """The ambient open span, or ``None`` outside any trace."""
    span = _CURRENT_SPAN.get()
    return None if span is None or span is NULL_SPAN else span


@contextmanager
def activate(tracer) -> Iterator[None]:
    """Make ``tracer`` the ambient tracer for the ``with`` body.

    The binding is a context variable: it follows
    ``contextvars.copy_context()`` into worker threads and never leaks
    across concurrent requests.
    """
    token = _ACTIVE_TRACER.set(tracer if tracer is not None else NULL_TRACER)
    try:
        yield
    finally:
        _ACTIVE_TRACER.reset(token)


def add_event(name: str, **fields: Any) -> None:
    """Attach an event to the ambient span (no-op outside a trace).

    The hook library code uses to report algorithmic decisions without
    holding a span reference; when no trace is active this is one
    context-variable read and a ``None`` check.
    """
    span = _CURRENT_SPAN.get()
    if span is None or span is NULL_SPAN:
        return
    span.event(name, **fields)  # type: ignore[union-attr]
