"""Observability: structured tracing, event logs, metrics exposition.

The window into the retrieval pipeline: what the adaptive clustering
decided (new-cluster seeds, Hotelling ``T^2`` merges), what the kernel
and progressive-scan layers saved, and where each feedback round spent
its time — exposed as nested spans, an append-only JSONL event log,
and Prometheus text-format metrics, behind a no-op default tracer
whose disabled cost is negligible.

* :mod:`~repro.obs.tracer` — :class:`Tracer`, :class:`Span`, events,
  the :data:`NULL_TRACER` default and the ambient
  :func:`activate` / :func:`current_tracer` / :func:`add_event` hooks,
  plus :class:`TailSamplingPolicy` (keep-or-drop at root finish).
* :mod:`~repro.obs.distributed` — :class:`TraceContext` propagation:
  the ``traceparent``/``X-Request-Id`` header codec and the ambient
  remote parent adopted by root spans across the HTTP edge and the
  worker-pool process boundary.
* :mod:`~repro.obs.slo` — fixed-bucket latency histograms per
  route/tenant/quality and :class:`SLObjective` error-budget burn
  rates over sliding windows.
* :mod:`~repro.obs.export` — JSONL span log and the console span tree.
* :mod:`~repro.obs.prometheus` — text-format (v0.0.4) exposition from
  :class:`~repro.service.metrics.ServiceMetrics` snapshots plus tracer
  aggregates.

See ``docs/OBSERVABILITY.md`` for the span/event schema, the
distributed-trace header format, and scrape examples.
"""

from .distributed import (
    TraceContext,
    current_trace_context,
    parse_traceparent,
    with_trace_context,
)
from .export import (
    JsonlTraceLog,
    render_span_tree,
    spans_from_jsonl,
    trace_to_jsonl_lines,
    tree_from_spans,
)
from .prometheus import prometheus_text
from .slo import DEFAULT_BUCKETS, LatencyHistogram, SLObjective, SLOTracker
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    TailSamplingPolicy,
    Tracer,
    activate,
    add_event,
    current_span,
    current_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "TailSamplingPolicy",
    "activate",
    "add_event",
    "current_span",
    "current_tracer",
    "TraceContext",
    "parse_traceparent",
    "current_trace_context",
    "with_trace_context",
    "DEFAULT_BUCKETS",
    "LatencyHistogram",
    "SLObjective",
    "SLOTracker",
    "JsonlTraceLog",
    "trace_to_jsonl_lines",
    "spans_from_jsonl",
    "tree_from_spans",
    "render_span_tree",
    "prometheus_text",
]
