"""Observability: structured tracing, event logs, metrics exposition.

The window into the retrieval pipeline: what the adaptive clustering
decided (new-cluster seeds, Hotelling ``T^2`` merges), what the kernel
and progressive-scan layers saved, and where each feedback round spent
its time — exposed as nested spans, an append-only JSONL event log,
and Prometheus text-format metrics, behind a no-op default tracer
whose disabled cost is negligible.

* :mod:`~repro.obs.tracer` — :class:`Tracer`, :class:`Span`, events,
  the :data:`NULL_TRACER` default and the ambient
  :func:`activate` / :func:`current_tracer` / :func:`add_event` hooks.
* :mod:`~repro.obs.export` — JSONL span log and the console span tree.
* :mod:`~repro.obs.prometheus` — text-format (v0.0.4) exposition from
  :class:`~repro.service.metrics.ServiceMetrics` snapshots plus tracer
  aggregates.

See ``docs/OBSERVABILITY.md`` for the span/event schema and scrape
examples.
"""

from .export import (
    JsonlTraceLog,
    render_span_tree,
    spans_from_jsonl,
    trace_to_jsonl_lines,
    tree_from_spans,
)
from .prometheus import prometheus_text
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    activate,
    add_event,
    current_span,
    current_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "activate",
    "add_event",
    "current_span",
    "current_tracer",
    "JsonlTraceLog",
    "trace_to_jsonl_lines",
    "spans_from_jsonl",
    "tree_from_spans",
    "render_span_tree",
    "prometheus_text",
]
