"""Trace exporters: JSONL event log and human-readable span trees.

Both exporters consume the same nested-dict form
(:meth:`~repro.obs.tracer.Span.to_dict`), so they are views of one
payload — the identity test in ``tests/obs`` reconstructs the tree from
the JSONL lines and asserts it equals the renderer's input.

* :func:`trace_to_jsonl_lines` — one JSON object per span, pre-order
  (parents before children), linked by ``span_id`` / ``parent_id``.
  Machine-friendly: greppable, streamable, diffable, and loadable back
  with :func:`spans_from_jsonl` / :func:`tree_from_spans`.
* :class:`JsonlTraceLog` — append-only JSONL file sink.
* :func:`render_span_tree` — the console view: indented tree with
  durations, attributes and per-span algorithmic events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "trace_to_jsonl_lines",
    "spans_from_jsonl",
    "tree_from_spans",
    "JsonlTraceLog",
    "render_span_tree",
]


def _as_dict(trace: Union[Dict[str, Any], Any]) -> Dict[str, Any]:
    """Accept either a :class:`Span` or its ``to_dict`` form."""
    if hasattr(trace, "to_dict"):
        return trace.to_dict()
    return trace


def _json_default(value: Any) -> Any:
    """Serialize numpy scalars/arrays and tuples without a numpy import."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"not JSON-serializable: {value!r} ({type(value).__name__})")


def trace_to_jsonl_lines(trace: Union[Dict[str, Any], Any]) -> List[str]:
    """One JSON line per span of ``trace``, pre-order (parent first).

    Each line carries the flat span record (``children`` replaced by
    the ``parent_id`` links), so a log of many traces is a single
    append-only stream that tools can filter by ``trace_id``.
    """
    lines: List[str] = []

    def emit(node: Dict[str, Any]) -> None:
        record = {key: value for key, value in node.items() if key != "children"}
        lines.append(
            json.dumps(record, sort_keys=True, default=_json_default)
        )
        for child in node.get("children", ()):
            emit(child)

    emit(_as_dict(trace))
    return lines


def spans_from_jsonl(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse JSONL span records back into flat dicts (blank lines skipped)."""
    records = []
    for line in lines:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def tree_from_spans(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild nested trace trees from flat span records.

    The inverse of :func:`trace_to_jsonl_lines` (for every trace whose
    root is present): children are re-attached under their
    ``parent_id`` in record order, and the roots are returned.
    """
    by_id: Dict[str, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for record in records:
        node = dict(record)
        node["children"] = []
        by_id[node["span_id"]] = node
        parent = by_id.get(node.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


class JsonlTraceLog:
    """Append-only JSONL sink for completed traces.

    Args:
        path: target file; parent directory must exist.

    Not internally locked: export traces from one thread (e.g. after a
    workload completes, or from a dedicated drain loop).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.spans_written = 0

    def export(self, trace: Union[Dict[str, Any], Any]) -> int:
        """Append one trace; returns the number of span lines written."""
        lines = trace_to_jsonl_lines(trace)
        with open(self.path, "a", encoding="utf-8") as sink:
            for line in lines:
                sink.write(line + "\n")
        self.spans_written += len(lines)
        return len(lines)

    def export_all(self, tracer, last: Optional[int] = None) -> int:
        """Append every retained trace of ``tracer``; returns span lines."""
        written = 0
        for trace in tracer.traces(last=last):
            written += self.export(trace)
        return written


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_fields(fields: Dict[str, Any]) -> str:
    return ", ".join(
        f"{key}={_format_value(value)}" for key, value in sorted(fields.items())
    )


def _render_node(
    node: Dict[str, Any], prefix: str, is_last: bool, is_root: bool
) -> Iterator[str]:
    connector = "" if is_root else ("└─ " if is_last else "├─ ")
    attributes = node.get("attributes") or {}
    attr_text = f" [{_format_fields(attributes)}]" if attributes else ""
    yield (
        f"{prefix}{connector}{node['name']}"
        f" ({node.get('duration_s', 0.0) * 1e3:.2f} ms){attr_text}"
    )
    child_prefix = prefix if is_root else prefix + ("   " if is_last else "│  ")
    events = node.get("events") or []
    children = node.get("children") or []
    for event in events:
        stem = "│  " if children else "   "
        yield (
            f"{child_prefix}{stem}• {event['name']}"
            f" @{event.get('offset_s', 0.0) * 1e3:.2f}ms"
            + (
                f" {{{_format_fields(event.get('fields') or {})}}}"
                if event.get("fields")
                else ""
            )
        )
    for position, child in enumerate(children):
        yield from _render_node(
            child, child_prefix, position == len(children) - 1, False
        )


def render_span_tree(trace: Union[Dict[str, Any], Any]) -> str:
    """The human-readable console view of one trace.

    Every span and every event of the trace appears exactly once, with
    millisecond durations and event offsets — the same payload the
    JSONL exporter writes, formatted for a terminal.
    """
    node = _as_dict(trace)
    header = f"trace {node.get('trace_id', '?')}"
    body = "\n".join(_render_node(node, "", True, True))
    return f"{header}\n{body}"
