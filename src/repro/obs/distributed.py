"""Distributed trace context: W3C-``traceparent``-style propagation.

The PR 4 tracer stops at two boundaries the serving stack has since
crossed: the HTTP edge (a client cannot hand the server a trace to
join) and the :class:`~repro.parallel.ShardWorkerPool` process boundary
(worker-side scans are invisible to the request tree).  This module is
the wire half of crossing both:

* :class:`TraceContext` — the compact propagated triple: a 128-bit
  ``trace_id``, an optional parent ``span_id``, and the sampling
  decision.  Immutable and picklable, so it ships in HTTP headers and
  in worker-pool task payloads alike.
* :meth:`TraceContext.to_traceparent` / :func:`parse_traceparent` — the
  ``00-<trace>-<span>-<flags>`` header codec (W3C Trace Context
  *style*: an all-zero parent span encodes "trace joined, no remote
  parent", which strict W3C omits).  Parsing **never raises**: any
  malformed header degrades to ``None`` and the caller starts a fresh
  context — a garbage ``traceparent`` must never 500 a request.
* :meth:`TraceContext.from_headers` — the server-side policy: honour
  ``traceparent`` first, fall back to ``X-Request-Id`` (adopted
  verbatim when it is already 32-hex, deterministically digested
  otherwise so client logs still join server traces), else mint a
  fresh context.
* :func:`with_trace_context` / :func:`current_trace_context` — the
  ambient remote parent.  :meth:`~repro.obs.tracer.Tracer.span` adopts
  it when opening a *root* span: the root keeps the propagated
  ``trace_id``, records the remote ``span_id`` as its parent, and
  honours the propagated sampling decision (a caller that sampled the
  trace out keeps it dark end to end).

Nothing here touches the disabled path: :data:`~repro.obs.NULL_TRACER`
users never allocate a context, and the ambient variable is read only
when a *root* span is being opened (once per request, never per row).
"""

from __future__ import annotations

import contextvars
import hashlib
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional

__all__ = [
    "TraceContext",
    "parse_traceparent",
    "sanitize_request_id",
    "current_trace_context",
    "with_trace_context",
]

#: Bit 0 of the traceparent flags byte: "this trace is sampled".
_SAMPLED_FLAG = 0x01

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace>[0-9a-f]{32})-"
    r"(?P<span>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)
_TRACE_ID = re.compile(r"^[0-9a-f]{32}$")
_SPAN_ID = re.compile(r"^[0-9a-f]{16}$")
#: Tokens acceptable as a client-chosen request id (echoed verbatim).
_REQUEST_ID = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")

_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16


def _digest(token: str, width: int) -> str:
    """A deterministic lowercase-hex id derived from an arbitrary token.

    Used when a client supplies a free-form ``X-Request-Id``: the
    derived trace id is stable, so retries and log-join queries for the
    same request id land on the same trace.
    """
    return hashlib.sha256(token.encode("utf-8")).hexdigest()[:width]


def _hex_id(token: Any, width: int) -> str:
    """Coerce any span/trace token into a ``width``-hex identifier.

    In-process ids (``t0000002a`` counters) pass through a digest so
    they become header-legal without colliding with genuine hex ids.
    """
    text = str(token).lower()
    pattern = _TRACE_ID if width == 32 else _SPAN_ID
    if pattern.match(text) and text != "0" * width:
        return text
    return _digest(str(token), width)


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one distributed trace.

    Attributes:
        trace_id: the trace's id (32 lowercase hex on the wire; any
            non-conforming token is digested deterministically when the
            context is serialized).
        span_id: the remote *parent* span id, or ``None`` when the
            context names a trace but no enclosing span (a bare
            ``X-Request-Id``, or a freshly minted context).
        sampled: the propagated sampling decision; adopted roots honour
            it over the local tracer's head-sampling counter.
    """

    trace_id: str
    span_id: Optional[str] = None
    sampled: bool = True

    @classmethod
    def fresh(cls, sampled: bool = True) -> "TraceContext":
        """A brand-new context with a random 128-bit trace id."""
        return cls(trace_id=os.urandom(16).hex(), span_id=None, sampled=sampled)

    @classmethod
    def from_request_id(cls, request_id: str) -> "TraceContext":
        """Adopt a client request id as the trace identity.

        A 32-hex id is adopted verbatim; anything else maps through a
        deterministic digest (same id → same trace, always joinable).
        """
        token = str(request_id).strip()
        lowered = token.lower()
        if _TRACE_ID.match(lowered) and lowered != _ZERO_TRACE:
            return cls(trace_id=lowered, span_id=None, sampled=True)
        return cls(trace_id=_digest(token, 32), span_id=None, sampled=True)

    @classmethod
    def from_headers(cls, headers: Mapping[str, str]) -> "TraceContext":
        """The inbound context of one HTTP request.  Never raises.

        Precedence: a well-formed ``traceparent`` wins; else a sane
        ``X-Request-Id`` is adopted; else (absent or garbage either
        way) a fresh context is minted.
        """
        lowered = {str(key).lower(): str(value) for key, value in headers.items()}
        parsed = parse_traceparent(lowered.get("traceparent", ""))
        if parsed is not None:
            return parsed
        request_id = lowered.get("x-request-id", "").strip()
        if request_id and _REQUEST_ID.match(request_id):
            return cls.from_request_id(request_id)
        return cls.fresh()

    def child(self, span_id: str) -> "TraceContext":
        """This trace continued under a new parent span (for fan-out)."""
        return TraceContext(
            trace_id=self.trace_id, span_id=str(span_id), sampled=self.sampled
        )

    def to_traceparent(self) -> str:
        """The ``00-<trace32>-<span16>-<flags>`` header value.

        An absent parent span encodes as all zeros (our parser maps it
        back to ``None``); non-hex in-process ids are digested so the
        header is always well-formed.
        """
        trace = _hex_id(self.trace_id, 32)
        span = _ZERO_SPAN if self.span_id is None else _hex_id(self.span_id, 16)
        flags = _SAMPLED_FLAG if self.sampled else 0
        return f"00-{trace}-{span}-{flags:02x}"

    def headers(self, request_id: Optional[str] = None) -> Dict[str, str]:
        """The outbound header pair for this context."""
        return {
            "X-Request-Id": request_id if request_id else self.trace_id,
            "traceparent": self.to_traceparent(),
        }

    def to_dict(self) -> Dict[str, Any]:
        """A primitive payload (worker-pool task argument)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceContext":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=(
                None if payload.get("span_id") is None else str(payload["span_id"])
            ),
            sampled=bool(payload.get("sampled", True)),
        )


def parse_traceparent(value: str) -> Optional[TraceContext]:
    """Parse one ``traceparent`` header; ``None`` on any malformation.

    Rejected (→ ``None``, never an exception): wrong field count or
    width, non-hex characters, the reserved version ``ff``, and an
    all-zero trace id.  An all-zero parent span is accepted as "no
    remote parent" (the codec's own round-trip form for
    ``span_id=None``).
    """
    match = _TRACEPARENT.match(str(value).strip().lower())
    if match is None:
        return None
    if match.group("version") == "ff":
        return None
    trace = match.group("trace")
    if trace == _ZERO_TRACE:
        return None
    span: Optional[str] = match.group("span")
    if span == _ZERO_SPAN:
        span = None
    flags = int(match.group("flags"), 16)
    return TraceContext(
        trace_id=trace, span_id=span, sampled=bool(flags & _SAMPLED_FLAG)
    )


def sanitize_request_id(value: Any) -> Optional[str]:
    """``value`` as an echo-safe request id, or ``None``.

    A client id is echoed back verbatim only when it is short and
    header-safe (no CR/LF smuggling, no binary); anything else is
    rejected and the server substitutes its own trace id.
    """
    token = str(value).strip() if value is not None else ""
    if token and _REQUEST_ID.match(token):
        return token
    return None


# ----------------------------------------------------------------------
# Ambient remote parent
# ----------------------------------------------------------------------

#: The inbound context a freshly opened *root* span should adopt.
#: ``None`` (the default) means "no remote parent: mint local ids".
_REMOTE_CONTEXT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_obs_remote_context", default=None)
)


def current_trace_context() -> Optional[TraceContext]:
    """The ambient inbound context, or ``None`` outside any."""
    return _REMOTE_CONTEXT.get()


@contextmanager
def with_trace_context(context: Optional[TraceContext]) -> Iterator[None]:
    """Make ``context`` the ambient remote parent for the ``with`` body.

    A context variable, so it follows ``contextvars.copy_context()``
    into executor threads exactly like the ambient tracer and span do.
    Passing ``None`` explicitly clears any inherited context.
    """
    token = _REMOTE_CONTEXT.set(context)
    try:
        yield
    finally:
        _REMOTE_CONTEXT.reset(token)
