"""SLO layer: fixed-bucket latency histograms and error-budget burn rates.

The metrics reservoirs (:mod:`repro.service.metrics`) answer "what were
recent latencies like" with sampled quantiles; an *SLO* needs a
different shape of answer — cumulative, mergeable, and judged against an
explicit objective:

* :class:`LatencyHistogram` — classic fixed-bucket (Prometheus
  ``_bucket``/``_sum``/``_count``) latency histogram.  Buckets are
  log-spaced over 1 ms – 10 s (:data:`DEFAULT_BUCKETS`) and never
  change at runtime, so scrapes from different processes aggregate by
  plain addition.
* :class:`SLOTracker` — one histogram per ``(route, tenant, quality)``
  where quality is the request's :class:`~repro.system.ResultQuality`
  level (``exact`` / ``degraded``) or ``error`` — a degraded page is a
  different latency population from an exact one and must not pollute
  its percentiles.
* :class:`SLObjective` — an explicit target ("99% of requests good")
  with *good* defined as non-error and, when ``latency_threshold_s`` is
  set, at/under the threshold.  Per-objective sliding windows yield the
  **error-budget burn rate**::

      burn_rate = bad_fraction(window) / (1 - target)

  A burn rate of 1.0 spends the budget exactly at the sustainable pace;
  14.4 (the classic fast-burn page threshold) exhausts a 30-day budget
  in ~2 days.  Two windows (5 min, 1 h by default) give the fast/slow
  alerting pair.

Everything is in-process, lock-protected, and cheap: one ``observe``
call is a bisect plus a few deque appends — it runs on *every* request
(unlike tracing, there is no sampling; an SLO computed over a sample is
not an SLO).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "LatencyHistogram",
    "SLObjective",
    "SLOTracker",
]

#: Fixed log-spaced latency bucket upper bounds in seconds (an implicit
#: ``+Inf`` bucket is always appended at exposition time).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyHistogram:
    """A classic cumulative-bucket latency histogram.

    Stores per-bucket (non-cumulative) counts internally; the snapshot
    emits Prometheus-style *cumulative* counts with the implicit
    ``+Inf`` bucket equal to the total count.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be non-empty and ascending, got {buckets}")
        self.buckets = tuple(float(bound) for bound in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one latency observation (seconds)."""
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations recorded."""
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q`` quantile.

        Coarse by design (the histogram's resolution *is* the buckets);
        returns the last finite bound when the quantile lands in
        ``+Inf``, and ``0.0`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.buckets[-1]
        return self.buckets[-1]

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative-bucket form: the Prometheus exposition input."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_sum = self._sum
        cumulative: List[int] = []
        running = 0
        for bucket_count in counts[:-1]:
            running += bucket_count
            cumulative.append(running)
        return {
            "buckets": list(self.buckets),
            "counts": cumulative,  # parallel to buckets; +Inf == count
            "sum": observed_sum,
            "count": total,
        }


@dataclass(frozen=True)
class SLObjective:
    """One explicit service-level objective.

    Attributes:
        name: objective identifier (``"availability"``, ``"latency"``).
        target: the good-request fraction promised (``0.99`` → 1% error
            budget).
        latency_threshold_s: when set, a request slower than this is
            *bad* even if it succeeded; ``None`` judges errors only.
        description: free-text shown in ``/debug/slo`` and ``cli obs slo``.
    """

    name: str
    target: float
    latency_threshold_s: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")

    def is_good(self, duration_s: float, error: bool) -> bool:
        """Whether one request counts against the error budget."""
        if error:
            return False
        if self.latency_threshold_s is not None:
            return duration_s <= self.latency_threshold_s
        return True


#: Default objectives: availability (three nines) and a p95-style
#: latency objective (95% of requests under 500 ms).
DEFAULT_OBJECTIVES: Tuple[SLObjective, ...] = (
    SLObjective(
        name="availability",
        target=0.999,
        description="99.9% of requests complete without error",
    ),
    SLObjective(
        name="latency",
        target=0.95,
        latency_threshold_s=0.5,
        description="95% of requests complete in under 500 ms",
    ),
)

#: Default burn-rate windows in seconds: the fast/slow alerting pair.
DEFAULT_WINDOWS: Tuple[float, ...] = (300.0, 3600.0)


@dataclass
class _Window:
    """One objective's sliding good/bad record (newest-last deque)."""

    horizon_s: float
    samples: Deque[Tuple[float, bool]] = field(default_factory=deque)

    def prune(self, now: float) -> None:
        cutoff = now - self.horizon_s
        samples = self.samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()


class SLOTracker:
    """Per-route/tenant/quality histograms plus objective burn rates.

    Args:
        objectives: the SLOs to judge every request against
            (:data:`DEFAULT_OBJECTIVES` when omitted).
        windows: sliding-window horizons in seconds for burn rates
            (:data:`DEFAULT_WINDOWS` when omitted).
        buckets: histogram bucket bounds (:data:`DEFAULT_BUCKETS`).
        clock: wall-ish time source, injectable for tests.
    """

    def __init__(
        self,
        objectives: Optional[Tuple[SLObjective, ...]] = None,
        windows: Optional[Tuple[float, ...]] = None,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        clock=time.monotonic,
    ) -> None:
        self.objectives = tuple(objectives) if objectives is not None else DEFAULT_OBJECTIVES
        self.windows = tuple(windows) if windows is not None else DEFAULT_WINDOWS
        if not self.windows or any(horizon <= 0 for horizon in self.windows):
            raise ValueError(f"windows must be positive, got {self.windows}")
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self.buckets = buckets
        self._clock = clock
        self._lock = threading.Lock()
        self._histograms: Dict[Tuple[str, str, str], LatencyHistogram] = {}
        self._windows: Dict[str, List[_Window]] = {
            objective.name: [_Window(horizon_s=horizon) for horizon in self.windows]
            for objective in self.objectives
        }

    def observe(
        self,
        route: str,
        duration_s: float,
        tenant: str = "default",
        exact: bool = True,
        error: bool = False,
    ) -> None:
        """Record one finished request.

        Args:
            route: logical route (``"query"``, ``"feedback"``, ``"page"``).
            duration_s: wall-clock service time in seconds.
            tenant: owning tenant label.
            exact: the page's :class:`~repro.system.ResultQuality` —
                ``False`` labels the observation ``degraded``.
            error: the request failed; labeled ``error`` regardless of
                ``exact`` and always bad for every objective.
        """
        quality = "error" if error else ("exact" if exact else "degraded")
        key = (str(route), str(tenant), quality)
        now = self._clock()
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = LatencyHistogram(self.buckets)
            for objective in self.objectives:
                good = objective.is_good(duration_s, error)
                for window in self._windows[objective.name]:
                    window.samples.append((now, good))
                    window.prune(now)
        histogram.observe(duration_s)

    def burn_rates(self) -> Dict[str, Dict[str, float]]:
        """``{objective: {"300s": burn_rate, ...}}`` right now.

        An empty window burns at 0.0 (no requests spend no budget).
        """
        now = self._clock()
        result: Dict[str, Dict[str, float]] = {}
        with self._lock:
            for objective in self.objectives:
                budget = 1.0 - objective.target
                rates: Dict[str, float] = {}
                for window in self._windows[objective.name]:
                    window.prune(now)
                    total = len(window.samples)
                    if total == 0:
                        rates[f"{window.horizon_s:g}s"] = 0.0
                        continue
                    bad = sum(1 for _, good in window.samples if not good)
                    rates[f"{window.horizon_s:g}s"] = (bad / total) / budget
                result[objective.name] = rates
        return result

    def snapshot(self) -> Dict[str, Any]:
        """The full SLO state: exposition + ``/debug/slo`` payload."""
        with self._lock:
            histogram_keys = sorted(self._histograms)
            histograms = {key: self._histograms[key] for key in histogram_keys}
        histogram_rows = [
            {
                "route": route,
                "tenant": tenant,
                "quality": quality,
                **histograms[(route, tenant, quality)].snapshot(),
            }
            for route, tenant, quality in histogram_keys
        ]
        now = self._clock()
        objective_rows = []
        with self._lock:
            for objective in self.objectives:
                windows: Dict[str, Dict[str, Any]] = {}
                for window in self._windows[objective.name]:
                    window.prune(now)
                    total = len(window.samples)
                    bad = sum(1 for _, good in window.samples if not good)
                    bad_fraction = bad / total if total else 0.0
                    windows[f"{window.horizon_s:g}s"] = {
                        "total": total,
                        "bad": bad,
                        "bad_fraction": bad_fraction,
                        "burn_rate": bad_fraction / (1.0 - objective.target),
                    }
                objective_rows.append(
                    {
                        "name": objective.name,
                        "target": objective.target,
                        "latency_threshold_s": objective.latency_threshold_s,
                        "description": objective.description,
                        "windows": windows,
                    }
                )
        return {"histograms": histogram_rows, "objectives": objective_rows}
