"""Prometheus text-format (v0.0.4) exposition for the retrieval service.

Turns a :meth:`~repro.service.metrics.ServiceMetrics.snapshot` dict
plus a tracer's aggregates into the plain-text exposition format every
Prometheus-compatible scraper understands:

* counters → ``repro_<name>_total``;
* per-stage latency summaries → one ``summary`` family
  ``repro_stage_duration_seconds`` with ``quantile`` labels plus the
  ``_sum`` / ``_count`` series;
* derived rates and gauges (cache hit rates, refine fraction, uptime,
  store/cache occupancy) → ``gauge`` families;
* tracer aggregates → ``repro_span_duration_seconds_total`` /
  ``repro_spans_total`` per span name and ``repro_trace_events_total``
  per algorithmic event name (plus ``repro_tail_sampling_total`` when
  a tail policy is active);
* SLO layer → ``repro_request_duration_seconds`` fixed-bucket
  ``histogram`` per route/tenant/quality and the
  ``repro_slo_error_budget_burn_rate`` gauge per objective/window;
* batching fairness → ``repro_batch_queue_wait_seconds`` per-tenant
  queue-wait summary.

Everything is generated, never scraped from global state: callers pass
the snapshot (and optionally the tracer) explicitly, so exposition is
as testable as any pure function.  The output is validated against the
text-format grammar in ``tests/obs/test_prometheus.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["prometheus_text"]

#: Quantiles exposed per latency stage: the snapshot's nearest-rank
#: p50/p95 reservoir percentiles.
_QUANTILES: Tuple[Tuple[str, str], ...] = (("0.5", "p50"), ("0.95", "p95"))


def _sanitize_name(name: str) -> str:
    """Make a metric-name-safe token: ``[a-zA-Z_][a-zA-Z0-9_]*``."""
    cleaned = "".join(
        char if char.isalnum() or char == "_" else "_" for char in name
    )
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    """Escape a label value per the text-format rules."""
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_number(value: Any) -> str:
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


class _Writer:
    """Accumulates exposition lines with one HELP/TYPE header per family."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def sample(
        self,
        name: str,
        value: Any,
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        if labels:
            body = ",".join(
                f'{key}="{_escape_label(str(val))}"'
                for key, val in sorted(labels.items())
            )
            self._lines.append(f"{name}{{{body}}} {_format_number(value)}")
        else:
            self._lines.append(f"{name} {_format_number(value)}")

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


def prometheus_text(
    snapshot: Dict[str, Any],
    tracer=None,
    namespace: str = "repro",
) -> str:
    """Render one scrape of the service's operational state.

    Args:
        snapshot: a :meth:`ServiceMetrics.snapshot` /
            :meth:`RetrievalService.metrics_snapshot` dict.
        tracer: optional :class:`~repro.obs.tracer.Tracer`; its
            per-span-name timings and per-event-name counts are
            appended as counter families.
        namespace: metric-name prefix.

    Returns:
        The complete exposition body (text format v0.0.4), one
        ``# HELP`` / ``# TYPE`` header per family, newline-terminated.
    """
    writer = _Writer()
    prefix = _sanitize_name(namespace)

    counters = snapshot.get("counters", {})
    if counters:
        name = f"{prefix}_events_total"
        writer.family(name, "counter", "Monotonic service counters by name.")
        for counter, value in sorted(counters.items()):
            writer.sample(name, value, {"counter": _sanitize_name(counter)})

    latency = snapshot.get("latency", {})
    if latency:
        family = f"{prefix}_stage_duration_seconds"
        writer.family(
            family,
            "summary",
            "Per-stage latency: nearest-rank reservoir quantiles plus "
            "all-time sum and count.",
        )
        for stage, summary in sorted(latency.items()):
            labels = {"stage": stage}
            for quantile, key in _QUANTILES:
                writer.sample(
                    family, summary.get(key, 0.0), {**labels, "quantile": quantile}
                )
            mean = float(summary.get("mean", 0.0))
            count = float(summary.get("count", 0))
            writer.sample(f"{family}_sum", mean * count, labels)
            writer.sample(f"{family}_count", count, labels)

    gauges = [
        ("cache_hit_rate", "Result-cache hit rate over the service lifetime."),
        ("kernel_cache_hit_rate", "Compiled-kernel cache hit rate."),
        ("refine_fraction", "Exactly-refined share of all ranking candidates."),
        ("uptime_seconds", "Seconds since the metrics object was (re)started."),
        ("degradations", "Total degraded rankings (errors + deadline misses)."),
    ]
    for key, help_text in gauges:
        if key in snapshot:
            name = f"{prefix}_{_sanitize_name(key)}"
            writer.family(name, "gauge", help_text)
            writer.sample(name, snapshot[key])

    feature_store = snapshot.get("feature_store")
    if isinstance(feature_store, dict) and "block_reads" in feature_store:
        name = f"{prefix}_store_block_reads_total"
        writer.family(
            name,
            "counter",
            "Feature-store block reads served from the coordinator's mmap.",
        )
        writer.sample(name, feature_store["block_reads"])

    worker_pool = snapshot.get("worker_pool")
    if isinstance(worker_pool, dict) and "busy" in worker_pool:
        name = f"{prefix}_worker_pool_busy"
        writer.family(
            name,
            "gauge",
            "Shard scans currently in flight on the worker-process pool.",
        )
        writer.sample(name, worker_pool["busy"])

    batching = snapshot.get("batching")
    if isinstance(batching, dict) and "batches" in batching:
        name = f"{prefix}_batch_queue_depth"
        writer.family(
            name,
            "gauge",
            "Queries currently waiting in the batching executor.",
        )
        writer.sample(name, batching["queue_depth"])
        name = f"{prefix}_batches_total"
        writer.family(
            name, "counter", "Micro-batches executed by the batching executor."
        )
        writer.sample(name, batching["batches"])
        name = f"{prefix}_batched_queries_total"
        writer.family(
            name, "counter", "Queries served through a coalesced micro-batch."
        )
        writer.sample(name, batching["batched_queries"])
        family = f"{prefix}_batch_size"
        writer.family(
            family,
            "summary",
            "Micro-batch sizes: recent-reservoir quantiles plus totals.",
        )
        writer.sample(family, batching.get("p50_batch_size", 0.0), {"quantile": "0.5"})
        writer.sample(family, batching.get("max_batch_size", 0.0), {"quantile": "1"})
        writer.sample(f"{family}_sum", batching["batched_queries"])
        writer.sample(f"{family}_count", batching["batches"])
        tenants = batching.get("tenants_served")
        if isinstance(tenants, dict) and tenants:
            name = f"{prefix}_batch_tenant_queries_total"
            writer.family(
                name, "counter", "Batched queries served per fair-queueing tenant."
            )
            for tenant, count in sorted(tenants.items()):
                writer.sample(name, count, {"tenant": _escape_label(str(tenant))})
        queue_wait = batching.get("queue_wait_by_tenant")
        if isinstance(queue_wait, dict) and queue_wait:
            family = f"{prefix}_batch_queue_wait_seconds"
            writer.family(
                family,
                "summary",
                "Per-tenant enqueue-to-dispatch wait in the batching "
                "executor: recent-reservoir quantiles plus totals.",
            )
            for tenant, wait in sorted(queue_wait.items()):
                labels = {"tenant": str(tenant)}
                writer.sample(
                    family, wait.get("p50", 0.0), {**labels, "quantile": "0.5"}
                )
                writer.sample(
                    family, wait.get("p95", 0.0), {**labels, "quantile": "0.95"}
                )
                writer.sample(f"{family}_sum", wait.get("sum", 0.0), labels)
                writer.sample(f"{family}_count", wait.get("count", 0), labels)

    slo = snapshot.get("slo")
    if isinstance(slo, dict):
        histograms = slo.get("histograms") or []
        if histograms:
            family = f"{prefix}_request_duration_seconds"
            writer.family(
                family,
                "histogram",
                "Request latency by route, tenant and result quality "
                "(fixed cumulative buckets).",
            )
            for row in histograms:
                labels = {
                    "route": str(row.get("route", "")),
                    "tenant": str(row.get("tenant", "")),
                    "quality": str(row.get("quality", "")),
                }
                buckets = row.get("buckets") or []
                counts = row.get("counts") or []
                for bound, cumulative in zip(buckets, counts):
                    writer.sample(
                        f"{family}_bucket",
                        cumulative,
                        {**labels, "le": _format_number(bound)},
                    )
                writer.sample(
                    f"{family}_bucket",
                    row.get("count", 0),
                    {**labels, "le": "+Inf"},
                )
                writer.sample(f"{family}_sum", row.get("sum", 0.0), labels)
                writer.sample(f"{family}_count", row.get("count", 0), labels)
        objectives = slo.get("objectives") or []
        if objectives:
            name = f"{prefix}_slo_error_budget_burn_rate"
            writer.family(
                name,
                "gauge",
                "Error-budget burn rate per objective and sliding window "
                "(1.0 spends the budget exactly at the sustainable pace).",
            )
            for objective in objectives:
                for window, stats in sorted((objective.get("windows") or {}).items()):
                    writer.sample(
                        name,
                        stats.get("burn_rate", 0.0),
                        {
                            "objective": _sanitize_name(str(objective.get("name", ""))),
                            "window": str(window),
                        },
                    )

    for section, help_text in (
        ("store", "Session-store occupancy."),
        ("cache", "Result-cache occupancy and hit rate."),
        ("kernels", "Kernel-cache occupancy and hit/miss totals."),
        ("feature_store", "Feature-store identity, geometry and read counters."),
        ("worker_pool", "Shard worker-pool occupancy and task totals."),
        ("batching", "Batching-executor queue, shed and fallback totals."),
        ("result_quality", "Result-quality provenance: exact vs degraded pages."),
    ):
        values = snapshot.get(section)
        if isinstance(values, dict):
            name = f"{prefix}_{section}_info"
            writer.family(name, "gauge", help_text)
            for field, value in sorted(values.items()):
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    writer.sample(name, value, {"field": _sanitize_name(field)})
            if section == "result_quality":
                reasons = values.get("reasons")
                if isinstance(reasons, dict) and reasons:
                    reasons_name = f"{prefix}_degraded_results_total"
                    writer.family(
                        reasons_name,
                        "counter",
                        "Degraded result pages by provenance reason.",
                    )
                    for reason, count in sorted(reasons.items()):
                        writer.sample(
                            reasons_name, count, {"reason": _sanitize_name(reason)}
                        )

    if tracer is not None:
        aggregates = tracer.aggregates()
        span_stats = aggregates.get("spans", {})
        if span_stats:
            counts = f"{prefix}_spans_total"
            writer.family(counts, "counter", "Completed trace spans by name.")
            for span_name, stats in sorted(span_stats.items()):
                writer.sample(
                    counts, stats.get("count", 0), {"name": _sanitize_name(span_name)}
                )
            seconds = f"{prefix}_span_duration_seconds_total"
            writer.family(
                seconds, "counter", "Cumulative seconds spent in spans by name."
            )
            for span_name, stats in sorted(span_stats.items()):
                writer.sample(
                    seconds,
                    stats.get("total_s", 0.0),
                    {"name": _sanitize_name(span_name)},
                )
        event_counts = aggregates.get("events", {})
        if event_counts:
            name = f"{prefix}_trace_events_total"
            writer.family(
                name, "counter", "Algorithmic trace events by event name."
            )
            for event_name, count in sorted(event_counts.items()):
                writer.sample(name, count, {"event": _sanitize_name(event_name)})
        tail_counts = aggregates.get("tail", {})
        if tail_counts:
            name = f"{prefix}_tail_sampling_total"
            writer.family(
                name,
                "counter",
                "Tail-sampling keep/drop decisions for finished root spans.",
            )
            for decision, count in sorted(tail_counts.items()):
                writer.sample(name, count, {"decision": _sanitize_name(decision)})

    return writer.text()
