"""Weighted descriptive statistics used throughout the Qcluster pipeline.

These are the estimators of Definitions 1 and 2 in the paper:

* the relevance-score-weighted mean vector (Equation 2),
* the relevance-score-weighted covariance matrix (Equation 3), and
* the pooled covariance matrix used by both the Bayesian classifier
  (Equation 7) and Hotelling's two-sample ``T^2`` (Equation 15).

All functions accept ``(n, p)`` data arrays and length-``n`` weight
vectors and return numpy arrays; they are deliberately free of any
cluster bookkeeping so they can be reused by the classifier, the merge
test and the PCA module alike.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "as_weights",
    "weighted_mean",
    "weighted_scatter",
    "weighted_covariance",
    "pooled_covariance",
    "pooled_scatter",
]


def as_weights(weights: Optional[Sequence[float]], n: int) -> np.ndarray:
    """Normalize a weight specification into a positive float vector.

    ``None`` means every point carries relevance score 1 — the behaviour the
    paper prescribes when the user gives binary relevance judgments.

    Raises:
        ValueError: on length mismatch, non-positive or non-finite weights.
    """
    if weights is None:
        return np.ones(n, dtype=float)
    array = np.asarray(weights, dtype=float)
    if array.shape != (n,):
        raise ValueError(f"expected {n} weights, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError("weights must be finite")
    if np.any(array <= 0.0):
        raise ValueError("relevance scores must be strictly positive")
    return array


def weighted_mean(points: np.ndarray, weights: Optional[Sequence[float]] = None) -> np.ndarray:
    """Relevance-score-weighted mean vector (paper Equation 2).

    Args:
        points: ``(n, p)`` array of feature vectors.
        weights: optional length-``n`` relevance scores ``v_ik``.

    Returns:
        The ``(p,)`` weighted centroid ``x̄ = Σ v_k x_k / Σ v_k``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    w = as_weights(weights, points.shape[0])
    return w @ points / w.sum()


def weighted_scatter(
    points: np.ndarray,
    weights: Optional[Sequence[float]] = None,
    center: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Relevance-score-weighted scatter matrix (paper Equation 3).

    ``S = Σ_k v_k (x_k - x̄)(x_k - x̄)'`` — note the paper does **not**
    normalize by the weight sum; the scatter enters the pooled covariance
    of Equation 15 un-normalized, so we keep that convention and expose
    :func:`weighted_covariance` for the normalized variant.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    w = as_weights(weights, points.shape[0])
    if center is None:
        center = w @ points / w.sum()
    centered = points - np.asarray(center, dtype=float)
    return (centered * w[:, None]).T @ centered


def weighted_covariance(
    points: np.ndarray,
    weights: Optional[Sequence[float]] = None,
    center: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Weight-sum-normalized covariance ``S / Σ v_k``.

    This is the per-cluster shape matrix used by the quadratic distance of
    Equation 1 once inverted (or diagonalized).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    w = as_weights(weights, points.shape[0])
    return weighted_scatter(points, w, center) / w.sum()


def pooled_scatter(
    groups: Sequence[Tuple[np.ndarray, Optional[Sequence[float]]]],
) -> Tuple[np.ndarray, float]:
    """Pooled weighted scatter across groups (paper Equation 15 numerator).

    Args:
        groups: sequence of ``(points, weights)`` pairs, one per cluster.

    Returns:
        ``(scatter, total_weight)`` where ``scatter`` is the sum of the
        per-group weighted scatter matrices and ``total_weight`` the sum of
        all relevance scores.
    """
    if not groups:
        raise ValueError("pooled_scatter requires at least one group")
    first_points = np.atleast_2d(np.asarray(groups[0][0], dtype=float))
    p = first_points.shape[1]
    scatter = np.zeros((p, p))
    total_weight = 0.0
    for points, weights in groups:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != p:
            raise ValueError(
                f"inconsistent dimensionality: expected {p}, got {points.shape[1]}"
            )
        w = as_weights(weights, points.shape[0])
        scatter += weighted_scatter(points, w)
        total_weight += float(w.sum())
    return scatter, total_weight


def pooled_covariance(
    scatters: Sequence[np.ndarray],
    weights: Sequence[float],
) -> np.ndarray:
    """Weight-combined pooled covariance (paper Equation 7 denominator).

    ``S_pooled = Σ (m_i - 1) S_i / (Σ m_i - g)`` where ``m_i`` is the weight
    (relevance mass) of cluster ``i`` and ``S_i`` its covariance.  When the
    denominator is not positive (e.g. a single cluster of unit mass) the
    plain weight-proportional average is returned instead, which keeps the
    classifier well-defined during the first feedback round.
    """
    if len(scatters) != len(weights):
        raise ValueError("need one weight per scatter matrix")
    if not scatters:
        raise ValueError("pooled_covariance requires at least one cluster")
    weights = [float(w) for w in weights]
    if any(w <= 0 for w in weights):
        raise ValueError("cluster weights must be strictly positive")
    g = len(scatters)
    total = sum(weights)
    denominator = total - g
    p = np.asarray(scatters[0]).shape[0]
    combined = np.zeros((p, p))
    if denominator > 0:
        for s, m in zip(scatters, weights):
            combined += (m - 1.0) * np.asarray(s, dtype=float)
        return combined / denominator
    for s, m in zip(scatters, weights):
        combined += m * np.asarray(s, dtype=float)
    return combined / total
