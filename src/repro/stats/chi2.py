"""Chi-square distribution built on :mod:`repro.stats.special`.

The chi-square quantile supplies the *effective radius* of a cluster
ellipsoid (paper Equation 6): for significance level ``alpha``, a point
``x`` lies inside the cluster when

    (x - mean)' S^{-1} (x - mean)  <  chi2_ppf(1 - alpha, p)

so that ``100 (1 - alpha) %`` of Gaussian-distributed members fall inside.
"""

from __future__ import annotations

import math

from .special import (
    inverse_regularized_lower_gamma,
    regularized_lower_gamma,
    regularized_upper_gamma,
)

__all__ = ["chi2_pdf", "chi2_cdf", "chi2_sf", "chi2_ppf", "effective_radius"]


def _validate_df(df: float) -> None:
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")


def chi2_pdf(x: float, df: float) -> float:
    """Density of the chi-square distribution with ``df`` degrees of freedom."""
    _validate_df(df)
    if x < 0.0:
        return 0.0
    if x == 0.0:
        if df < 2.0:
            return math.inf
        return 0.5 if df == 2.0 else 0.0
    half_df = 0.5 * df
    from .special import log_gamma

    log_density = (
        (half_df - 1.0) * math.log(x) - 0.5 * x - half_df * math.log(2.0) - log_gamma(half_df)
    )
    return math.exp(log_density)


def chi2_cdf(x: float, df: float) -> float:
    """CDF ``P(X <= x)`` of the chi-square distribution."""
    _validate_df(df)
    if x <= 0.0:
        return 0.0
    return regularized_lower_gamma(0.5 * df, 0.5 * x)


def chi2_sf(x: float, df: float) -> float:
    """Survival function ``P(X > x)`` of the chi-square distribution."""
    _validate_df(df)
    if x <= 0.0:
        return 1.0
    return regularized_upper_gamma(0.5 * df, 0.5 * x)


def chi2_ppf(q: float, df: float) -> float:
    """Quantile function: the ``x`` with ``chi2_cdf(x, df) = q``."""
    _validate_df(df)
    return 2.0 * inverse_regularized_lower_gamma(0.5 * df, q)


def effective_radius(dimension: int, significance_level: float) -> float:
    """Effective radius of a cluster ellipsoid (paper Equation 6).

    For Gaussian-distributed cluster members, ``100 (1 - alpha) %`` of them
    satisfy ``(x - mean)' S^{-1} (x - mean) < chi2_p(alpha)``.  As ``alpha``
    decreases the radius grows and fewer points are flagged as outliers.

    Args:
        dimension: feature-space dimensionality ``p``.
        significance_level: the paper's ``alpha``; typically 0.01-0.05.

    Returns:
        The squared-Mahalanobis-distance threshold.
    """
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    if not 0.0 < significance_level < 1.0:
        raise ValueError(
            f"significance level must lie strictly in (0, 1), got {significance_level}"
        )
    return chi2_ppf(1.0 - significance_level, float(dimension))
