"""Multivariate normal density helpers for the Bayesian classifier.

The classifier of Section 4.2 allocates a point to the cluster with the
largest ``w_i f_i(x)`` where ``f_i`` is a multivariate normal density
(Equation 8/9).  Only *log* densities are ever compared, so this module
exposes log-space evaluation that remains finite for near-singular
covariance matrices.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["log_mvn_density", "mvn_density", "mahalanobis_sq"]

_LOG_2PI = math.log(2.0 * math.pi)


def mahalanobis_sq(
    x: np.ndarray,
    mean: np.ndarray,
    inverse_covariance: np.ndarray,
) -> float:
    """Squared Mahalanobis distance ``(x - mean)' S^{-1} (x - mean)``."""
    diff = np.asarray(x, dtype=float) - np.asarray(mean, dtype=float)
    return float(diff @ np.asarray(inverse_covariance, dtype=float) @ diff)


def log_mvn_density(
    x: np.ndarray,
    mean: np.ndarray,
    inverse_covariance: np.ndarray,
    log_det_covariance: Optional[float] = None,
) -> float:
    """Log of the multivariate normal density at ``x``.

    Args:
        x: point to evaluate.
        mean: distribution mean.
        inverse_covariance: ``S^{-1}`` (full or diagonal scheme).
        log_det_covariance: ``ln |S|``; computed from the inverse when not
            supplied (``-ln |S^{-1}|``).

    Returns:
        ``-p/2 ln(2 pi) - 1/2 ln |S| - 1/2 (x-mean)' S^{-1} (x-mean)``.
    """
    mean = np.asarray(mean, dtype=float)
    p = mean.shape[0]
    if log_det_covariance is None:
        sign, log_det_inverse = np.linalg.slogdet(np.asarray(inverse_covariance, dtype=float))
        if sign <= 0:
            raise np.linalg.LinAlgError("inverse covariance is not positive definite")
        log_det_covariance = -log_det_inverse
    quad = mahalanobis_sq(x, mean, inverse_covariance)
    return -0.5 * (p * _LOG_2PI + log_det_covariance + quad)


def mvn_density(
    x: np.ndarray,
    mean: np.ndarray,
    inverse_covariance: np.ndarray,
    log_det_covariance: Optional[float] = None,
) -> float:
    """Multivariate normal density ``f(x)`` (Equation 8's likelihood)."""
    return math.exp(log_mvn_density(x, mean, inverse_covariance, log_det_covariance))
