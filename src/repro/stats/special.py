"""Special functions underlying the chi-square and F distributions.

The Qcluster paper leans on two statistical quantiles:

* the chi-square quantile ``chi2_p(alpha)`` that defines the *effective
  radius* of a cluster ellipsoid (Lemma 1 / Equation 6), and
* the F quantile ``F_{p, m_i + m_j - p - 1}(alpha)`` that defines the
  critical distance ``c^2`` for Hotelling's ``T^2`` merge test
  (Equation 16).

Rather than treating those as black boxes, this module implements the
special functions they are built from — the log-gamma function, the
regularized lower incomplete gamma function ``P(a, x)`` and the
regularized incomplete beta function ``I_x(a, b)`` — using the classic
Lanczos and continued-fraction constructions.  ``scipy`` is used only in
the test-suite to cross-validate these implementations.

All routines are scalar; the distribution modules vectorize on top of
them with :func:`numpy.vectorize` where convenient.
"""

from __future__ import annotations

import math

__all__ = [
    "log_gamma",
    "regularized_lower_gamma",
    "regularized_upper_gamma",
    "log_beta",
    "regularized_incomplete_beta",
    "inverse_regularized_lower_gamma",
    "inverse_regularized_incomplete_beta",
]

# Lanczos coefficients for g = 7, n = 9 — accurate to ~15 significant
# digits over the right half-plane, which covers every use in this
# package (degrees of freedom are positive).
_LANCZOS_G = 7.0
_LANCZOS_COEFFS = (
    0.99999999999980993,
    676.5203681218851,
    -1259.1392167224028,
    771.32342877765313,
    -176.61502916214059,
    12.507343278686905,
    -0.13857109526572012,
    9.9843695780195716e-6,
    1.5056327351493116e-7,
)

_MAX_ITERATIONS = 500
_EPSILON = 1e-15
_TINY = 1e-300


def log_gamma(x: float) -> float:
    """Return ``ln Gamma(x)`` for ``x > 0`` via the Lanczos approximation.

    Raises:
        ValueError: if ``x <= 0`` (the reflection branch is not needed for
            degrees-of-freedom arguments and is deliberately unsupported).
    """
    if x <= 0.0:
        raise ValueError(f"log_gamma requires x > 0, got {x}")
    if x < 0.5:
        # Reflection formula keeps the Lanczos series in its sweet spot.
        return math.log(math.pi / math.sin(math.pi * x)) - log_gamma(1.0 - x)
    x -= 1.0
    series = _LANCZOS_COEFFS[0]
    for i, coeff in enumerate(_LANCZOS_COEFFS[1:], start=1):
        series += coeff / (x + i)
    t = x + _LANCZOS_G + 0.5
    return 0.5 * math.log(2.0 * math.pi) + (x + 0.5) * math.log(t) - t + math.log(series)


def _lower_gamma_series(a: float, x: float) -> float:
    """Series expansion of ``P(a, x)``; converges fastest for ``x < a + 1``."""
    term = 1.0 / a
    total = term
    denominator = a
    for _ in range(_MAX_ITERATIONS):
        denominator += 1.0
        term *= x / denominator
        total += term
        if abs(term) < abs(total) * _EPSILON:
            break
    log_prefactor = a * math.log(x) - x - log_gamma(a)
    return total * math.exp(log_prefactor)


def _upper_gamma_continued_fraction(a: float, x: float) -> float:
    """Continued fraction for ``Q(a, x)``; converges fastest for ``x >= a + 1``.

    Modified Lentz's method, as in Numerical Recipes section 6.2.
    """
    b = x + 1.0 - a
    c = 1.0 / _TINY
    d = 1.0 / b
    h = d
    for i in range(1, _MAX_ITERATIONS + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < _TINY:
            d = _TINY
        c = b + an / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    log_prefactor = a * math.log(x) - x - log_gamma(a)
    return h * math.exp(log_prefactor)


def regularized_lower_gamma(a: float, x: float) -> float:
    """Return ``P(a, x) = gamma(a, x) / Gamma(a)`` for ``a > 0, x >= 0``.

    This is the CDF of a Gamma(a, 1) random variable, and with
    ``a = p / 2`` and ``x = t / 2`` it is the chi-square CDF with ``p``
    degrees of freedom evaluated at ``t``.
    """
    if a <= 0.0:
        raise ValueError(f"regularized_lower_gamma requires a > 0, got {a}")
    if x < 0.0:
        raise ValueError(f"regularized_lower_gamma requires x >= 0, got {x}")
    if x == 0.0:
        return 0.0
    if x < a + 1.0:
        return _lower_gamma_series(a, x)
    return 1.0 - _upper_gamma_continued_fraction(a, x)


def regularized_upper_gamma(a: float, x: float) -> float:
    """Return ``Q(a, x) = 1 - P(a, x)``, the chi-square survival function."""
    return 1.0 - regularized_lower_gamma(a, x)


def log_beta(a: float, b: float) -> float:
    """Return ``ln B(a, b) = ln Gamma(a) + ln Gamma(b) - ln Gamma(a + b)``."""
    return log_gamma(a) + log_gamma(b) - log_gamma(a + b)


def _incomplete_beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Numerical Recipes 6.4)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITERATIONS + 1):
        m2 = 2 * m
        # Even step.
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        # Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPSILON:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """Return ``I_x(a, b)``, the regularized incomplete beta function.

    With ``a = d1 / 2``, ``b = d2 / 2`` and ``x = d1 f / (d1 f + d2)``
    this is the CDF of an F(d1, d2) random variable evaluated at ``f``.
    """
    if a <= 0.0 or b <= 0.0:
        raise ValueError(f"regularized_incomplete_beta requires a, b > 0, got a={a}, b={b}")
    if x < 0.0 or x > 1.0:
        raise ValueError(f"regularized_incomplete_beta requires 0 <= x <= 1, got {x}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    log_front = (
        a * math.log(x) + b * math.log1p(-x) - log_beta(a, b)
    )
    front = math.exp(log_front)
    # Use the continued fraction directly where it converges rapidly,
    # otherwise use the symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _incomplete_beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _incomplete_beta_continued_fraction(b, a, 1.0 - x) / b


def _bisect_refine(
    func,
    target: float,
    low: float,
    high: float,
    tolerance: float = 1e-15,
) -> float:
    """Find ``x`` in ``[low, high]`` with ``func(x) == target`` by bisection.

    ``func`` must be monotonically increasing on the bracket.  Bisection is
    slower than Newton but unconditionally robust, which matters because the
    quantile functions are called with arbitrary user-supplied significance
    levels.
    """
    f_low = func(low) - target
    for _ in range(300):
        mid = 0.5 * (low + high)
        f_mid = func(mid) - target
        # Converge relative to |mid|: quantiles can be arbitrarily small
        # (e.g. chi-square tails) where the CDF is extremely steep.
        if f_mid == 0.0 or (high - low) < tolerance * abs(mid):
            return mid
        if (f_low < 0.0) == (f_mid < 0.0):
            low, f_low = mid, f_mid
        else:
            high = mid
    return 0.5 * (low + high)


def inverse_regularized_lower_gamma(a: float, probability: float) -> float:
    """Return ``x`` such that ``P(a, x) = probability``.

    Used to evaluate chi-square quantiles: ``chi2.ppf(q, p)`` equals
    ``2 * inverse_regularized_lower_gamma(p / 2, q)``.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {probability}")
    if probability == 0.0:
        return 0.0
    if probability == 1.0:
        return math.inf
    # Bracket the root: the mean of Gamma(a, 1) is a, so expand
    # geometrically from there in both directions.
    high = max(a, 1.0)
    while regularized_lower_gamma(a, high) < probability:
        high *= 2.0
        if high > 1e300:  # pragma: no cover - defensive
            return high
    low = min(a, 1.0)
    while low > _TINY and regularized_lower_gamma(a, low) > probability:
        low *= 0.5
    return _bisect_refine(lambda x: regularized_lower_gamma(a, x), probability, low, high)


def inverse_regularized_incomplete_beta(a: float, b: float, probability: float) -> float:
    """Return ``x`` such that ``I_x(a, b) = probability``.

    Used to evaluate F quantiles through the beta/F change of variables.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {probability}")
    if probability == 0.0:
        return 0.0
    if probability == 1.0:
        return 1.0
    return _bisect_refine(
        lambda x: regularized_incomplete_beta(a, b, x), probability, 0.0, 1.0
    )
