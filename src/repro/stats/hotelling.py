"""Hotelling's two-sample ``T^2`` test (paper Section 4.3).

The cluster-merging stage decides whether two clusters describe the same
underlying population of relevant images by testing the equality of
their mean vectors:

    H0: mu_i = mu_j        H1: mu_i != mu_j

with the statistic of Equation 14/16,

    T^2 = (x̄_i - x̄_j)' [ (1/m_i + 1/m_j) S_pooled ]^{-1} (x̄_i - x̄_j)

and critical distance

    c^2 = (m_i + m_j - 2) p / (m_i + m_j - p - 1) * F_{p, m_i+m_j-p-1}(alpha).

``H0`` is rejected (the clusters stay separate) when ``T^2 > c^2``.

This module works on plain arrays; :mod:`repro.core.merging` wraps it
with cluster bookkeeping and diagonal/inverse scheme selection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fdist import f_upper_quantile

__all__ = [
    "HotellingResult",
    "hotelling_t2",
    "critical_distance",
    "two_sample_test",
]


@dataclass(frozen=True)
class HotellingResult:
    """Outcome of a two-sample Hotelling test between two clusters.

    Attributes:
        statistic: the ``T^2`` value (Equation 16 form).
        critical: the critical distance ``c^2`` at the chosen significance.
        reject_equal_means: ``True`` when ``T^2 > c^2`` — the clusters are
            statistically different and must not be merged.
        df1: numerator degrees of freedom ``p``.
        df2: denominator degrees of freedom ``m_i + m_j - p - 1``.
    """

    statistic: float
    critical: float
    reject_equal_means: bool
    df1: float
    df2: float

    @property
    def should_merge(self) -> bool:
        """Convenience inverse of :attr:`reject_equal_means`."""
        return not self.reject_equal_means


def hotelling_t2(
    mean_i: np.ndarray,
    mean_j: np.ndarray,
    pooled_inverse: np.ndarray,
    weight_i: float,
    weight_j: float,
) -> float:
    """Evaluate the ``T^2`` statistic of Equation 14.

    Args:
        mean_i, mean_j: the two cluster centroids.
        pooled_inverse: ``S_pooled^{-1}`` (full or diagonalized — the caller
            chooses the scheme).
        weight_i, weight_j: cluster relevance masses ``m_i``, ``m_j``.

    Returns:
        ``m_i m_j / (m_i + m_j) * diff' S_pooled^{-1} diff``.
    """
    if weight_i <= 0 or weight_j <= 0:
        raise ValueError("cluster weights must be strictly positive")
    diff = np.asarray(mean_i, dtype=float) - np.asarray(mean_j, dtype=float)
    scale = weight_i * weight_j / (weight_i + weight_j)
    return float(scale * diff @ np.asarray(pooled_inverse, dtype=float) @ diff)


def critical_distance(
    dimension: int,
    weight_i: float,
    weight_j: float,
    significance_level: float,
) -> float:
    """Critical distance ``c^2`` of Equation 16.

    Returns ``inf`` when the denominator degrees of freedom
    ``m_i + m_j - p - 1`` are not positive: with so little relevance mass
    the test has no power, and an infinite threshold means "always merge",
    matching the paper's initial iteration where every cluster holds a
    single point.
    """
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    if not 0.0 < significance_level < 1.0:
        raise ValueError(
            f"significance level must lie strictly in (0, 1), got {significance_level}"
        )
    total = weight_i + weight_j
    df2 = total - dimension - 1.0
    if df2 <= 0.0:
        return float("inf")
    scale = (total - 2.0) * dimension / df2
    return scale * f_upper_quantile(significance_level, float(dimension), df2)


def two_sample_test(
    mean_i: np.ndarray,
    mean_j: np.ndarray,
    pooled_inverse: np.ndarray,
    weight_i: float,
    weight_j: float,
    significance_level: float = 0.05,
) -> HotellingResult:
    """Run the full merge test of Equation 16 and package the outcome."""
    mean_i = np.asarray(mean_i, dtype=float)
    dimension = mean_i.shape[0]
    statistic = hotelling_t2(mean_i, mean_j, pooled_inverse, weight_i, weight_j)
    critical = critical_distance(dimension, weight_i, weight_j, significance_level)
    return HotellingResult(
        statistic=statistic,
        critical=critical,
        reject_equal_means=statistic > critical,
        df1=float(dimension),
        df2=weight_i + weight_j - dimension - 1.0,
    )
