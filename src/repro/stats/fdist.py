"""F distribution built on :mod:`repro.stats.special`.

The F quantile supplies the critical distance ``c^2`` of the
cluster-merging test (paper Equation 16):

    c^2 = (m_i + m_j - 2) p / (m_i + m_j - p - 1) * F_{p, m_i + m_j - p - 1}(alpha)

where ``F_{d1, d2}(alpha)`` is the upper 100(1 - alpha) percentile of the
F distribution.  ``random_f`` reproduces the paper's Equation 20, which
draws critical values as ratios of chi-square sums of squared normals.
"""

from __future__ import annotations

import math

import numpy as np

from .special import (
    inverse_regularized_incomplete_beta,
    log_beta,
    regularized_incomplete_beta,
)

__all__ = ["f_pdf", "f_cdf", "f_sf", "f_ppf", "f_upper_quantile", "random_f"]


def _validate_dfs(df1: float, df2: float) -> None:
    if df1 <= 0 or df2 <= 0:
        raise ValueError(f"degrees of freedom must be positive, got ({df1}, {df2})")


def f_pdf(x: float, df1: float, df2: float) -> float:
    """Density of the F distribution with ``(df1, df2)`` degrees of freedom."""
    _validate_dfs(df1, df2)
    if x <= 0.0:
        return 0.0
    half1 = 0.5 * df1
    half2 = 0.5 * df2
    log_density = (
        half1 * math.log(df1 / df2)
        + (half1 - 1.0) * math.log(x)
        - (half1 + half2) * math.log1p(df1 * x / df2)
        - log_beta(half1, half2)
    )
    return math.exp(log_density)


def f_cdf(x: float, df1: float, df2: float) -> float:
    """CDF ``P(F <= x)`` via the incomplete-beta change of variables."""
    _validate_dfs(df1, df2)
    if x <= 0.0:
        return 0.0
    transformed = df1 * x / (df1 * x + df2)
    return regularized_incomplete_beta(0.5 * df1, 0.5 * df2, transformed)


def f_sf(x: float, df1: float, df2: float) -> float:
    """Survival function ``P(F > x)``."""
    return 1.0 - f_cdf(x, df1, df2)


def f_ppf(q: float, df1: float, df2: float) -> float:
    """Quantile function: the ``x`` with ``f_cdf(x, df1, df2) = q``."""
    _validate_dfs(df1, df2)
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile level must lie in [0, 1], got {q}")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return math.inf
    transformed = inverse_regularized_incomplete_beta(0.5 * df1, 0.5 * df2, q)
    if transformed >= 1.0:  # pragma: no cover - numerical guard
        return math.inf
    return df2 * transformed / (df1 * (1.0 - transformed))


def f_upper_quantile(significance_level: float, df1: float, df2: float) -> float:
    """Upper 100(1 - alpha) percentile ``F_{df1, df2}(alpha)`` as the paper writes it.

    The paper's notation ``F_{p, n}(alpha)`` denotes the point exceeded with
    probability ``alpha``; that is ``f_ppf(1 - alpha, p, n)``.
    """
    if not 0.0 < significance_level < 1.0:
        raise ValueError(
            f"significance level must lie strictly in (0, 1), got {significance_level}"
        )
    return f_ppf(1.0 - significance_level, df1, df2)


def random_f(df1: int, df2: int, rng: np.random.Generator) -> float:
    """Draw a random F value per the paper's Equation 20.

    ``random F_{d1, d2} = (sum of d1 squared N(0,1)) / (sum of d2 squared
    N(0,1))`` — note the paper deliberately omits the usual normalization
    by degrees of freedom; we reproduce their formula verbatim because the
    Q-Q plots of Figures 18/19 are built from it.
    """
    if df1 <= 0 or df2 <= 0:
        raise ValueError(f"degrees of freedom must be positive, got ({df1}, {df2})")
    numerator = float(np.sum(rng.standard_normal(df1) ** 2))
    denominator = float(np.sum(rng.standard_normal(df2) ** 2))
    if denominator == 0.0:  # pragma: no cover - probability zero
        raise ZeroDivisionError("degenerate chi-square draw in random_f")
    return numerator / denominator
