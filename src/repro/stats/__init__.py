"""Statistical substrate for the Qcluster reproduction.

Everything the paper's measures need — chi-square quantiles for the
effective radius (Equation 6), F quantiles for the merge test's critical
distance (Equation 16), weighted moments (Definitions 1-2) and
Hotelling's two-sample ``T^2`` (Equation 14) — implemented from first
principles on top of Lanczos/continued-fraction special functions.
"""

from .chi2 import chi2_cdf, chi2_pdf, chi2_ppf, chi2_sf, effective_radius
from .descriptive import (
    as_weights,
    pooled_covariance,
    pooled_scatter,
    weighted_covariance,
    weighted_mean,
    weighted_scatter,
)
from .fdist import f_cdf, f_pdf, f_ppf, f_sf, f_upper_quantile, random_f
from .hotelling import HotellingResult, critical_distance, hotelling_t2, two_sample_test
from .normal import log_mvn_density, mahalanobis_sq, mvn_density
from .special import (
    inverse_regularized_incomplete_beta,
    inverse_regularized_lower_gamma,
    log_beta,
    log_gamma,
    regularized_incomplete_beta,
    regularized_lower_gamma,
    regularized_upper_gamma,
)

__all__ = [
    "chi2_cdf",
    "chi2_pdf",
    "chi2_ppf",
    "chi2_sf",
    "effective_radius",
    "as_weights",
    "pooled_covariance",
    "pooled_scatter",
    "weighted_covariance",
    "weighted_mean",
    "weighted_scatter",
    "f_cdf",
    "f_pdf",
    "f_ppf",
    "f_sf",
    "f_upper_quantile",
    "random_f",
    "HotellingResult",
    "critical_distance",
    "hotelling_t2",
    "two_sample_test",
    "log_mvn_density",
    "mahalanobis_sq",
    "mvn_density",
    "inverse_regularized_incomplete_beta",
    "inverse_regularized_lower_gamma",
    "log_beta",
    "log_gamma",
    "regularized_incomplete_beta",
    "regularized_lower_gamma",
    "regularized_upper_gamma",
]
